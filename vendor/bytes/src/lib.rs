//! A small, API-compatible subset of the `bytes` crate for offline builds:
//! `Bytes`/`BytesMut` over `Vec<u8>` and `Buf`/`BufMut` for the integer
//! accessors the workspace codec uses.  All integers are big-endian, like
//! the real crate's defaults.

use std::ops::Deref;

/// An immutable byte buffer (cheap clone not guaranteed; stub semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side accessors (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read-side accessors (subset of `bytes::Buf`), implemented for `&[u8]`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64;

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_i64(-5);
        buf.put_f64(1.5);
        let frozen = buf.freeze();
        let mut read: &[u8] = &frozen;
        assert_eq!(read.get_u8(), 7);
        assert_eq!(read.get_u32(), 0xDEAD_BEEF);
        assert_eq!(read.get_u64(), 42);
        assert_eq!(read.get_i64(), -5);
        assert_eq!(read.get_f64(), 1.5);
        assert!(!read.has_remaining());
    }

    #[test]
    fn slices_and_lengths() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 3);
        let bytes = buf.freeze();
        assert_eq!(&bytes[..2], b"ab");
        assert_eq!(bytes.to_vec(), b"abc");
        let mut read: &[u8] = &bytes;
        read.advance(1);
        assert_eq!(read.remaining(), 2);
    }
}
