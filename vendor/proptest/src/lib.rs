//! A minimal, proptest-compatible property-testing DSL for offline builds.
//!
//! Supports the subset of the `proptest` 1.x API this workspace's tests
//! use: range and `any::<T>()` strategies, tuples, `Just`, simple
//! `"[a-z]{lo,hi}"` string patterns, `collection::{vec, btree_map}`, the
//! `prop_map`/`prop_filter`/`prop_recursive` combinators, `prop_oneof!`,
//! and the `proptest!` test macro with `ProptestConfig::with_cases`.
//!
//! Unlike the real crate there is no shrinking: failures report the
//! generated inputs via the panic message only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Everything a test module needs, for glob import.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `predicate` (regenerating, up to a
    /// bounded number of attempts).
    fn prop_filter<F>(self, _reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            predicate,
        }
    }

    /// Builds a recursive strategy by applying `recurse` `depth` times to
    /// the leaf strategy.  The `_desired_size` / `_expected_branch` hints
    /// of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 consecutive generated values");
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternative strategies (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Full bit pattern: may be NaN/infinite; tests filter as needed.
        f64::from_bits(rng.gen::<u64>())
    }
}

/// The [`any`] strategy.
pub struct Any<T> {
    marker: PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self {
            marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: PhantomData,
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// String pattern strategy: supports the `"[lo-hi]{min,max}"` shape (one
/// character class with a repetition count), which is all this workspace
/// uses.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (class, reps) = self
            .split_once('{')
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let class = class
            .strip_prefix('[')
            .and_then(|c| c.strip_suffix(']'))
            .unwrap_or_else(|| panic!("unsupported character class in {self:?}"));
        let mut chars = class.chars();
        let (lo, dash, hi) = (chars.next(), chars.next(), chars.next());
        assert!(
            dash == Some('-') && chars.next().is_none(),
            "unsupported character class in {self:?}"
        );
        let (lo, hi) = (
            lo.expect("class lower bound"),
            hi.expect("class upper bound"),
        );
        let reps = reps
            .strip_suffix('}')
            .unwrap_or_else(|| panic!("bad repetition in {self:?}"));
        let (min, max) = reps
            .split_once(',')
            .map(|(a, b)| (a.parse().expect("min"), b.parse().expect("max")))
            .unwrap_or_else(|| {
                let n: usize = reps.parse().expect("count");
                (n, n)
            });
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| rng.gen_range(lo as u32..=hi as u32))
            .filter_map(char::from_u32)
            .collect()
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeMap`s; see [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }

    /// Generates `BTreeMap`s with `size`-many `keys`/`values` entries
    /// (deduplicated by key, like the real crate).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { keys, values, size }
    }
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(file!(), line!(), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )*
                    // A zero-argument closure per case so that
                    // `prop_assume!`'s `return` skips only this case.
                    #[allow(clippy::redundant_closure_call)]
                    (move || $body)();
                }
            }
        )*
    };
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Builds the deterministic RNG for one generated test case.
#[doc(hidden)]
pub fn case_rng(file: &str, line: u32, case: u32) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in file.bytes() {
        seed = (seed ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
    }
    seed = (seed ^ line as u64).wrapping_mul(0x1000_0000_01b3);
    seed = (seed ^ case as u64).wrapping_mul(0x1000_0000_01b3);
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 1usize..10, b in 0u32..=5, f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in collection::vec((0u8..3, 0u64..9), 1..20),
            s in "[a-z]{1,8}",
            x in any::<u64>().prop_map(|n| n % 7),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|(a, b)| *a < 3 && *b < 9));
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(x < 7);
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn oneof_and_recursive_strategies() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        let strategy = prop_oneof![(0u64..5).prop_map(Tree::Leaf), Just(Tree::Leaf(99)),]
            .prop_recursive(2, 8, 4, |inner| {
                collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::case_rng(file!(), line!(), 0);
        for _ in 0..50 {
            let tree = Strategy::generate(&strategy, &mut rng);
            fn leaves_ok(t: &Tree) -> bool {
                match t {
                    Tree::Leaf(n) => *n < 5 || *n == 99,
                    Tree::Node(children) => children.iter().all(leaves_ok),
                }
            }
            assert!(leaves_ok(&tree));
        }
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let strategy = any::<f64>().prop_filter("finite", |f| f.is_finite());
        let mut rng = crate::case_rng(file!(), line!(), 1);
        for _ in 0..100 {
            assert!(Strategy::generate(&strategy, &mut rng).is_finite());
        }
    }
}
