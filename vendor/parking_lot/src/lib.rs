//! A small, API-compatible subset of `parking_lot` implemented over
//! `std::sync`, for offline builds.
//!
//! Differences from the real crate that matter here:
//!
//! * lock poisoning is transparent — a panic while holding a lock does not
//!   poison it for later users (matching `parking_lot` semantics);
//! * only the operations this workspace uses are provided.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual exclusion primitive (see `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (see `parking_lot::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] (see `parking_lot::Condvar`).
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(rw.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("drop while holding");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
