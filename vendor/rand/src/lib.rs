//! A small, API-compatible subset of `rand` 0.8 for offline builds.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64) together
//! with the [`Rng`]/[`SeedableRng`] trait surface this workspace uses:
//! `gen`, `gen_range` (over the common integer/float ranges), and
//! `gen_bool`.  Distribution quality is adequate for simulation and tests;
//! it makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Rngs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Derives a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample values of type `T` from.
pub trait SampleRange<T> {
    /// Draws a uniformly distributed value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "gen_range called with an empty range");
    // Modulo bias is acceptable for simulation workloads.
    rng.next_u64() % span
}

/// Types [`Rng::gen_range`] can sample uniformly (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        Self::sample_half_open(lo, hi + f64::EPSILON, rng).min(hi)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods every [`RngCore`] gets (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                low += 1;
            }
        }
        assert!((350..=650).contains(&low), "roughly balanced: {low}");
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((120..=280).contains(&hits), "p=0.2 over 1000 draws: {hits}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
