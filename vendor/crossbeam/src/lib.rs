//! A small, API-compatible subset of `crossbeam` for offline builds: only
//! `crossbeam::channel`, implemented over `std::sync::mpsc`.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    enum AnySender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for AnySender<T> {
        fn clone(&self) -> Self {
            match self {
                AnySender::Unbounded(tx) => AnySender::Unbounded(tx.clone()),
                AnySender::Bounded(tx) => AnySender::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: AnySender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] when the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                AnySender::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                AnySender::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends a message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TrySendError::Full`] when a bounded channel is at
        /// capacity and [`TrySendError::Disconnected`] when the receiver
        /// was dropped.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                AnySender::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                AnySender::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when all senders disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a queued message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: AnySender::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: AnySender::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_reports_disconnect() {
            let (tx, rx) = bounded::<i32>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = bounded(1);
            tx2.send(7).unwrap();
            drop(rx2);
            assert_eq!(tx2.send(8), Err(SendError(8)));
        }

        #[test]
        fn try_send_reports_full_and_disconnect() {
            let (tx, rx) = bounded::<i32>(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            drop(rx);
            assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
            // Unbounded channels are never full.
            let (tx, rx) = unbounded::<i32>();
            tx.try_send(4).unwrap();
            assert_eq!(rx.recv(), Ok(4));
            drop(rx);
            assert_eq!(tx.try_send(5), Err(TrySendError::Disconnected(5)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<i32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
