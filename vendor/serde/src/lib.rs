//! A facade over the marker serde derive macros, for offline builds.
//!
//! Only the names this workspace uses are provided: the [`Serialize`] /
//! [`Deserialize`] marker traits (no methods — there is no runtime
//! serialisation machinery; snapshots and migration payloads go through
//! `aeon_types::codec`), the corresponding derive macros, and
//! [`de::DeserializeOwned`].

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

/// Deserialisation helper traits.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
