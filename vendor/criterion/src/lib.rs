//! A minimal, criterion-compatible benchmark harness for offline builds.
//!
//! Supports the subset of the `criterion` 0.5 API this workspace's benches
//! use: `bench_function`, `benchmark_group`/`bench_with_input`,
//! `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros.  Each benchmark runs for a short, fixed budget and prints the
//! mean wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How inputs are batched in [`Bencher::iter_batched`] (accepted for API
/// compatibility; the stub always runs one input per routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }
}

/// Drives the measured routine.
pub struct Bencher {
    budget: Duration,
    /// (total time, iterations) recorded by the last `iter*` call.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let started = Instant::now();
        let mut iterations = 0u64;
        while started.elapsed() < self.budget {
            std::hint::black_box(routine());
            iterations += 1;
        }
        self.measured = Some((started.elapsed(), iterations.max(1)));
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while total < self.budget {
            let input = setup();
            let started = Instant::now();
            std::hint::black_box(routine(input));
            total += started.elapsed();
            iterations += 1;
        }
        self.measured = Some((total, iterations.max(1)));
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility (the stub has no sampling phase).
    #[must_use]
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        // Keep stub runs short regardless of the configured budget.
        self.measurement_time = time.min(Duration::from_millis(500));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            measured: None,
        };
        f(&mut bencher);
        report(name, bencher.measured);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group on `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            budget: self.criterion.measurement_time,
            measured: None,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), bencher.measured);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn report(name: &str, measured: Option<(Duration, u64)>) {
    match measured {
        Some((total, iterations)) => {
            let per_iter = total.as_nanos() as f64 / iterations as f64;
            println!("bench {name:<50} {per_iter:>12.0} ns/iter ({iterations} iters)");
        }
        None => println!("bench {name:<50} (not measured)"),
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut criterion = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .sample_size(10);
        sample_bench(&mut criterion);
    }

    criterion_group!(plain, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().measurement_time(Duration::from_millis(5));
        targets = sample_bench
    }

    #[test]
    fn group_macros_expand() {
        // The macro bodies only need a short run to prove they are wired.
        plain();
        configured();
    }
}
