//! A minimal, criterion-compatible benchmark harness for offline builds.
//!
//! Supports the subset of the `criterion` 0.5 API this workspace's benches
//! use: `bench_function`, `benchmark_group`/`bench_with_input`,
//! `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros.  Each benchmark runs for a short, fixed budget and prints the
//! mean wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How inputs are batched in [`Bencher::iter_batched`] (accepted for API
/// compatibility; the stub always runs one input per routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }
}

/// Per-iteration timing statistics recorded by the last `iter*` call.
///
/// Every iteration is bracketed by its own pair of monotonic
/// [`Instant`] reads, so the reported time never includes the harness's
/// budget bookkeeping or (for [`Bencher::iter_batched`]) the setup
/// closure, and the per-iteration spread is measurable.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Number of timed iterations.
    pub iterations: u64,
    /// Sum of the per-iteration times.
    pub total: Duration,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Unbiased sample variance of the per-iteration times, in ns².
    pub variance_ns2: f64,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: f64,
    /// Slowest iteration, in nanoseconds.
    pub max_ns: f64,
}

impl Measurement {
    /// Sample standard deviation of the per-iteration times, in ns.
    pub fn stddev_ns(&self) -> f64 {
        self.variance_ns2.sqrt()
    }
}

/// Streaming mean/variance/extremes over per-iteration times (Welford's
/// algorithm), so unbounded iteration counts need no sample buffer.
#[derive(Debug, Default)]
struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    total: Duration,
}

impl Welford {
    fn record(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos() as f64;
        self.n += 1;
        let delta = ns - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (ns - self.mean);
        if self.n == 1 {
            self.min = ns;
            self.max = ns;
        } else {
            self.min = self.min.min(ns);
            self.max = self.max.max(ns);
        }
        self.total += elapsed;
    }

    fn finish(self) -> Measurement {
        Measurement {
            iterations: self.n.max(1),
            total: self.total,
            mean_ns: self.mean,
            variance_ns2: if self.n > 1 {
                self.m2 / (self.n - 1) as f64
            } else {
                0.0
            },
            min_ns: self.min,
            max_ns: self.max,
        }
    }
}

/// Drives the measured routine.
pub struct Bencher {
    budget: Duration,
    /// Statistics recorded by the last `iter*` call.
    measured: Option<Measurement>,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    /// Each iteration is timed with its own monotonic [`Instant`] pair.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let mut stats = Welford::default();
        let run_started = Instant::now();
        loop {
            let started = Instant::now();
            std::hint::black_box(routine());
            stats.record(started.elapsed());
            if run_started.elapsed() >= self.budget {
                break;
            }
        }
        self.measured = Some(stats.finish());
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut stats = Welford::default();
        while stats.total < self.budget {
            let input = setup();
            let started = Instant::now();
            std::hint::black_box(routine(input));
            stats.record(started.elapsed());
        }
        self.measured = Some(stats.finish());
    }

    /// Statistics of the last `iter*` call, if any.
    pub fn measurement(&self) -> Option<Measurement> {
        self.measured
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility (the stub has no sampling phase).
    #[must_use]
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        // Keep stub runs short regardless of the configured budget.
        self.measurement_time = time.min(Duration::from_millis(500));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            measured: None,
        };
        f(&mut bencher);
        report(name, bencher.measured);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group on `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            budget: self.criterion.measurement_time,
            measured: None,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), bencher.measured);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn report(name: &str, measured: Option<Measurement>) {
    match measured {
        Some(m) => {
            println!(
                "bench {name:<50} {mean:>12.0} ns/iter (±{sd:.0} ns, min {min:.0}, max {max:.0}, {n} iters)",
                mean = m.mean_ns,
                sd = m.stddev_ns(),
                min = m.min_ns,
                max = m.max_ns,
                n = m.iterations,
            );
        }
        None => println!("bench {name:<50} (not measured)"),
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut criterion = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .sample_size(10);
        sample_bench(&mut criterion);
    }

    criterion_group!(plain, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().measurement_time(Duration::from_millis(5));
        targets = sample_bench
    }

    #[test]
    fn group_macros_expand() {
        // The macro bodies only need a short run to prove they are wired.
        plain();
        configured();
    }

    #[test]
    fn measurements_report_per_iteration_spread() {
        let mut bencher = Bencher {
            budget: Duration::from_millis(2),
            measured: None,
        };
        bencher.iter(|| std::thread::sleep(Duration::from_micros(50)));
        let m = bencher.measurement().expect("iter records a measurement");
        assert!(m.iterations >= 1);
        assert!(m.total > Duration::ZERO);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
        assert!(m.variance_ns2 >= 0.0);
        assert!(m.stddev_ns() >= 0.0);
    }
}
