//! Marker `Serialize`/`Deserialize` derive macros for offline builds.
//!
//! The workspace derives the serde traits on many (non-generic) types for
//! forward compatibility but never serialises through serde at runtime
//! (snapshots use the self-contained `aeon_types::codec`).  These derives
//! accept the `#[serde(...)]` attributes and emit empty marker-trait
//! implementations so that `T: Serialize`/`T: DeserializeOwned` bounds
//! hold.

use proc_macro::{TokenStream, TokenTree};

/// Returns the name of the first `struct`/`enum`/`union` declared in the
/// derive input.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                for next in tokens.by_ref() {
                    if let TokenTree::Ident(name) = next {
                        return Some(name.to_string());
                    }
                }
            }
        }
    }
    None
}

/// Derives the `serde::Serialize` marker implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

/// Derives the `serde::Deserialize` marker implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
