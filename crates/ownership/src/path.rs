//! Top-down path discovery in the ownership DAG.
//!
//! `activatePath` in Algorithm 2 of the paper locks every context on a path
//! from an event's dominator down to the context being entered, in top-down
//! order.  This module finds such a path.

use crate::graph::OwnershipGraph;
use aeon_types::{AeonError, ContextId, Result};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Finds a shortest ownership path `from -> ... -> to` (inclusive on both
/// ends) following directly-owned edges.
///
/// When `from == to` the path is the single context.  The choice among
/// several shortest paths is deterministic (children are explored in
/// ascending id order) so that repeated activations of the same event lock
/// the same contexts.
///
/// # Errors
///
/// * [`AeonError::ContextNotFound`] if either endpoint is unknown.
/// * [`AeonError::OwnershipViolation`] if `to` is not reachable from `from`
///   (i.e. `from` does not transitively own `to`).
pub fn find_path(graph: &OwnershipGraph, from: ContextId, to: ContextId) -> Result<Vec<ContextId>> {
    if !graph.contains(from) {
        return Err(AeonError::ContextNotFound(from));
    }
    if !graph.contains(to) {
        return Err(AeonError::ContextNotFound(to));
    }
    if from == to {
        return Ok(vec![from]);
    }
    // BFS from `from` towards `to` along children edges.
    let mut predecessor: BTreeMap<ContextId, ContextId> = BTreeMap::new();
    let mut visited: BTreeSet<ContextId> = BTreeSet::from([from]);
    let mut queue = VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &child in graph.children(cur)? {
            if visited.insert(child) {
                predecessor.insert(child, cur);
                if child == to {
                    // Reconstruct.
                    let mut path = vec![to];
                    let mut node = to;
                    while let Some(&prev) = predecessor.get(&node) {
                        path.push(prev);
                        node = prev;
                    }
                    path.reverse();
                    return Ok(path);
                }
                queue.push_back(child);
            }
        }
    }
    Err(AeonError::ownership(from, to))
}

/// Returns every context on *some* path from `from` to `to` — the union of
/// all paths.  Used by conservative lock acquisition strategies and by the
/// snapshot API (a consistent snapshot of a context covers all reachable
/// children).
///
/// # Errors
///
/// Same conditions as [`find_path`].
pub fn all_on_paths(
    graph: &OwnershipGraph,
    from: ContextId,
    to: ContextId,
) -> Result<BTreeSet<ContextId>> {
    // A context X is on a path from `from` to `to` iff it is reachable from
    // `from` and `to` is reachable from it.
    find_path(graph, from, to)?; // validates reachability and endpoints
    let mut down: BTreeSet<ContextId> = graph.descendants(from)?;
    down.insert(from);
    let mut up: BTreeSet<ContextId> = graph.ancestors(to)?;
    up.insert(to);
    Ok(down.intersection(&up).copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::game_graph;

    #[test]
    fn trivial_path_is_the_context_itself() {
        let (g, ids) = game_graph();
        assert_eq!(
            find_path(&g, ids.player1, ids.player1).unwrap(),
            vec![ids.player1]
        );
    }

    #[test]
    fn path_from_dominator_to_target() {
        let (g, ids) = game_graph();
        let path = find_path(&g, ids.kings_room, ids.treasure).unwrap();
        // The shortest path is the direct ownership edge.
        assert_eq!(path, vec![ids.kings_room, ids.treasure]);
        let path = find_path(&g, ids.castle, ids.sword).unwrap();
        assert_eq!(path.first(), Some(&ids.castle));
        assert_eq!(path.last(), Some(&ids.sword));
        // Every consecutive pair must be an ownership edge.
        for w in path.windows(2) {
            assert!(g.children(w[0]).unwrap().contains(&w[1]));
        }
    }

    #[test]
    fn unreachable_target_is_an_ownership_violation() {
        let (g, ids) = game_graph();
        assert!(matches!(
            find_path(&g, ids.armory, ids.treasure),
            Err(AeonError::OwnershipViolation { .. })
        ));
        assert!(matches!(
            find_path(&g, ids.player1, ids.kings_room),
            Err(AeonError::OwnershipViolation { .. })
        ));
    }

    #[test]
    fn unknown_endpoints_are_reported() {
        let (g, _) = game_graph();
        let ghost = aeon_types::ContextId::new(999);
        assert!(matches!(
            find_path(&g, ghost, ghost),
            Err(AeonError::ContextNotFound(_))
        ));
    }

    #[test]
    fn all_on_paths_is_a_superset_of_any_path() {
        let (g, ids) = game_graph();
        let union = all_on_paths(&g, ids.armory, ids.sword).unwrap();
        // Both the Player3 route and the Weapons Vault route are included.
        assert!(union.contains(&ids.player3));
        assert!(union.contains(&ids.weapons_vault));
        assert!(union.contains(&ids.armory));
        assert!(union.contains(&ids.sword));
        assert!(!union.contains(&ids.horse));
        let path = find_path(&g, ids.armory, ids.sword).unwrap();
        for c in path {
            assert!(union.contains(&c));
        }
    }
}
