//! The runtime ownership DAG.

use aeon_types::{AeonError, ContextId, Result, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Metadata stored per context node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Node {
    /// Name of the contextclass the node is an instance of.
    class: String,
    /// Children (contexts directly owned by this one).
    children: BTreeSet<ContextId>,
    /// Parents (contexts that directly own this one).
    parents: BTreeSet<ContextId>,
}

/// The ownership network `G`: a directed acyclic graph over contexts where
/// an edge `a -> b` means "`a` directly owns `b`" (a field of `a` references
/// `b`).
///
/// The graph is the ground truth consulted by the execution protocol
/// (dominators, activation paths) and by the elasticity manager (placement,
/// migration of a context together with its subtree).  Every mutation is
/// cycle-checked so the DAG invariant can never be violated at runtime, and
/// bumps a version counter that dominator caches use for invalidation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipGraph {
    nodes: BTreeMap<ContextId, Node>,
    version: u64,
}

impl OwnershipGraph {
    /// Creates an empty ownership network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of contexts in the network.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the network contains no contexts.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Monotonically increasing version, bumped on every mutation.
    ///
    /// Used by [`crate::DominatorResolver`] to invalidate its cache.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Returns `true` when `id` is a known context.
    pub fn contains(&self, id: ContextId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Name of the contextclass of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn class_of(&self, id: ContextId) -> Result<&str> {
        self.node(id).map(|n| n.class.as_str())
    }

    /// Registers a new context with no owners.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Internal`] if the id is already registered.
    pub fn add_context(&mut self, id: ContextId, class: impl Into<String>) -> Result<()> {
        if self.nodes.contains_key(&id) {
            return Err(AeonError::internal(format!(
                "context {id} already registered"
            )));
        }
        self.nodes.insert(
            id,
            Node {
                class: class.into(),
                children: BTreeSet::new(),
                parents: BTreeSet::new(),
            },
        );
        self.version += 1;
        Ok(())
    }

    /// Removes a context and every edge incident to it.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn remove_context(&mut self, id: ContextId) -> Result<()> {
        let node = self
            .nodes
            .remove(&id)
            .ok_or(AeonError::ContextNotFound(id))?;
        for parent in &node.parents {
            if let Some(p) = self.nodes.get_mut(parent) {
                p.children.remove(&id);
            }
        }
        for child in &node.children {
            if let Some(c) = self.nodes.get_mut(child) {
                c.parents.remove(&id);
            }
        }
        self.version += 1;
        Ok(())
    }

    /// Adds a directly-owned edge `owner -> owned`.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] if either endpoint is unknown.
    /// * [`AeonError::CycleDetected`] if the edge would create a cycle
    ///   (including a self-loop).  The graph is left unchanged in that case.
    pub fn add_edge(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        if !self.contains(owner) {
            return Err(AeonError::ContextNotFound(owner));
        }
        if !self.contains(owned) {
            return Err(AeonError::ContextNotFound(owned));
        }
        if owner == owned || self.is_ancestor(owned, owner) {
            return Err(AeonError::CycleDetected {
                from: owner,
                to: owned,
            });
        }
        let inserted = self
            .nodes
            .get_mut(&owner)
            .expect("checked")
            .children
            .insert(owned);
        self.nodes
            .get_mut(&owned)
            .expect("checked")
            .parents
            .insert(owner);
        if inserted {
            self.version += 1;
        }
        Ok(())
    }

    /// Removes the edge `owner -> owned` if present.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] if either endpoint is unknown.
    pub fn remove_edge(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        if !self.contains(owner) {
            return Err(AeonError::ContextNotFound(owner));
        }
        if !self.contains(owned) {
            return Err(AeonError::ContextNotFound(owned));
        }
        let removed = self
            .nodes
            .get_mut(&owner)
            .expect("checked")
            .children
            .remove(&owned);
        self.nodes
            .get_mut(&owned)
            .expect("checked")
            .parents
            .remove(&owner);
        if removed {
            self.version += 1;
        }
        Ok(())
    }

    /// Direct children (directly-owned contexts) of `id`.
    pub fn children(&self, id: ContextId) -> Result<&BTreeSet<ContextId>> {
        self.node(id).map(|n| &n.children)
    }

    /// Direct parents (direct owners) of `id`.
    pub fn parents(&self, id: ContextId) -> Result<&BTreeSet<ContextId>> {
        self.node(id).map(|n| &n.parents)
    }

    /// All contexts with no owner (the maxima of the ownership order).
    pub fn roots(&self) -> Vec<ContextId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.parents.is_empty())
            .map(|(id, _)| *id)
            .collect()
    }

    /// All contexts in the network, in ascending id order.
    pub fn contexts(&self) -> impl Iterator<Item = ContextId> + '_ {
        self.nodes.keys().copied()
    }

    /// Iterates `(owner, owned)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (ContextId, ContextId)> + '_ {
        self.nodes
            .iter()
            .flat_map(|(id, n)| n.children.iter().map(move |c| (*id, *c)))
    }

    /// The set of strict descendants of `id` (everything transitively owned,
    /// excluding `id` itself).
    pub fn descendants(&self, id: ContextId) -> Result<BTreeSet<ContextId>> {
        self.node(id)?;
        Ok(self.reach(id, |n| &n.children))
    }

    /// The subtree rooted at `id` (the root plus all its descendants) in a
    /// topological order: every owner precedes every context it
    /// (transitively) owns, with ties broken by context id so the order is
    /// deterministic.
    ///
    /// This is the acquisition order used by coordinated subtree freezes
    /// (snapshot / restore): because method calls only travel *down*
    /// ownership edges, acquiring member locks owner-before-owned can never
    /// deadlock against an in-flight event that already holds a member.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] if `id` is unknown.
    pub fn subtree_topological(&self, id: ContextId) -> Result<Vec<ContextId>> {
        let mut members = self.descendants(id)?;
        members.insert(id);
        // Kahn's algorithm over the edges internal to the member set; the
        // ready set is a BTreeSet so equal-depth members come out in id
        // order.
        let mut indegree: BTreeMap<ContextId, usize> = members.iter().map(|m| (*m, 0)).collect();
        for member in &members {
            for child in self.children(*member).expect("member sets are closed") {
                if let Some(d) = indegree.get_mut(child) {
                    *d += 1;
                }
            }
        }
        let mut ready: BTreeSet<ContextId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(m, _)| *m)
            .collect();
        let mut order = Vec::with_capacity(members.len());
        while let Some(next) = ready.iter().next().copied() {
            ready.remove(&next);
            order.push(next);
            for child in self.children(next).expect("member sets are closed") {
                if let Some(d) = indegree.get_mut(child) {
                    *d -= 1;
                    if *d == 0 {
                        ready.insert(*child);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), members.len(), "ownership DAG is acyclic");
        Ok(order)
    }

    /// The set of strict ancestors of `id` (everything that transitively
    /// owns it, excluding `id` itself).
    pub fn ancestors(&self, id: ContextId) -> Result<BTreeSet<ContextId>> {
        self.node(id)?;
        Ok(self.reach(id, |n| &n.parents))
    }

    /// Returns `true` if `ancestor` transitively owns `descendant`
    /// (strictly: a context is not its own ancestor).
    pub fn is_ancestor(&self, ancestor: ContextId, descendant: ContextId) -> bool {
        if ancestor == descendant || !self.contains(ancestor) || !self.contains(descendant) {
            return false;
        }
        // BFS from `descendant` upwards; ownership chains are short in
        // practice (the class DAG bounds their length).
        let mut queue = VecDeque::from([descendant]);
        let mut seen = BTreeSet::from([descendant]);
        while let Some(cur) = queue.pop_front() {
            if let Some(node) = self.nodes.get(&cur) {
                for p in &node.parents {
                    if *p == ancestor {
                        return true;
                    }
                    if seen.insert(*p) {
                        queue.push_back(*p);
                    }
                }
            }
        }
        false
    }

    /// Returns `true` if `caller` is allowed to invoke a method on `callee`:
    /// either they are the same context or `caller` transitively owns
    /// `callee` (§3: "an event executing in a certain context C can issue
    /// method calls to any contexts that C owns").
    pub fn may_call(&self, caller: ContextId, callee: ContextId) -> bool {
        caller == callee || self.is_ancestor(caller, callee)
    }

    /// Whether the graph is acyclic.  Mutations preserve acyclicity, so this
    /// only returns `false` for graphs deserialised from untrusted input.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let mut indegree: BTreeMap<ContextId, usize> = self
            .nodes
            .iter()
            .map(|(id, n)| (*id, n.parents.len()))
            .collect();
        let mut queue: VecDeque<ContextId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut visited = 0usize;
        while let Some(cur) = queue.pop_front() {
            visited += 1;
            if let Some(node) = self.nodes.get(&cur) {
                for child in &node.children {
                    if let Some(d) = indegree.get_mut(child) {
                        *d -= 1;
                        if *d == 0 {
                            queue.push_back(*child);
                        }
                    }
                }
            }
        }
        visited == self.nodes.len()
    }

    /// Contexts in topological order (owners before owned).
    pub fn topological_order(&self) -> Vec<ContextId> {
        let mut indegree: BTreeMap<ContextId, usize> = self
            .nodes
            .iter()
            .map(|(id, n)| (*id, n.parents.len()))
            .collect();
        let mut queue: VecDeque<ContextId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(cur) = queue.pop_front() {
            order.push(cur);
            for child in &self.nodes[&cur].children {
                let d = indegree.get_mut(child).expect("child registered");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(*child);
                }
            }
        }
        order
    }

    /// Serialises the graph into a [`Value`] for persistence in the cloud
    /// storage substrate (the eManager stores the ownership network next to
    /// the context mapping, §5.1).
    pub fn to_value(&self) -> Value {
        let nodes = self
            .nodes
            .iter()
            .map(|(id, n)| {
                Value::map([
                    ("id", Value::from(*id)),
                    ("class", Value::from(n.class.clone())),
                    (
                        "children",
                        Value::List(n.children.iter().map(|c| Value::from(*c)).collect()),
                    ),
                ])
            })
            .collect();
        Value::map([
            ("version", Value::from(self.version as i64)),
            ("nodes", Value::List(nodes)),
        ])
    }

    /// Reconstructs a graph from [`OwnershipGraph::to_value`] output.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Codec`] when the value does not have the
    /// expected shape, and [`AeonError::CycleDetected`] when the encoded
    /// graph is not acyclic.
    pub fn from_value(value: &Value) -> Result<Self> {
        let nodes = value
            .get("nodes")
            .and_then(Value::as_list)
            .ok_or_else(|| AeonError::Codec("ownership graph: missing nodes".into()))?;
        let mut graph = OwnershipGraph::new();
        // First pass: contexts.
        for entry in nodes {
            let id = entry
                .get("id")
                .and_then(Value::as_context)
                .ok_or_else(|| AeonError::Codec("ownership graph: node missing id".into()))?;
            let class = entry
                .get("class")
                .and_then(Value::as_str)
                .ok_or_else(|| AeonError::Codec("ownership graph: node missing class".into()))?;
            graph.add_context(id, class)?;
        }
        // Second pass: edges (cycle-checked by add_edge).
        for entry in nodes {
            let id = entry
                .get("id")
                .and_then(Value::as_context)
                .expect("validated above");
            if let Some(children) = entry.get("children").and_then(Value::as_list) {
                for child in children {
                    let child = child.as_context().ok_or_else(|| {
                        AeonError::Codec("ownership graph: child is not a context ref".into())
                    })?;
                    graph.add_edge(id, child)?;
                }
            }
        }
        graph.version = value
            .get("version")
            .and_then(Value::as_i64)
            .unwrap_or(graph.version as i64) as u64;
        Ok(graph)
    }

    fn node(&self, id: ContextId) -> Result<&Node> {
        self.nodes.get(&id).ok_or(AeonError::ContextNotFound(id))
    }

    fn reach<'a, F>(&'a self, start: ContextId, next: F) -> BTreeSet<ContextId>
    where
        F: Fn(&'a Node) -> &'a BTreeSet<ContextId>,
    {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(cur) = queue.pop_front() {
            if let Some(node) = self.nodes.get(&cur) {
                for n in next(node) {
                    if out.insert(*n) {
                        queue.push_back(*n);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::game_graph;
    use proptest::prelude::*;

    fn ctx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    fn chain(n: u64) -> OwnershipGraph {
        let mut g = OwnershipGraph::new();
        for i in 0..n {
            g.add_context(ctx(i), "C").unwrap();
            if i > 0 {
                g.add_edge(ctx(i - 1), ctx(i)).unwrap();
            }
        }
        g
    }

    #[test]
    fn add_and_remove_contexts() {
        let mut g = OwnershipGraph::new();
        assert!(g.is_empty());
        g.add_context(ctx(1), "Room").unwrap();
        assert!(g.contains(ctx(1)));
        assert_eq!(g.class_of(ctx(1)).unwrap(), "Room");
        assert!(
            g.add_context(ctx(1), "Room").is_err(),
            "duplicate registration rejected"
        );
        g.remove_context(ctx(1)).unwrap();
        assert!(!g.contains(ctx(1)));
        assert!(g.remove_context(ctx(1)).is_err());
    }

    #[test]
    fn edges_require_known_endpoints() {
        let mut g = OwnershipGraph::new();
        g.add_context(ctx(1), "A").unwrap();
        assert!(matches!(
            g.add_edge(ctx(1), ctx(2)),
            Err(AeonError::ContextNotFound(_))
        ));
        assert!(matches!(
            g.add_edge(ctx(3), ctx(1)),
            Err(AeonError::ContextNotFound(_))
        ));
    }

    #[test]
    fn self_loops_and_cycles_are_rejected() {
        let mut g = chain(3);
        assert!(matches!(
            g.add_edge(ctx(1), ctx(1)),
            Err(AeonError::CycleDetected { .. })
        ));
        assert!(matches!(
            g.add_edge(ctx(2), ctx(0)),
            Err(AeonError::CycleDetected { .. })
        ));
        // Graph unchanged by the failed mutations.
        assert!(g.is_acyclic());
        assert_eq!(g.descendants(ctx(0)).unwrap().len(), 2);
    }

    #[test]
    fn multi_ownership_is_allowed() {
        let (g, ids) = game_graph();
        let parents = g.parents(ids.treasure).unwrap();
        assert!(parents.contains(&ids.player1));
        assert!(parents.contains(&ids.player2));
        assert!(parents.contains(&ids.kings_room));
    }

    #[test]
    fn descendants_and_ancestors() {
        let (g, ids) = game_graph();
        let desc = g.descendants(ids.kings_room).unwrap();
        assert!(desc.contains(&ids.player1));
        assert!(desc.contains(&ids.treasure));
        assert!(!desc.contains(&ids.armory));
        let anc = g.ancestors(ids.sword).unwrap();
        assert!(anc.contains(&ids.player3));
        assert!(anc.contains(&ids.weapons_vault));
        assert!(anc.contains(&ids.armory));
        assert!(anc.contains(&ids.castle));
        assert!(!anc.contains(&ids.kings_room));
    }

    #[test]
    fn subtree_topological_orders_owners_before_owned() {
        let (g, ids) = game_graph();
        let order = g.subtree_topological(ids.castle).unwrap();
        let mut members = g.descendants(ids.castle).unwrap();
        members.insert(ids.castle);
        assert_eq!(order.len(), members.len());
        let pos: BTreeMap<ContextId, usize> =
            order.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        for (owner, owned) in g.edges() {
            if pos.contains_key(&owner) && pos.contains_key(&owned) {
                assert!(pos[&owner] < pos[&owned], "{owner} before {owned}");
            }
        }
        // Deterministic: a second call yields the same order.
        assert_eq!(order, g.subtree_topological(ids.castle).unwrap());
    }

    #[test]
    fn subtree_topological_handles_id_order_inversions() {
        // An owner created *after* the context it owns: id order would
        // acquire child before parent, the topological order must not.
        let mut g = OwnershipGraph::new();
        g.add_context(ctx(1), "Root").unwrap();
        g.add_context(ctx(2), "Child").unwrap();
        g.add_context(ctx(3), "Middle").unwrap();
        g.add_edge(ctx(1), ctx(3)).unwrap();
        g.add_edge(ctx(3), ctx(2)).unwrap();
        let order = g.subtree_topological(ctx(1)).unwrap();
        assert_eq!(order, vec![ctx(1), ctx(3), ctx(2)]);
        assert!(g.subtree_topological(ctx(99)).is_err());
    }

    #[test]
    fn may_call_follows_ownership() {
        let (g, ids) = game_graph();
        assert!(g.may_call(ids.player1, ids.treasure));
        assert!(g.may_call(ids.kings_room, ids.treasure));
        assert!(g.may_call(ids.castle, ids.sword));
        assert!(g.may_call(ids.player1, ids.player1));
        assert!(!g.may_call(ids.player1, ids.player2));
        assert!(!g.may_call(ids.treasure, ids.player1));
    }

    #[test]
    fn roots_and_topological_order() {
        let (g, ids) = game_graph();
        assert_eq!(g.roots(), vec![ids.castle]);
        let order = g.topological_order();
        assert_eq!(order.len(), g.len());
        let pos = |c: ContextId| order.iter().position(|x| *x == c).unwrap();
        for (owner, owned) in g.edges() {
            assert!(pos(owner) < pos(owned), "{owner} must precede {owned}");
        }
    }

    #[test]
    fn removing_edges_updates_both_sides() {
        let (mut g, ids) = game_graph();
        g.remove_edge(ids.player1, ids.treasure).unwrap();
        assert!(!g.children(ids.player1).unwrap().contains(&ids.treasure));
        assert!(!g.parents(ids.treasure).unwrap().contains(&ids.player1));
        // Removing a non-existent edge is a no-op that does not bump version.
        let v = g.version();
        g.remove_edge(ids.player1, ids.treasure).unwrap();
        assert_eq!(g.version(), v);
    }

    #[test]
    fn removing_context_detaches_neighbours() {
        let (mut g, ids) = game_graph();
        g.remove_context(ids.treasure).unwrap();
        assert!(!g.children(ids.player1).unwrap().contains(&ids.treasure));
        assert!(!g.children(ids.kings_room).unwrap().contains(&ids.treasure));
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut g = OwnershipGraph::new();
        let v0 = g.version();
        g.add_context(ctx(1), "A").unwrap();
        g.add_context(ctx(2), "B").unwrap();
        let v1 = g.version();
        assert!(v1 > v0);
        g.add_edge(ctx(1), ctx(2)).unwrap();
        let v2 = g.version();
        assert!(v2 > v1);
        // Re-adding the same edge is idempotent.
        g.add_edge(ctx(1), ctx(2)).unwrap();
        assert_eq!(g.version(), v2);
    }

    #[test]
    fn value_round_trip_preserves_structure() {
        let (g, _) = game_graph();
        let v = g.to_value();
        let g2 = OwnershipGraph::from_value(&v).unwrap();
        assert_eq!(g2.len(), g.len());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        for c in g.contexts() {
            assert_eq!(g.class_of(c).unwrap(), g2.class_of(c).unwrap());
        }
    }

    #[test]
    fn from_value_rejects_garbage() {
        assert!(OwnershipGraph::from_value(&Value::Null).is_err());
        assert!(OwnershipGraph::from_value(&Value::map([("nodes", Value::Int(1))])).is_err());
    }

    /// Strategy producing an arbitrary sequence of graph mutations.
    fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
        proptest::collection::vec((0u8..3, 0u64..12, 0u64..12), 1..120)
    }

    proptest! {
        /// No sequence of mutations can ever produce a cyclic graph, and
        /// parent/child links always stay symmetric.
        #[test]
        fn dag_invariant_under_random_mutation(ops in arb_ops()) {
            let mut g = OwnershipGraph::new();
            for (op, a, b) in ops {
                let (a, b) = (ctx(a), ctx(b));
                match op {
                    0 => { let _ = g.add_context(a, "X"); }
                    1 => { let _ = g.add_edge(a, b); }
                    _ => { let _ = g.remove_edge(a, b); }
                }
            }
            prop_assert!(g.is_acyclic());
            for c in g.contexts().collect::<Vec<_>>() {
                for child in g.children(c).unwrap().clone() {
                    prop_assert!(g.parents(child).unwrap().contains(&c));
                }
                for parent in g.parents(c).unwrap().clone() {
                    prop_assert!(g.children(parent).unwrap().contains(&c));
                }
            }
        }

        /// `is_ancestor` agrees with membership in `descendants`.
        #[test]
        fn ancestor_agrees_with_descendants(ops in arb_ops()) {
            let mut g = OwnershipGraph::new();
            for (op, a, b) in ops {
                let (a, b) = (ctx(a), ctx(b));
                match op {
                    0 => { let _ = g.add_context(a, "X"); }
                    1 => { let _ = g.add_edge(a, b); }
                    _ => { let _ = g.remove_edge(a, b); }
                }
            }
            let all: Vec<_> = g.contexts().collect();
            for &a in &all {
                let desc = g.descendants(a).unwrap();
                for &b in &all {
                    prop_assert_eq!(g.is_ancestor(a, b), desc.contains(&b));
                }
            }
        }
    }
}
