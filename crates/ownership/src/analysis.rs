//! Static, contextclass-level ownership analysis (§3, "Type-based
//! enforcement of DAG ownership").
//!
//! AEON requires the *class-level* ownership constraints to be acyclic
//! (except for the reflexive case, which enables inductive structures such
//! as linked lists at the cost of runtime checks).  The analysis collects,
//! for every contextclass, the set of contextclasses its methods may reach,
//! and rejects programs whose constraint graph `C1 ≤ C0` contains a
//! non-reflexive cycle.

use aeon_types::{AeonError, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A reference to one contextclass method, `Class::method`, as used in
/// declared call summaries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MethodRef {
    /// Target contextclass name.
    pub class: String,
    /// Target method name.
    pub method: String,
}

impl MethodRef {
    /// Builds a reference from class and method names.
    pub fn new(class: impl Into<String>, method: impl Into<String>) -> Self {
        Self {
            class: class.into(),
            method: method.into(),
        }
    }

    /// Parses the `Class::method` notation used by `context_class!` call
    /// summaries; `None` when the text is not of that shape.
    pub fn parse(text: &str) -> Option<Self> {
        let (class, method) = text.split_once("::")?;
        if class.is_empty() || method.is_empty() || method.contains("::") {
            return None;
        }
        Some(Self::new(class, method))
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.class, self.method)
    }
}

/// Metadata of one contextclass method, as declared by the runtime's
/// method tables.
///
/// The analysis itself only needs the class-level ownership constraints, but
/// recording the per-class method surface here makes it available to every
/// consumer of the static analysis: tooling can list a class's methods, the
/// checker's recorder can classify operations as reads or writes without
/// instantiating a context, and cross-backend tests can assert that all
/// deployments agree on which methods are `ro`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodInfo {
    /// Method name as dispatched by the runtime.
    pub name: String,
    /// Whether the method was declared `readonly` (`ro`).
    pub readonly: bool,
    /// Declared outgoing call summary: the complete set of
    /// `Class::method` invocations this method may perform on *other*
    /// contexts.  `None` means the method never declared a summary (it is
    /// exempt from call-graph analysis); `Some(vec![])` declares "calls
    /// nothing".
    #[serde(default)]
    pub calls: Option<Vec<MethodRef>>,
}

impl MethodInfo {
    /// A method entry with no declared call summary.
    pub fn new(name: impl Into<String>, readonly: bool) -> Self {
        Self {
            name: name.into(),
            readonly,
            calls: None,
        }
    }
}

/// The contextclass constraint graph.
///
/// A constraint `owner ⊒ owned` (added with [`ClassGraph::add_constraint`])
/// records that instances of class `owner` may directly own / call into
/// instances of class `owned`, i.e. `owned ≤ owner` in the paper's notation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassGraph {
    /// class -> classes it may directly own.
    owns: BTreeMap<String, BTreeSet<String>>,
    /// class -> declared method surface (optional; filled in by the
    /// runtime's declarative method tables).
    #[serde(default)]
    methods: BTreeMap<String, Vec<MethodInfo>>,
}

impl ClassGraph {
    /// Creates an empty constraint graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a contextclass with no constraints yet.
    pub fn add_class(&mut self, class: impl Into<String>) -> &mut Self {
        self.owns.entry(class.into()).or_default();
        self
    }

    /// Returns `true` if the class has been declared.
    pub fn contains(&self, class: &str) -> bool {
        self.owns.contains_key(class)
    }

    /// Declared classes, in name order.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.owns.keys().map(String::as_str)
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.owns.len()
    }

    /// Returns `true` when no classes are declared.
    pub fn is_empty(&self) -> bool {
        self.owns.is_empty()
    }

    /// Records that `owner` instances may own `owned` instances
    /// (the constraint `owned ≤ owner`).  Both classes are declared
    /// implicitly if needed.  Reflexive constraints are allowed.
    pub fn add_constraint(
        &mut self,
        owner: impl Into<String>,
        owned: impl Into<String>,
    ) -> &mut Self {
        let owner = owner.into();
        let owned = owned.into();
        self.owns.entry(owned.clone()).or_default();
        self.owns.entry(owner).or_default().insert(owned);
        self
    }

    /// Returns whether instances of `owner` are allowed to directly own
    /// instances of `owned` according to the declared constraints.
    ///
    /// The reflexive case is always allowed (inductive data structures),
    /// mirroring the exception made by the paper's analysis.
    pub fn allows(&self, owner: &str, owned: &str) -> bool {
        if owner == owned {
            return true;
        }
        self.owns.get(owner).is_some_and(|set| set.contains(owned))
    }

    /// Returns whether the constraint `owned ≤ owner` was *explicitly*
    /// declared with [`ClassGraph::add_constraint`].
    ///
    /// Unlike [`ClassGraph::allows`] this does not grant the reflexive case
    /// for free: the analyzer uses it to distinguish an intentional
    /// inductive structure (`Node` declared to own `Node`) from accidental
    /// self-recursion in a call summary.
    pub fn declares(&self, owner: &str, owned: &str) -> bool {
        self.owns.get(owner).is_some_and(|set| set.contains(owned))
    }

    /// The classes `owner` was explicitly declared to own, in name order.
    pub fn owned_by(&self, owner: &str) -> impl Iterator<Item = &str> {
        self.owns
            .get(owner)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// Declares a method of `class` (declaring the class implicitly if
    /// needed).  Re-declaring a method overwrites its metadata.
    pub fn declare_method(
        &mut self,
        class: impl Into<String>,
        name: impl Into<String>,
        readonly: bool,
    ) -> &mut Self {
        let class = class.into();
        let name = name.into();
        self.owns.entry(class.clone()).or_default();
        let methods = self.methods.entry(class).or_default();
        match methods.iter_mut().find(|m| m.name == name) {
            Some(existing) => existing.readonly = readonly,
            None => methods.push(MethodInfo::new(name, readonly)),
        }
        self
    }

    /// Declares the complete outgoing call summary of `class::method`
    /// (declaring class and method implicitly if needed).  Re-declaring a
    /// summary overwrites the previous one; an empty iterator declares
    /// "calls nothing", which is different from never declaring a summary.
    pub fn declare_calls(
        &mut self,
        class: impl Into<String>,
        method: impl Into<String>,
        calls: impl IntoIterator<Item = MethodRef>,
    ) -> &mut Self {
        let class = class.into();
        let method = method.into();
        self.owns.entry(class.clone()).or_default();
        let methods = self.methods.entry(class).or_default();
        let calls = Some(calls.into_iter().collect());
        match methods.iter_mut().find(|m| m.name == method) {
            Some(existing) => existing.calls = calls,
            None => methods.push(MethodInfo {
                name: method,
                readonly: false,
                calls,
            }),
        }
        self
    }

    /// The declared call summary of `class::method`; `None` when the method
    /// (or class) is unknown or never declared a summary.
    pub fn calls_of(&self, class: &str, method: &str) -> Option<&[MethodRef]> {
        self.methods
            .get(class)?
            .iter()
            .find(|m| m.name == method)?
            .calls
            .as_deref()
    }

    /// The declared method surface of `class` (empty when the class never
    /// declared its methods).
    pub fn methods_of(&self, class: &str) -> &[MethodInfo] {
        self.methods.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `method` of `class` was declared `readonly`; `None` when the
    /// class has no method declarations or the method is unknown.
    pub fn readonly_method(&self, class: &str, method: &str) -> Option<bool> {
        self.methods
            .get(class)?
            .iter()
            .find(|m| m.name == method)
            .map(|m| m.readonly)
    }

    /// Runs the static analysis: succeeds iff the constraint graph is
    /// acyclic once reflexive edges are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ClassCycleDetected`] describing one offending
    /// cycle when the analysis fails.
    pub fn check(&self) -> Result<()> {
        match self.find_constraint_cycle() {
            Some(cycle) => Err(AeonError::ClassCycleDetected {
                description: cycle.join(" -> "),
            }),
            None => Ok(()),
        }
    }

    /// Finds one non-reflexive cycle in the constraint graph, as the list of
    /// classes along it (first class repeated at the end); `None` when the
    /// graph is acyclic.
    ///
    /// The traversal is an explicit-stack depth-first search with
    /// colouring — deep ownership chains (e.g. a 100k-class reflexive list
    /// generated by tooling) must not overflow the call stack.
    pub fn find_constraint_cycle(&self) -> Option<Vec<String>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<&str, Colour> = self
            .owns
            .keys()
            .map(|k| (k.as_str(), Colour::White))
            .collect();

        for root in self.owns.keys() {
            if colour[root.as_str()] != Colour::White {
                continue;
            }
            // Each frame is (class, iterator over its owned classes); the
            // path stack mirrors the grey classes for cycle extraction.
            let mut frames: Vec<(&str, std::collections::btree_set::Iter<'_, String>)> = Vec::new();
            let mut path: Vec<&str> = Vec::new();
            colour.insert(root.as_str(), Colour::Grey);
            path.push(root.as_str());
            frames.push((root.as_str(), self.owns[root.as_str()].iter()));

            while !frames.is_empty() {
                // `Iter::next` returns references borrowed from `self.owns`,
                // not from the frame, so the frame borrow ends here and the
                // stack can be pushed/popped below.
                let (class, next) = {
                    let frame = frames.last_mut().expect("loop guard");
                    (frame.0, frame.1.next())
                };
                match next {
                    Some(child) if child.as_str() == class => {
                        // Reflexive exception: inductive structures.
                    }
                    Some(child) => {
                        match colour.get(child.as_str()).copied().unwrap_or(Colour::White) {
                            Colour::Grey => {
                                // Found a cycle: slice the path from the
                                // first occurrence of `child`.
                                let start =
                                    path.iter().position(|c| *c == child.as_str()).unwrap_or(0);
                                let mut cycle: Vec<String> =
                                    path[start..].iter().map(|s| s.to_string()).collect();
                                cycle.push(child.clone());
                                return Some(cycle);
                            }
                            Colour::White => {
                                colour.insert(child.as_str(), Colour::Grey);
                                path.push(child.as_str());
                                frames.push((child.as_str(), self.owns[child.as_str()].iter()));
                            }
                            Colour::Black => {}
                        }
                    }
                    None => {
                        colour.insert(class, Colour::Black);
                        path.pop();
                        frames.pop();
                    }
                }
            }
        }
        None
    }

    /// Validates that a runtime ownership graph respects the class
    /// constraints: every edge `owner -> owned` must be allowed by
    /// [`ClassGraph::allows`].
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::OwnershipViolation`] naming the first offending
    /// edge — both the context ids and their *classes*, plus the
    /// `add_constraint` call that would legalise the edge.
    pub fn validate_graph(&self, graph: &crate::OwnershipGraph) -> Result<()> {
        for (owner, owned) in graph.edges() {
            let owner_class = graph.class_of(owner)?;
            let owned_class = graph.class_of(owned)?;
            if !self.allows(owner_class, owned_class) {
                return Err(AeonError::OwnershipViolation {
                    caller: owner,
                    callee: owned,
                    detail: Some(format!(
                        "class {owner_class} may not own class {owned_class}; \
                         missing constraint {owned_class} <= {owner_class} \
                         (declare it with add_constraint(\"{owner_class}\", \
                         \"{owned_class}\"))"
                    )),
                });
            }
        }
        Ok(())
    }
}

/// Builds the class graph of the paper's game example (Figure 3, left).
pub fn game_class_graph() -> ClassGraph {
    let mut g = ClassGraph::new();
    g.add_constraint("Building", "Room");
    g.add_constraint("Room", "Player");
    g.add_constraint("Room", "Item");
    g.add_constraint("Player", "Item");
    g
}

/// Builds the class graph of the TPC-C application (§6.1.2).
pub fn tpcc_class_graph() -> ClassGraph {
    let mut g = ClassGraph::new();
    g.add_constraint("WareHouse", "Stock");
    g.add_constraint("WareHouse", "District");
    g.add_constraint("District", "Customer");
    g.add_constraint("District", "Order");
    g.add_constraint("Customer", "History");
    g.add_constraint("Customer", "Order");
    g.add_constraint("Order", "NewOrder");
    g.add_constraint("Order", "OrderLine");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::game_graph;

    #[test]
    fn game_class_graph_passes_analysis() {
        game_class_graph().check().unwrap();
    }

    #[test]
    fn tpcc_class_graph_passes_analysis() {
        tpcc_class_graph().check().unwrap();
    }

    #[test]
    fn reflexive_constraints_are_accepted() {
        // Linked-list style inductive structure: a Node owns Nodes.
        let mut g = ClassGraph::new();
        g.add_constraint("List", "Node");
        g.add_constraint("Node", "Node");
        g.check().unwrap();
        assert!(g.allows("Node", "Node"));
    }

    #[test]
    fn two_class_cycle_is_rejected() {
        let mut g = ClassGraph::new();
        g.add_constraint("A", "B");
        g.add_constraint("B", "A");
        let err = g.check().unwrap_err();
        assert!(matches!(err, AeonError::ClassCycleDetected { .. }));
        assert!(
            err.to_string().contains("A"),
            "cycle description names the classes: {err}"
        );
    }

    #[test]
    fn longer_cycle_is_rejected_and_described() {
        let mut g = ClassGraph::new();
        g.add_constraint("A", "B");
        g.add_constraint("B", "C");
        g.add_constraint("C", "D");
        g.add_constraint("D", "B");
        let err = g.check().unwrap_err();
        if let AeonError::ClassCycleDetected { description } = err {
            assert!(
                description.contains("B") && description.contains("D"),
                "{description}"
            );
        } else {
            panic!("expected class cycle");
        }
    }

    #[test]
    fn allows_respects_declared_constraints() {
        let g = game_class_graph();
        assert!(g.allows("Room", "Player"));
        assert!(g.allows("Player", "Item"));
        assert!(!g.allows("Item", "Player"));
        assert!(!g.allows("Player", "Room"));
        // Reflexive allowed even if undeclared.
        assert!(g.allows("Room", "Room"));
    }

    #[test]
    fn validate_graph_accepts_figure_3_and_rejects_violations() {
        let (mut graph, ids) = game_graph();
        let classes = game_class_graph();
        classes.validate_graph(&graph).unwrap();
        // An Item owning a Player violates the class constraints even though
        // it is fine for the instance-level DAG (no cycle).
        graph.add_edge(ids.treasure, ids.player3).unwrap();
        assert!(matches!(
            classes.validate_graph(&graph),
            Err(AeonError::OwnershipViolation { .. })
        ));
    }

    #[test]
    fn method_ref_parses_class_method_notation() {
        let r = MethodRef::parse("Room::nr_players").unwrap();
        assert_eq!(r.class, "Room");
        assert_eq!(r.method, "nr_players");
        assert_eq!(r.to_string(), "Room::nr_players");
        assert!(MethodRef::parse("Room").is_none());
        assert!(MethodRef::parse("::m").is_none());
        assert!(MethodRef::parse("A::").is_none());
        assert!(MethodRef::parse("A::B::c").is_none());
    }

    #[test]
    fn call_summaries_are_recorded_and_survive_redeclaration() {
        let mut g = ClassGraph::new();
        g.declare_method("Branch", "transfer", false);
        assert_eq!(g.calls_of("Branch", "transfer"), None);
        g.declare_calls(
            "Branch",
            "transfer",
            [
                MethodRef::new("Account", "add"),
                MethodRef::new("Account", "add"),
            ],
        );
        let calls = g.calls_of("Branch", "transfer").unwrap();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0], MethodRef::new("Account", "add"));
        // Re-declaring the method (e.g. a second declare_in) keeps the summary.
        g.declare_method("Branch", "transfer", false);
        assert!(g.calls_of("Branch", "transfer").is_some());
        // An empty summary is "calls nothing", distinct from undeclared.
        g.declare_calls("Branch", "noop", []);
        assert_eq!(g.calls_of("Branch", "noop"), Some(&[][..]));
        assert_eq!(g.calls_of("Branch", "unknown"), None);
        assert_eq!(g.calls_of("NoSuchClass", "m"), None);
    }

    #[test]
    fn declares_does_not_grant_the_reflexive_exception() {
        let mut g = ClassGraph::new();
        g.add_constraint("List", "Node");
        g.add_constraint("Node", "Node");
        assert!(g.declares("List", "Node"));
        assert!(g.declares("Node", "Node"));
        assert!(!g.declares("List", "List"));
        assert!(g.allows("List", "List"));
        let owned: Vec<&str> = g.owned_by("List").collect();
        assert_eq!(owned, vec!["Node"]);
    }

    #[test]
    fn deep_ownership_chain_does_not_overflow_the_stack() {
        // Satellite regression: a 100k-class reflexive chain (each class owns
        // itself and the next) must be analysed iteratively, not by
        // recursion depth proportional to the chain.
        let mut g = ClassGraph::new();
        const N: usize = 100_000;
        for i in 0..N {
            g.add_constraint(format!("C{i}"), format!("C{i}"));
            g.add_constraint(format!("C{i}"), format!("C{}", i + 1));
        }
        g.check().unwrap();
        // And a cycle closing the whole chain is still detected.
        g.add_constraint(format!("C{N}"), "C0");
        let err = g.check().unwrap_err();
        assert!(matches!(err, AeonError::ClassCycleDetected { .. }));
    }

    #[test]
    fn validate_graph_violation_names_the_classes() {
        let (mut graph, ids) = game_graph();
        let classes = game_class_graph();
        graph.add_edge(ids.treasure, ids.player3).unwrap();
        let err = classes.validate_graph(&graph).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("Item") && text.contains("Player"),
            "violation names the classes, not just context ids: {text}"
        );
        assert!(
            text.contains("add_constraint"),
            "violation suggests the missing constraint: {text}"
        );
    }

    #[test]
    fn declared_classes_are_listed() {
        let g = game_class_graph();
        let classes: Vec<&str> = g.classes().collect();
        assert!(classes.contains(&"Building"));
        assert!(classes.contains(&"Item"));
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }
}
