//! Static, contextclass-level ownership analysis (§3, "Type-based
//! enforcement of DAG ownership").
//!
//! AEON requires the *class-level* ownership constraints to be acyclic
//! (except for the reflexive case, which enables inductive structures such
//! as linked lists at the cost of runtime checks).  The analysis collects,
//! for every contextclass, the set of contextclasses its methods may reach,
//! and rejects programs whose constraint graph `C1 ≤ C0` contains a
//! non-reflexive cycle.

use aeon_types::{AeonError, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Metadata of one contextclass method, as declared by the runtime's
/// method tables.
///
/// The analysis itself only needs the class-level ownership constraints, but
/// recording the per-class method surface here makes it available to every
/// consumer of the static analysis: tooling can list a class's methods, the
/// checker's recorder can classify operations as reads or writes without
/// instantiating a context, and cross-backend tests can assert that all
/// deployments agree on which methods are `ro`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodInfo {
    /// Method name as dispatched by the runtime.
    pub name: String,
    /// Whether the method was declared `readonly` (`ro`).
    pub readonly: bool,
}

/// The contextclass constraint graph.
///
/// A constraint `owner ⊒ owned` (added with [`ClassGraph::add_constraint`])
/// records that instances of class `owner` may directly own / call into
/// instances of class `owned`, i.e. `owned ≤ owner` in the paper's notation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassGraph {
    /// class -> classes it may directly own.
    owns: BTreeMap<String, BTreeSet<String>>,
    /// class -> declared method surface (optional; filled in by the
    /// runtime's declarative method tables).
    #[serde(default)]
    methods: BTreeMap<String, Vec<MethodInfo>>,
}

impl ClassGraph {
    /// Creates an empty constraint graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a contextclass with no constraints yet.
    pub fn add_class(&mut self, class: impl Into<String>) -> &mut Self {
        self.owns.entry(class.into()).or_default();
        self
    }

    /// Returns `true` if the class has been declared.
    pub fn contains(&self, class: &str) -> bool {
        self.owns.contains_key(class)
    }

    /// Declared classes, in name order.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.owns.keys().map(String::as_str)
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.owns.len()
    }

    /// Returns `true` when no classes are declared.
    pub fn is_empty(&self) -> bool {
        self.owns.is_empty()
    }

    /// Records that `owner` instances may own `owned` instances
    /// (the constraint `owned ≤ owner`).  Both classes are declared
    /// implicitly if needed.  Reflexive constraints are allowed.
    pub fn add_constraint(
        &mut self,
        owner: impl Into<String>,
        owned: impl Into<String>,
    ) -> &mut Self {
        let owner = owner.into();
        let owned = owned.into();
        self.owns.entry(owned.clone()).or_default();
        self.owns.entry(owner).or_default().insert(owned);
        self
    }

    /// Returns whether instances of `owner` are allowed to directly own
    /// instances of `owned` according to the declared constraints.
    ///
    /// The reflexive case is always allowed (inductive data structures),
    /// mirroring the exception made by the paper's analysis.
    pub fn allows(&self, owner: &str, owned: &str) -> bool {
        if owner == owned {
            return true;
        }
        self.owns.get(owner).is_some_and(|set| set.contains(owned))
    }

    /// Declares a method of `class` (declaring the class implicitly if
    /// needed).  Re-declaring a method overwrites its metadata.
    pub fn declare_method(
        &mut self,
        class: impl Into<String>,
        name: impl Into<String>,
        readonly: bool,
    ) -> &mut Self {
        let class = class.into();
        let name = name.into();
        self.owns.entry(class.clone()).or_default();
        let methods = self.methods.entry(class).or_default();
        match methods.iter_mut().find(|m| m.name == name) {
            Some(existing) => existing.readonly = readonly,
            None => methods.push(MethodInfo { name, readonly }),
        }
        self
    }

    /// The declared method surface of `class` (empty when the class never
    /// declared its methods).
    pub fn methods_of(&self, class: &str) -> &[MethodInfo] {
        self.methods.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `method` of `class` was declared `readonly`; `None` when the
    /// class has no method declarations or the method is unknown.
    pub fn readonly_method(&self, class: &str, method: &str) -> Option<bool> {
        self.methods
            .get(class)?
            .iter()
            .find(|m| m.name == method)
            .map(|m| m.readonly)
    }

    /// Runs the static analysis: succeeds iff the constraint graph is
    /// acyclic once reflexive edges are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ClassCycleDetected`] describing one offending
    /// cycle when the analysis fails.
    pub fn check(&self) -> Result<()> {
        // Depth-first search with colouring; reflexive edges are skipped.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<&str, Colour> = self
            .owns
            .keys()
            .map(|k| (k.as_str(), Colour::White))
            .collect();

        fn visit<'a>(
            class: &'a str,
            owns: &'a BTreeMap<String, BTreeSet<String>>,
            colour: &mut BTreeMap<&'a str, Colour>,
            stack: &mut Vec<&'a str>,
        ) -> Option<Vec<String>> {
            colour.insert(class, Colour::Grey);
            stack.push(class);
            if let Some(children) = owns.get(class) {
                for child in children {
                    if child == class {
                        continue; // reflexive exception
                    }
                    match colour.get(child.as_str()).copied().unwrap_or(Colour::White) {
                        Colour::Grey => {
                            // Found a cycle: slice the stack from the first
                            // occurrence of `child`.
                            let start =
                                stack.iter().position(|c| *c == child.as_str()).unwrap_or(0);
                            let mut cycle: Vec<String> =
                                stack[start..].iter().map(|s| s.to_string()).collect();
                            cycle.push(child.clone());
                            return Some(cycle);
                        }
                        Colour::White => {
                            if let Some(cycle) = visit(child, owns, colour, stack) {
                                return Some(cycle);
                            }
                        }
                        Colour::Black => {}
                    }
                }
            }
            stack.pop();
            colour.insert(class, Colour::Black);
            None
        }

        let classes: Vec<&str> = self.owns.keys().map(String::as_str).collect();
        for class in classes {
            if colour[class] == Colour::White {
                let mut stack = Vec::new();
                if let Some(cycle) = visit(class, &self.owns, &mut colour, &mut stack) {
                    return Err(AeonError::ClassCycleDetected {
                        description: cycle.join(" -> "),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validates that a runtime ownership graph respects the class
    /// constraints: every edge `owner -> owned` must be allowed by
    /// [`ClassGraph::allows`].
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::OwnershipViolation`] naming the first offending
    /// edge.
    pub fn validate_graph(&self, graph: &crate::OwnershipGraph) -> Result<()> {
        for (owner, owned) in graph.edges() {
            let owner_class = graph.class_of(owner)?;
            let owned_class = graph.class_of(owned)?;
            if !self.allows(owner_class, owned_class) {
                return Err(AeonError::OwnershipViolation {
                    caller: owner,
                    callee: owned,
                });
            }
        }
        Ok(())
    }
}

/// Builds the class graph of the paper's game example (Figure 3, left).
pub fn game_class_graph() -> ClassGraph {
    let mut g = ClassGraph::new();
    g.add_constraint("Building", "Room");
    g.add_constraint("Room", "Player");
    g.add_constraint("Room", "Item");
    g.add_constraint("Player", "Item");
    g
}

/// Builds the class graph of the TPC-C application (§6.1.2).
pub fn tpcc_class_graph() -> ClassGraph {
    let mut g = ClassGraph::new();
    g.add_constraint("WareHouse", "Stock");
    g.add_constraint("WareHouse", "District");
    g.add_constraint("District", "Customer");
    g.add_constraint("District", "Order");
    g.add_constraint("Customer", "History");
    g.add_constraint("Customer", "Order");
    g.add_constraint("Order", "NewOrder");
    g.add_constraint("Order", "OrderLine");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::game_graph;

    #[test]
    fn game_class_graph_passes_analysis() {
        game_class_graph().check().unwrap();
    }

    #[test]
    fn tpcc_class_graph_passes_analysis() {
        tpcc_class_graph().check().unwrap();
    }

    #[test]
    fn reflexive_constraints_are_accepted() {
        // Linked-list style inductive structure: a Node owns Nodes.
        let mut g = ClassGraph::new();
        g.add_constraint("List", "Node");
        g.add_constraint("Node", "Node");
        g.check().unwrap();
        assert!(g.allows("Node", "Node"));
    }

    #[test]
    fn two_class_cycle_is_rejected() {
        let mut g = ClassGraph::new();
        g.add_constraint("A", "B");
        g.add_constraint("B", "A");
        let err = g.check().unwrap_err();
        assert!(matches!(err, AeonError::ClassCycleDetected { .. }));
        assert!(
            err.to_string().contains("A"),
            "cycle description names the classes: {err}"
        );
    }

    #[test]
    fn longer_cycle_is_rejected_and_described() {
        let mut g = ClassGraph::new();
        g.add_constraint("A", "B");
        g.add_constraint("B", "C");
        g.add_constraint("C", "D");
        g.add_constraint("D", "B");
        let err = g.check().unwrap_err();
        if let AeonError::ClassCycleDetected { description } = err {
            assert!(
                description.contains("B") && description.contains("D"),
                "{description}"
            );
        } else {
            panic!("expected class cycle");
        }
    }

    #[test]
    fn allows_respects_declared_constraints() {
        let g = game_class_graph();
        assert!(g.allows("Room", "Player"));
        assert!(g.allows("Player", "Item"));
        assert!(!g.allows("Item", "Player"));
        assert!(!g.allows("Player", "Room"));
        // Reflexive allowed even if undeclared.
        assert!(g.allows("Room", "Room"));
    }

    #[test]
    fn validate_graph_accepts_figure_3_and_rejects_violations() {
        let (mut graph, ids) = game_graph();
        let classes = game_class_graph();
        classes.validate_graph(&graph).unwrap();
        // An Item owning a Player violates the class constraints even though
        // it is fine for the instance-level DAG (no cycle).
        graph.add_edge(ids.treasure, ids.player3).unwrap();
        assert!(matches!(
            classes.validate_graph(&graph),
            Err(AeonError::OwnershipViolation { .. })
        ));
    }

    #[test]
    fn declared_classes_are_listed() {
        let g = game_class_graph();
        let classes: Vec<&str> = g.classes().collect();
        assert!(classes.contains(&"Building"));
        assert!(classes.contains(&"Item"));
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }
}
