//! The ownership network of AEON (§3 of the paper).
//!
//! Contexts are organised in a directed acyclic graph by the
//! *directly-owned* relation: a context `C` is directly owned by `C'` when a
//! field of `C'` references `C`.  Multi-ownership (several parents) is
//! allowed; cycles are not.  The DAG induces, for every context, a
//! *dominator*: the least context that transitively owns everything the
//! target might share state with.  Dominators are where the runtime
//! serialises potentially-conflicting events, which is what yields strict
//! serializability together with deadlock- and starvation-freedom.
//!
//! This crate provides:
//!
//! * [`OwnershipGraph`] — the runtime context DAG with cycle-checked
//!   mutation, traversal helpers and persistence to/from [`Value`]s;
//! * [`dominator`] — the `share`/`dom` computation of §3 plus a cached
//!   resolver;
//! * [`analysis`] — the static, contextclass-level acyclicity analysis that
//!   the AEON compiler performs before admitting a program;
//! * [`path`] — top-down path discovery used by `activatePath` in the
//!   execution protocol (Algorithm 2).
//!
//! # Examples
//!
//! ```
//! use aeon_ownership::OwnershipGraph;
//! use aeon_types::ContextId;
//!
//! let mut g = OwnershipGraph::new();
//! let castle = ContextId::new(0);
//! let room = ContextId::new(1);
//! let player = ContextId::new(2);
//! g.add_context(castle, "Building").unwrap();
//! g.add_context(room, "Room").unwrap();
//! g.add_context(player, "Player").unwrap();
//! g.add_edge(castle, room).unwrap();
//! g.add_edge(room, player).unwrap();
//! assert!(g.is_ancestor(castle, player));
//! // Adding the reverse edge would create a cycle and is rejected.
//! assert!(g.add_edge(player, castle).is_err());
//! ```

pub mod analysis;
pub mod dominator;
pub mod graph;
pub mod path;

pub use analysis::{ClassGraph, MethodInfo, MethodRef};
pub use dominator::{dominator_of, share_set, Dominator, DominatorMode, DominatorResolver};
pub use graph::OwnershipGraph;
pub use path::{all_on_paths, find_path};

/// Convenience fixtures used by tests, benchmarks and examples across the
/// workspace: the game ownership network of Figure 3 of the paper.
pub mod fixtures {
    use crate::OwnershipGraph;
    use aeon_types::ContextId;

    /// Handles to the contexts of the Figure 3 game graph.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct GameGraph {
        pub castle: ContextId,
        pub kings_room: ContextId,
        pub armory: ContextId,
        pub player1: ContextId,
        pub player2: ContextId,
        pub player3: ContextId,
        pub treasure: ContextId,
        pub weapons_vault: ContextId,
        pub sword: ContextId,
        pub horse: ContextId,
    }

    /// Builds the runtime ownership DAG of Figure 3:
    ///
    /// ```text
    /// Castle ── Kings Room ── {Player1, Player2, Treasure}
    ///        └─ Armory     ── {Player3, Weapons Vault}
    /// Player1 ── Treasure          (shared with Player2 and Kings Room)
    /// Player2 ── Treasure
    /// Player3 ── {Sword, Horse}
    /// Weapons Vault ── {Sword, Horse}   (shared with Player3)
    /// ```
    pub fn game_graph() -> (OwnershipGraph, GameGraph) {
        let mut g = OwnershipGraph::new();
        let ids = GameGraph {
            castle: ContextId::new(0),
            kings_room: ContextId::new(1),
            armory: ContextId::new(2),
            player1: ContextId::new(3),
            player2: ContextId::new(4),
            player3: ContextId::new(5),
            treasure: ContextId::new(6),
            weapons_vault: ContextId::new(7),
            sword: ContextId::new(8),
            horse: ContextId::new(9),
        };
        g.add_context(ids.castle, "Building").unwrap();
        g.add_context(ids.kings_room, "Room").unwrap();
        g.add_context(ids.armory, "Room").unwrap();
        g.add_context(ids.player1, "Player").unwrap();
        g.add_context(ids.player2, "Player").unwrap();
        g.add_context(ids.player3, "Player").unwrap();
        g.add_context(ids.treasure, "Item").unwrap();
        g.add_context(ids.weapons_vault, "Item").unwrap();
        g.add_context(ids.sword, "Item").unwrap();
        g.add_context(ids.horse, "Item").unwrap();

        g.add_edge(ids.castle, ids.kings_room).unwrap();
        g.add_edge(ids.castle, ids.armory).unwrap();
        g.add_edge(ids.kings_room, ids.player1).unwrap();
        g.add_edge(ids.kings_room, ids.player2).unwrap();
        g.add_edge(ids.kings_room, ids.treasure).unwrap();
        g.add_edge(ids.player1, ids.treasure).unwrap();
        g.add_edge(ids.player2, ids.treasure).unwrap();
        g.add_edge(ids.armory, ids.player3).unwrap();
        g.add_edge(ids.armory, ids.weapons_vault).unwrap();
        g.add_edge(ids.player3, ids.sword).unwrap();
        g.add_edge(ids.player3, ids.horse).unwrap();
        g.add_edge(ids.weapons_vault, ids.sword).unwrap();
        g.add_edge(ids.weapons_vault, ids.horse).unwrap();
        (g, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::game_graph;
    use super::*;
    use aeon_types::ContextId;

    #[test]
    fn fixture_matches_figure_3_shape() {
        let (g, ids) = game_graph();
        assert_eq!(g.len(), 10);
        assert!(g.is_ancestor(ids.castle, ids.sword));
        assert!(g.is_ancestor(ids.kings_room, ids.treasure));
        assert!(!g.is_ancestor(ids.armory, ids.treasure));
        assert_eq!(g.parents(ids.treasure).unwrap().len(), 3);
        assert_eq!(g.parents(ids.sword).unwrap().len(), 2);
    }

    #[test]
    fn dominators_match_section_3_examples() {
        let (g, ids) = game_graph();
        let resolver = DominatorResolver::new(DominatorMode::Closure);
        // "dom(G, Player1) is Kings room and dom(G, Sword) is Sword" — §3.
        assert_eq!(
            resolver.dominator(&g, ids.player1).unwrap(),
            Dominator::Context(ids.kings_room)
        );
        // A leaf context has no descendants, so its share set is empty and
        // it is its own dominator ("dom(G, Sword) is Sword" — §3).  Events
        // reaching it from above still serialise against events targeting it
        // directly via its activation queue (the Horse/E3 illustration, §4).
        assert_eq!(
            DominatorResolver::new(DominatorMode::PaperFormula)
                .dominator(&g, ids.sword)
                .unwrap(),
            Dominator::Context(ids.sword)
        );
        assert_eq!(
            resolver.dominator(&g, ids.sword).unwrap(),
            Dominator::Context(ids.sword)
        );
        // Single-owner contexts are their own dominator.
        assert_eq!(
            resolver.dominator(&g, ids.castle).unwrap(),
            Dominator::Context(ids.castle)
        );
        assert_eq!(
            resolver.dominator(&g, ids.armory).unwrap(),
            Dominator::Context(ids.armory)
        );
    }

    #[test]
    fn missing_context_is_reported() {
        let g = OwnershipGraph::new();
        assert!(g.children(ContextId::new(42)).is_err());
    }
}
