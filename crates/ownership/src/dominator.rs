//! Dominator computation (§3 of the paper).
//!
//! For a context `C` in ownership network `G`, the *share set* collects the
//! contexts that might access state in common with `C`:
//!
//! ```text
//! share(G,C) = { C' | desc(G,C) ∩ children(G,C') ≠ ∅ }
//!            ∪ { C' | desc(G,C') ∩ desc(G,C) ≠ ∅
//!                     ∧ C' ∉ desc(G,C) ∧ C ∉ desc(G,C') }
//! ```
//!
//! and the *dominator* is the least upper bound of `share(G,C) ∪ {C}` in the
//! ownership semi-lattice.  Locking the dominator before executing an event
//! guarantees that no two events that could touch common state run
//! concurrently, while unrelated events proceed in parallel.

use crate::graph::OwnershipGraph;
use aeon_types::{AeonError, ContextId, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};

/// The result of a dominator query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dominator {
    /// A concrete context dominates the target.
    Context(ContextId),
    /// No single context dominates every sharing context (the ownership
    /// order has multiple maxima over the share set).  The paper inserts an
    /// unnamed context in this case (footnote 1, §3); the runtime maps this
    /// to a per-application global sequencer.
    GlobalRoot,
}

impl Dominator {
    /// Returns the context id if the dominator is a concrete context.
    pub fn context(self) -> Option<ContextId> {
        match self {
            Dominator::Context(c) => Some(c),
            Dominator::GlobalRoot => None,
        }
    }
}

/// How dominators are derived from the share relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DominatorMode {
    /// The one-step formula exactly as written in §3 of the paper:
    /// `dom(G,C) = lub(share(G,C) ∪ {C})`.
    PaperFormula,
    /// Fix-point closure of the share relation before taking the least
    /// upper bound.  On the paper's applications this coincides with the
    /// one-step formula, but it remains safe for ownership networks where
    /// sharing chains are asymmetric (two targets with overlapping
    /// descendant sets are then guaranteed to resolve to the same
    /// sequencer).  This is the default.
    #[default]
    Closure,
}

/// Computes the share set of `target` per the §3 formula.
///
/// # Errors
///
/// Returns [`AeonError::ContextNotFound`] if `target` is unknown.
pub fn share_set(graph: &OwnershipGraph, target: ContextId) -> Result<BTreeSet<ContextId>> {
    let desc_c = graph.descendants(target)?;
    let mut share = BTreeSet::new();
    if desc_c.is_empty() {
        return Ok(share);
    }
    // Both clauses only ever select contexts that can *reach* a descendant
    // of `target`, so instead of scanning every context in the network and
    // intersecting descendant sets (quadratic in the graph), walk upwards
    // from `desc(target)` once and classify what the walk visits:
    //
    // * first clause — `desc(G,C) ∩ children(G,C') ≠ ∅` — is exactly the
    //   direct parents of the descendants;
    // * second clause — `desc(G,C') ∩ desc(G,C) ≠ ∅` with `C'` incomparable
    //   to `C` — is exactly the strict ancestors of the descendants, minus
    //   `desc(G,C) ∪ {C}` and minus the ancestors of `C`.
    for d in &desc_c {
        for parent in graph.parents(*d).expect("descendants are known contexts") {
            if *parent != target {
                share.insert(*parent);
            }
        }
    }
    let anc_target = graph.ancestors(target)?;
    let mut queue: std::collections::VecDeque<ContextId> = desc_c.iter().copied().collect();
    let mut seen: BTreeSet<ContextId> = desc_c.iter().copied().collect();
    while let Some(cur) = queue.pop_front() {
        for parent in graph.parents(cur).expect("walking known contexts") {
            if seen.insert(*parent) {
                queue.push_back(*parent);
            }
        }
    }
    for other in seen {
        if other != target && !desc_c.contains(&other) && !anc_target.contains(&other) {
            share.insert(other);
        }
    }
    Ok(share)
}

/// Computes the least upper bound of `set` in the ownership order: the
/// unique lowest context that is an ancestor-or-self of every member.
///
/// Returns [`Dominator::GlobalRoot`] when no such context exists (no common
/// ancestor, or several incomparable minimal common ancestors).
pub fn least_upper_bound(graph: &OwnershipGraph, set: &BTreeSet<ContextId>) -> Result<Dominator> {
    let mut iter = set.iter();
    let first = match iter.next() {
        Some(f) => *f,
        None => return Ok(Dominator::GlobalRoot),
    };
    // Common upper bounds = ∩ (ancestors*(x)) over the set.
    let mut common: BTreeSet<ContextId> = graph.ancestors(first)?;
    common.insert(first);
    for member in iter {
        let mut anc = graph.ancestors(*member)?;
        anc.insert(*member);
        common = common.intersection(&anc).copied().collect();
        if common.is_empty() {
            return Ok(Dominator::GlobalRoot);
        }
    }
    // The least element of `common`: a candidate that is a descendant-or-
    // equal of every other candidate.
    let least: Vec<ContextId> = common
        .iter()
        .copied()
        .filter(|cand| {
            common
                .iter()
                .all(|other| other == cand || graph.is_ancestor(*other, *cand))
        })
        .collect();
    match least.as_slice() {
        [unique] => Ok(Dominator::Context(*unique)),
        _ => Ok(Dominator::GlobalRoot),
    }
}

/// Computes the dominator of `target` using the requested [`DominatorMode`].
///
/// # Errors
///
/// Returns [`AeonError::ContextNotFound`] if `target` is unknown.
pub fn dominator_of(
    graph: &OwnershipGraph,
    target: ContextId,
    mode: DominatorMode,
) -> Result<Dominator> {
    if !graph.contains(target) {
        return Err(AeonError::ContextNotFound(target));
    }
    let mut set: BTreeSet<ContextId> = BTreeSet::from([target]);
    set.extend(share_set(graph, target)?);
    if let DominatorMode::Closure = mode {
        // Worklist fix-point: a member's share set never changes while the
        // graph is fixed, so each member needs expanding exactly once.
        let mut pending: Vec<ContextId> = set.iter().copied().collect();
        while let Some(member) = pending.pop() {
            for extra in share_set(graph, member)? {
                if set.insert(extra) {
                    pending.push(extra);
                }
            }
        }
    }
    least_upper_bound(graph, &set)
}

/// A caching dominator resolver.
///
/// Dominators are queried on every event dispatch, so the resolver caches
/// results and invalidates the cache whenever the ownership graph version
/// changes (i.e. after any mutation such as a context creation or an
/// ownership change).
#[derive(Debug)]
pub struct DominatorResolver {
    mode: DominatorMode,
    cache: RwLock<Cache>,
}

#[derive(Debug, Default)]
struct Cache {
    version: u64,
    map: BTreeMap<ContextId, Dominator>,
}

impl Default for DominatorResolver {
    fn default() -> Self {
        Self::new(DominatorMode::default())
    }
}

impl DominatorResolver {
    /// Creates a resolver with the given mode.
    pub fn new(mode: DominatorMode) -> Self {
        Self {
            mode,
            cache: RwLock::new(Cache::default()),
        }
    }

    /// The mode the resolver was configured with.
    pub fn mode(&self) -> DominatorMode {
        self.mode
    }

    /// Returns the dominator of `target` in `graph`, consulting the cache.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] if `target` is unknown.
    pub fn dominator(&self, graph: &OwnershipGraph, target: ContextId) -> Result<Dominator> {
        {
            let cache = self.cache.read();
            if cache.version == graph.version() {
                if let Some(dom) = cache.map.get(&target) {
                    return Ok(*dom);
                }
            }
        }
        let dom = dominator_of(graph, target, self.mode)?;
        let mut cache = self.cache.write();
        if cache.version != graph.version() {
            cache.map.clear();
            cache.version = graph.version();
        }
        cache.map.insert(target, dom);
        Ok(dom)
    }

    /// Number of cached entries (diagnostics / tests).
    pub fn cached_entries(&self) -> usize {
        self.cache.read().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::game_graph;
    use proptest::prelude::*;

    fn ctx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    #[test]
    fn share_set_of_players_matches_paper() {
        let (g, ids) = game_graph();
        let share = share_set(&g, ids.player1).unwrap();
        // Player2 shares the Treasure; the Kings Room directly owns it.
        assert!(share.contains(&ids.player2));
        assert!(share.contains(&ids.kings_room));
        assert!(!share.contains(&ids.armory));
        assert!(!share.contains(&ids.castle));
        // Leaf contexts share nothing.
        assert!(share_set(&g, ids.treasure).unwrap().is_empty());
    }

    #[test]
    fn dominators_of_game_graph() {
        let (g, ids) = game_graph();
        for mode in [DominatorMode::PaperFormula, DominatorMode::Closure] {
            let dom = |c| dominator_of(&g, c, mode).unwrap();
            assert_eq!(dom(ids.player1), Dominator::Context(ids.kings_room));
            assert_eq!(dom(ids.player2), Dominator::Context(ids.kings_room));
            assert_eq!(dom(ids.player3), Dominator::Context(ids.armory));
            assert_eq!(dom(ids.weapons_vault), Dominator::Context(ids.armory));
            assert_eq!(dom(ids.castle), Dominator::Context(ids.castle));
            assert_eq!(dom(ids.armory), Dominator::Context(ids.armory));
            assert_eq!(dom(ids.treasure), Dominator::Context(ids.treasure));
            assert_eq!(dom(ids.sword), Dominator::Context(ids.sword));
        }
    }

    #[test]
    fn kings_room_is_its_own_dominator() {
        // The Kings Room's descendants are only reachable through it or
        // through its own children (players), which it dominates.
        let (g, ids) = game_graph();
        assert_eq!(
            dominator_of(&g, ids.kings_room, DominatorMode::Closure).unwrap(),
            Dominator::Context(ids.kings_room)
        );
    }

    #[test]
    fn sharing_roots_yield_global_root() {
        // Two parentless contexts sharing a child have no common ancestor,
        // so the dominator degenerates to the global root sentinel
        // (footnote 1 of the paper: an unnamed context would be inserted).
        let mut g = OwnershipGraph::new();
        g.add_context(ctx(1), "A").unwrap();
        g.add_context(ctx(2), "B").unwrap();
        g.add_context(ctx(3), "Shared").unwrap();
        g.add_edge(ctx(1), ctx(3)).unwrap();
        g.add_edge(ctx(2), ctx(3)).unwrap();
        assert_eq!(
            dominator_of(&g, ctx(1), DominatorMode::PaperFormula).unwrap(),
            Dominator::GlobalRoot
        );
        assert_eq!(
            dominator_of(&g, ctx(2), DominatorMode::Closure).unwrap(),
            Dominator::GlobalRoot
        );
    }

    #[test]
    fn unknown_context_is_an_error() {
        let g = OwnershipGraph::new();
        assert!(dominator_of(&g, ctx(9), DominatorMode::Closure).is_err());
    }

    #[test]
    fn closure_mode_unifies_asymmetric_sharing_chains() {
        // P owns A, B;  Q owns P and C;  B shares X with A and Y with C.
        //   Q ── P ── A ── X
        //   │     └── B ── X, Y
        //   └── C ── Y
        // The one-step formula gives dom(A) = P but dom(B) = Q; closure mode
        // lifts both to Q so conflicting events always share a sequencer.
        let mut g = OwnershipGraph::new();
        for (i, class) in [
            (1, "Q"),
            (2, "P"),
            (3, "A"),
            (4, "B"),
            (5, "C"),
            (6, "X"),
            (7, "Y"),
        ] {
            g.add_context(ctx(i), class).unwrap();
        }
        g.add_edge(ctx(1), ctx(2)).unwrap(); // Q -> P
        g.add_edge(ctx(1), ctx(5)).unwrap(); // Q -> C
        g.add_edge(ctx(2), ctx(3)).unwrap(); // P -> A
        g.add_edge(ctx(2), ctx(4)).unwrap(); // P -> B
        g.add_edge(ctx(3), ctx(6)).unwrap(); // A -> X
        g.add_edge(ctx(4), ctx(6)).unwrap(); // B -> X
        g.add_edge(ctx(4), ctx(7)).unwrap(); // B -> Y
        g.add_edge(ctx(5), ctx(7)).unwrap(); // C -> Y

        assert_eq!(
            dominator_of(&g, ctx(3), DominatorMode::PaperFormula).unwrap(),
            Dominator::Context(ctx(2))
        );
        assert_eq!(
            dominator_of(&g, ctx(4), DominatorMode::PaperFormula).unwrap(),
            Dominator::Context(ctx(1))
        );
        // Closure mode: both A and B resolve to Q.
        assert_eq!(
            dominator_of(&g, ctx(3), DominatorMode::Closure).unwrap(),
            Dominator::Context(ctx(1))
        );
        assert_eq!(
            dominator_of(&g, ctx(4), DominatorMode::Closure).unwrap(),
            Dominator::Context(ctx(1))
        );
    }

    #[test]
    fn resolver_caches_until_graph_changes() {
        let (mut g, ids) = game_graph();
        let resolver = DominatorResolver::default();
        assert_eq!(
            resolver.dominator(&g, ids.player1).unwrap(),
            Dominator::Context(ids.kings_room)
        );
        assert_eq!(resolver.cached_entries(), 1);
        resolver.dominator(&g, ids.player3).unwrap();
        assert_eq!(resolver.cached_entries(), 2);
        // Mutating the graph invalidates the cache on next query.
        g.remove_edge(ids.player1, ids.treasure).unwrap();
        resolver.dominator(&g, ids.player3).unwrap();
        assert_eq!(resolver.cached_entries(), 1);
        // With the Player1 -> Treasure edge gone, Player1 still shares the
        // Treasure's owner set?  No: Player1 no longer reaches Treasure, so
        // it only dominates itself.
        assert_eq!(
            resolver.dominator(&g, ids.player1).unwrap(),
            Dominator::Context(ids.player1)
        );
    }

    /// Builds a random DAG by only adding edges from lower ids to higher ids
    /// (guaranteeing acyclicity and exercising multi-ownership).
    fn arb_dag() -> impl Strategy<Value = OwnershipGraph> {
        proptest::collection::vec((0u64..12, 0u64..12), 0..40).prop_map(|edges| {
            let mut g = OwnershipGraph::new();
            for i in 0..12 {
                g.add_context(ctx(i), "C").unwrap();
            }
            for (a, b) in edges {
                if a < b {
                    let _ = g.add_edge(ctx(a), ctx(b));
                }
            }
            g
        })
    }

    /// The §3 share-set formula exactly as written: scan every context and
    /// intersect descendant sets.  Kept as the executable specification the
    /// optimised single-walk implementation is checked against.
    fn share_set_reference(graph: &OwnershipGraph, target: ContextId) -> BTreeSet<ContextId> {
        let desc_c = graph.descendants(target).unwrap();
        let mut share = BTreeSet::new();
        if desc_c.is_empty() {
            return share;
        }
        let desc_c_or_self: BTreeSet<ContextId> = desc_c
            .iter()
            .copied()
            .chain(std::iter::once(target))
            .collect();
        for other in graph.contexts() {
            if other == target {
                continue;
            }
            let children = graph.children(other).unwrap();
            if children.iter().any(|c| desc_c.contains(c)) {
                share.insert(other);
                continue;
            }
            if desc_c_or_self.contains(&other) || graph.is_ancestor(other, target) {
                continue;
            }
            let desc_other = graph.descendants(other).unwrap();
            if desc_other.iter().any(|d| desc_c.contains(d)) {
                share.insert(other);
            }
        }
        share
    }

    proptest! {
        /// The optimised upward-walk share set matches the quadratic §3
        /// formula on every random multi-ownership DAG.
        #[test]
        fn share_set_matches_paper_formula(g in arb_dag(), target in 0u64..12) {
            let target = ctx(target);
            prop_assert_eq!(
                share_set(&g, target).unwrap(),
                share_set_reference(&g, target)
            );
        }
    }

    proptest! {
        /// The dominator (when concrete) is always an ancestor-or-self of
        /// the target and of every context in its share set.
        #[test]
        fn dominator_dominates_share_set(g in arb_dag(), target in 0u64..12) {
            let target = ctx(target);
            for mode in [DominatorMode::PaperFormula, DominatorMode::Closure] {
                let dom = dominator_of(&g, target, mode).unwrap();
                if let Dominator::Context(d) = dom {
                    prop_assert!(d == target || g.is_ancestor(d, target));
                    for s in share_set(&g, target).unwrap() {
                        prop_assert!(d == s || g.is_ancestor(d, s),
                            "dominator {d} must dominate sharing context {s}");
                    }
                }
            }
        }

        /// In closure mode, two targets with overlapping descendant sets
        /// either resolve to the same concrete dominator or at least one of
        /// them resolves to the global root — i.e. conflicting events always
        /// have a common sequencer.
        #[test]
        fn closure_mode_gives_conflicting_targets_a_common_sequencer(
            g in arb_dag(), a in 0u64..12, b in 0u64..12
        ) {
            let (a, b) = (ctx(a), ctx(b));
            prop_assume!(a != b);
            let mut da: std::collections::BTreeSet<_> = g.descendants(a).unwrap();
            da.insert(a);
            let mut db: std::collections::BTreeSet<_> = g.descendants(b).unwrap();
            db.insert(b);
            if da.intersection(&db).next().is_some() {
                let dom_a = dominator_of(&g, a, DominatorMode::Closure).unwrap();
                let dom_b = dominator_of(&g, b, DominatorMode::Closure).unwrap();
                let ok = dom_a == dom_b
                    || dom_a == Dominator::GlobalRoot
                    || dom_b == Dominator::GlobalRoot
                    // One target dominated by the other's dominator: the
                    // lower event's path activation passes through it.
                    || match (dom_a, dom_b) {
                        (Dominator::Context(x), Dominator::Context(y)) => {
                            g.is_ancestor(x, y) || g.is_ancestor(y, x) || x == y
                        }
                        _ => false,
                    };
                prop_assert!(ok, "targets {a} and {b} share state but lack a common sequencer");
            }
        }

        /// The cache never changes answers.
        #[test]
        fn cached_answers_match_uncached(g in arb_dag(), targets in proptest::collection::vec(0u64..12, 1..8)) {
            let resolver = DominatorResolver::default();
            for t in targets {
                let t = ctx(t);
                let cached = resolver.dominator(&g, t).unwrap();
                let fresh = dominator_of(&g, t, DominatorMode::Closure).unwrap();
                prop_assert_eq!(cached, fresh);
            }
        }
    }
}
