//! Integration tests: the real AEON runtime, exercised concurrently, must
//! produce strictly serializable histories (the paper's §4 claim), and the
//! checker must reject executions produced without AEON's synchronisation.

use aeon_api::Session;
use aeon_checker::bank::{bank_class_graph, deploy_bank, run_bank_workload, BankConfig};
use aeon_checker::generator::{locked_history, racy_history, serial_history, GeneratorConfig};
use aeon_checker::{
    check_serializability, check_strict_serializability, HistoryRecorder, OpKind, RecordingRegister,
};
use aeon_runtime::{AeonRuntime, Placement};
use aeon_types::{args, Value};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn concurrent_bank_run_is_strictly_serializable_and_conserves_money() {
    let config = BankConfig {
        branches: 4,
        accounts_per_branch: 3,
        shared_accounts: 1,
        clients: 6,
        transfers_per_client: 30,
        audit_every: 7,
        async_percent: 40,
        servers: 4,
        ..BankConfig::default()
    };
    let report = run_bank_workload(&config).expect("workload runs");
    assert!(report.transfers > 0 && report.audits > 0);
    assert_eq!(
        report.final_total, report.expected_total,
        "money is conserved"
    );
    match &report.serializability {
        Ok(order) => assert_eq!(order.order.len(), report.history.event_count()),
        Err(violation) => panic!("history not strictly serializable: {violation}"),
    }
}

#[test]
fn single_ownership_bank_is_also_serializable() {
    // Without shared accounts every branch is its own dominator, so events
    // on different branches run fully in parallel; the checker must still
    // find a serial order.
    let config = BankConfig {
        branches: 6,
        accounts_per_branch: 3,
        shared_accounts: 0,
        clients: 6,
        transfers_per_client: 25,
        audit_every: 9,
        async_percent: 20,
        servers: 3,
        ..BankConfig::default()
    };
    let report = run_bank_workload(&config).expect("workload runs");
    assert!(report.is_correct(), "single-ownership run must be correct");
}

#[test]
fn concurrent_increments_on_one_register_never_lose_updates() {
    let recorder = HistoryRecorder::new();
    let runtime = AeonRuntime::builder().servers(2).build().unwrap();
    let register = runtime
        .create_context(
            Box::new(RecordingRegister::new("Counter", 0, recorder.clone())),
            Placement::Auto,
        )
        .unwrap();
    let runtime = Arc::new(runtime);
    let threads = 8;
    let increments_per_thread = 50;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let runtime = Arc::clone(&runtime);
        let recorder = recorder.clone();
        handles.push(std::thread::spawn(move || {
            let client = runtime.client();
            for _ in 0..increments_per_thread {
                let token = recorder.invocation_started();
                let handle = client.submit_event(register, "add", args![1i64]).unwrap();
                recorder.bind(token, handle.event_id());
                let event = handle.event_id();
                handle.wait().unwrap();
                recorder.completed(event);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let history = recorder.history();
    let client = runtime.client();
    let value = client.call_readonly(register, "read", args![]).unwrap();
    assert_eq!(value, Value::from((threads * increments_per_thread) as i64));
    assert_eq!(
        history.operation_count() as i64,
        (threads * increments_per_thread) as i64
    );
    check_strict_serializability(&history).expect("increment history is strictly serializable");
}

#[test]
fn deployment_audit_is_consistent_under_concurrent_transfers() {
    // Audits running concurrently with transfers must never observe a
    // partially applied transfer (that would break the conservation total in
    // the audit snapshot *and* show up as a precedence cycle).
    let recorder = HistoryRecorder::new();
    let config = BankConfig {
        branches: 3,
        accounts_per_branch: 2,
        shared_accounts: 1,
        initial_balance: 100,
        ..BankConfig::default()
    };
    let runtime = AeonRuntime::builder()
        .servers(3)
        .class_graph(bank_class_graph())
        .build()
        .unwrap();
    let deployment = deploy_bank(&runtime, &config, &recorder).unwrap();
    let expected = deployment.expected_total(&config);
    let runtime = Arc::new(runtime);
    let deployment = Arc::new(deployment);

    let transferer = {
        let runtime = Arc::clone(&runtime);
        let deployment = Arc::clone(&deployment);
        std::thread::spawn(move || {
            let client = runtime.client();
            for i in 0..60usize {
                let b = i % deployment.branches.len();
                let accounts = &deployment.accounts_of[b];
                let from = accounts[i % accounts.len()];
                let to = accounts[(i + 1) % accounts.len()];
                client
                    .call(deployment.branches[b], "transfer", args![from, to, 5i64])
                    .unwrap();
            }
        })
    };
    let auditor = {
        let runtime = Arc::clone(&runtime);
        let deployment = Arc::clone(&deployment);
        std::thread::spawn(move || {
            let client = runtime.client();
            let mut observed = Vec::new();
            for _ in 0..20usize {
                let total = client
                    .call_readonly(deployment.bank, "audit", args![])
                    .unwrap()
                    .as_i64()
                    .unwrap();
                observed.push(total);
            }
            observed
        })
    };
    transferer.join().unwrap();
    let observed = auditor.join().unwrap();
    for total in observed {
        assert_eq!(total, expected, "audit observed a torn transfer");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_serial_histories_always_accepted(
        events in 1usize..40,
        contexts in 1usize..8,
        ops in 1usize..5,
        read_percent in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let config = GeneratorConfig { events, contexts, ops_per_event: ops, read_percent, seed };
        let history = serial_history(&config);
        prop_assert!(check_strict_serializability(&history).is_ok());
    }

    #[test]
    fn prop_locked_histories_always_accepted(
        events in 1usize..60,
        contexts in 1usize..10,
        ops in 1usize..6,
        read_percent in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let config = GeneratorConfig { events, contexts, ops_per_event: ops, read_percent, seed };
        let history = locked_history(&config);
        prop_assert!(check_strict_serializability(&history).is_ok());
    }

    #[test]
    fn prop_lost_updates_always_rejected(
        contexts in 1usize..6,
        seed in any::<u64>(),
    ) {
        let config = GeneratorConfig { events: 4, contexts, ops_per_event: 2, read_percent: 50, seed };
        let history = racy_history(&config, 100);
        prop_assert!(check_serializability(&history).is_err());
        prop_assert!(check_strict_serializability(&history).is_err());
    }

    #[test]
    fn prop_serialization_order_respects_conflicts(
        events in 2usize..30,
        contexts in 1usize..6,
        ops in 1usize..4,
        seed in any::<u64>(),
    ) {
        let config = GeneratorConfig { events, contexts, ops_per_event: ops, read_percent: 20, seed };
        let history = locked_history(&config);
        let order = check_strict_serializability(&history).unwrap();
        let positions = order.positions();
        // Every write->write pair in a context must appear in serial order.
        for ops in history.operations.values() {
            for (i, a) in ops.iter().enumerate() {
                for b in ops.iter().skip(i + 1) {
                    if a.event != b.event
                        && a.kind == OpKind::Write
                        && b.kind == OpKind::Write
                    {
                        prop_assert!(positions[&a.event] < positions[&b.event]);
                    }
                }
            }
        }
    }
}
