//! Property tests for the checker over randomly generated histories.
//!
//! The serial generator is the oracle: any history produced by executing
//! events one after another is strictly serializable by construction, so
//! the checker must accept it (and recover the generation order).  The
//! locked generator produces overlapping-but-disciplined histories the
//! checker must also accept, and `inject_lost_update` is the canonical
//! cyclic mutation every check must reject.

use aeon_checker::generator::{inject_lost_update, locked_history, serial_history};
use aeon_checker::{check_serializability, check_strict_serializability, GeneratorConfig};
use aeon_types::{ContextId, EventId};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (1usize..40, 1usize..8, 1usize..5, 0u32..=100, any::<u64>()).prop_map(
        |(events, contexts, ops_per_event, read_percent, seed)| GeneratorConfig {
            events,
            contexts,
            ops_per_event,
            read_percent,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serial-oracle histories are accepted, and the equivalent serial
    /// order the checker returns is exactly the order the oracle executed.
    #[test]
    fn serial_oracle_histories_are_accepted(config in config_strategy()) {
        let history = serial_history(&config);
        let order = check_strict_serializability(&history)
            .expect("serial histories are strictly serializable");
        let expected: Vec<EventId> = (1..=config.events as u64).map(EventId::new).collect();
        prop_assert_eq!(order.order, expected);
    }

    /// Overlapping histories that follow the exclusive-lock discipline (the
    /// guarantee the AEON dominator/lock protocol provides) are accepted.
    #[test]
    fn locked_histories_are_accepted(config in config_strategy()) {
        let history = locked_history(&config);
        prop_assert!(check_strict_serializability(&history).is_ok());
        prop_assert!(check_serializability(&history).is_ok());
    }

    /// A lost-update mutation spliced into an otherwise-correct history is
    /// rejected by both checks, and the reported cycle involves the
    /// injected events.
    #[test]
    fn cyclic_mutations_are_rejected(
        config in config_strategy(),
        context_pick in any::<u64>(),
    ) {
        let mut history = locked_history(&config);
        let context = ContextId::new(1 + context_pick % config.contexts as u64);
        let (a, b) = inject_lost_update(&mut history, context);
        let violation = check_serializability(&history)
            .expect_err("a lost update is not serializable");
        let members: std::collections::BTreeSet<EventId> =
            violation.cycle.iter().flat_map(|e| [e.from, e.to]).collect();
        prop_assert!(members.contains(&a) && members.contains(&b));
        prop_assert!(check_strict_serializability(&history).is_err());
    }

    /// Strictness alone is also rejectable: reordering a conflicting pair
    /// across a real-time boundary (a "stale read" of an already-responded
    /// write) breaks the strict check while plain serializability holds.
    #[test]
    fn stale_reads_violate_strictness_only(seed in any::<u64>()) {
        use aeon_checker::{EventSpan, History, OpKind, Operation};
        let mut history = History::new();
        let writer = EventId::new(1);
        let reader = EventId::new(2);
        let context = ContextId::new(1 + seed % 5);
        // The reader's operation lands *before* the writer's in the
        // per-context order, but the reader was invoked after the writer
        // responded.
        history.push_operation(Operation { event: reader, context, kind: OpKind::Read, at: 10 });
        history.push_operation(Operation { event: writer, context, kind: OpKind::Write, at: 11 });
        history.set_span(writer, EventSpan { invoked_at: 0, responded_at: Some(2) });
        history.set_span(reader, EventSpan { invoked_at: 3, responded_at: Some(12) });
        prop_assert!(check_serializability(&history).is_ok());
        prop_assert!(check_strict_serializability(&history).is_err());
    }
}
