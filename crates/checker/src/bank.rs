//! A bank-transfer workload used to stress the runtime and feed the
//! serializability checker.
//!
//! Structure: a `Bank` root context owns `Branch` contexts; each branch
//! owns `Account` contexts ([`RecordingRegister`]s).  A configurable number
//! of accounts are *shared* between neighbouring branches (multi-ownership,
//! §3 of the paper), which forces events on those branches to be sequenced
//! at the bank-level dominator exactly like the shared `Treasure` of the
//! game example.
//!
//! Events:
//!
//! * `transfer(from, to, amount)` on a `Branch` — withdraws from one owned
//!   account and deposits into another (two writes inside one event);
//! * `audit` *(readonly)* on the `Bank` — sums every account through the
//!   branches and must always observe the invariant total.
//!
//! After a run, [`run_bank_workload`] returns the recorded [`History`], the
//! outcome of the strict-serializability check, and the conservation
//! invariant (total money never changes), so tests and benchmarks can assert
//! both value-level and order-level correctness.

use crate::checker::{check_strict_serializability, SerializationOrder, Violation};
use crate::history::{History, HistoryRecorder};
use crate::recording::RecordingRegister;
use aeon_api::Session;
use aeon_ownership::ClassGraph;
use aeon_runtime::{AeonRuntime, ContextObject, Invocation, Placement};
use aeon_types::{args, AeonError, Args, ContextId, Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Class constraints of the bank application.
pub fn bank_class_graph() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.add_constraint("Bank", "Branch");
    classes.add_constraint("Branch", "Account");
    classes
}

/// The `Branch` contextclass: owns accounts and moves money between them.
#[derive(Debug, Default)]
pub struct Branch {
    accounts: Vec<ContextId>,
}

impl Branch {
    /// Creates a branch with no accounts yet (accounts are attached through
    /// ownership edges after creation).
    pub fn new() -> Self {
        Self::default()
    }
}

impl ContextObject for Branch {
    fn class_name(&self) -> &str {
        "Branch"
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            // transfer(from_account, to_account, amount)
            "transfer" => {
                let from = args.get_context(0)?;
                let to = args.get_context(1)?;
                let amount = args.get_i64(2)?;
                inv.call(from, "add", args![-amount])?;
                inv.call(to, "add", args![amount])?;
                Ok(Value::Null)
            }
            // Same transfer but the deposit leg is issued asynchronously,
            // exercising the `async` call path of the runtime.
            "transfer_async" => {
                let from = args.get_context(0)?;
                let to = args.get_context(1)?;
                let amount = args.get_i64(2)?;
                inv.call(from, "add", args![-amount])?;
                inv.call_async(to, "add", args![amount])?;
                Ok(Value::Null)
            }
            // Registers an account this branch owns (bookkeeping only).
            "attach_account" => {
                let account = args.get_context(0)?;
                if !self.accounts.contains(&account) {
                    self.accounts.push(account);
                }
                Ok(Value::Null)
            }
            // readonly: sum of the balances of all owned accounts.
            "local_total" => {
                let mut total = 0i64;
                for account in inv.children(Some("Account"))? {
                    total += inv
                        .call(account, "read", args![])?
                        .as_i64()
                        .ok_or_else(|| AeonError::app("account returned a non-integer"))?;
                }
                Ok(Value::from(total))
            }
            // readonly: number of owned accounts.
            "account_count" => Ok(Value::from(inv.children(Some("Account"))?.len() as i64)),
            _ => Err(AeonError::UnknownMethod {
                class: "Branch".into(),
                method: method.into(),
            }),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "local_total" | "account_count")
    }

    fn snapshot(&self) -> Value {
        Value::map([(
            "accounts",
            Value::List(
                self.accounts
                    .iter()
                    .map(|c| Value::ContextRef(*c))
                    .collect(),
            ),
        )])
    }

    fn restore(&mut self, state: &Value) {
        if let Some(list) = state.get("accounts").and_then(Value::as_list) {
            self.accounts = list.iter().filter_map(Value::as_context).collect();
        }
    }
}

/// The `Bank` root contextclass.
#[derive(Debug, Default)]
pub struct Bank;

impl ContextObject for Bank {
    fn class_name(&self) -> &str {
        "Bank"
    }

    fn handle(&mut self, method: &str, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            // readonly: total money across every branch.  Shared accounts
            // are owned by two branches; summing per branch would count them
            // twice, so the audit deduplicates account ids first.
            "audit" => {
                let mut seen = std::collections::BTreeSet::new();
                let mut total = 0i64;
                for branch in inv.children(Some("Branch"))? {
                    // Collect account ids from the branch, then read each
                    // account at most once (shared accounts have two owners).
                    let accounts = inv.call(branch, "account_ids", args![])?;
                    let accounts = accounts.as_list().unwrap_or(&[]);
                    for id in accounts.iter().filter_map(Value::as_context) {
                        if seen.insert(id) {
                            total += inv
                                .call(id, "read", args![])?
                                .as_i64()
                                .ok_or_else(|| AeonError::app("account returned non-integer"))?;
                        }
                    }
                }
                Ok(Value::from(total))
            }
            "branch_count" => Ok(Value::from(inv.children(Some("Branch"))?.len() as i64)),
            method => Err(AeonError::UnknownMethod {
                class: "Bank".into(),
                method: method.into(),
            }),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "audit" | "branch_count")
    }
}

/// Configuration of the bank workload.
#[derive(Debug, Clone)]
pub struct BankConfig {
    /// Number of branches.
    pub branches: usize,
    /// Accounts exclusively owned by each branch.
    pub accounts_per_branch: usize,
    /// Accounts shared between each pair of neighbouring branches
    /// (multi-ownership).
    pub shared_accounts: usize,
    /// Initial balance of every account.
    pub initial_balance: i64,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Transfers submitted by each client.
    pub transfers_per_client: usize,
    /// One in `audit_every` operations is a read-only audit instead of a
    /// transfer (0 disables audits).
    pub audit_every: usize,
    /// Fraction (in percent) of transfers that use the `async` deposit leg.
    pub async_percent: u32,
    /// RNG seed, for reproducibility.
    pub seed: u64,
    /// Number of logical servers in the runtime.
    pub servers: usize,
}

impl Default for BankConfig {
    fn default() -> Self {
        Self {
            branches: 4,
            accounts_per_branch: 4,
            shared_accounts: 1,
            initial_balance: 100,
            clients: 4,
            transfers_per_client: 25,
            audit_every: 10,
            async_percent: 25,
            seed: 42,
            servers: 4,
        }
    }
}

/// The deployed bank: context ids of every tier.
#[derive(Debug, Clone)]
pub struct BankDeployment {
    /// Root context.
    pub bank: ContextId,
    /// Branch contexts.
    pub branches: Vec<ContextId>,
    /// For each branch, the accounts it owns (exclusive first, then shared).
    pub accounts_of: Vec<Vec<ContextId>>,
    /// Every distinct account.
    pub accounts: Vec<ContextId>,
}

impl BankDeployment {
    /// Total money in the system right after deployment.
    pub fn expected_total(&self, config: &BankConfig) -> i64 {
        self.accounts.len() as i64 * config.initial_balance
    }
}

/// Deploys the bank application onto `runtime` and returns the deployment.
///
/// # Errors
///
/// Propagates context-creation errors (e.g. class-graph violations).
pub fn deploy_bank(
    runtime: &AeonRuntime,
    config: &BankConfig,
    recorder: &HistoryRecorder,
) -> Result<BankDeployment> {
    let bank = runtime.create_context(Box::new(Bank), Placement::Auto)?;
    let mut branches = Vec::with_capacity(config.branches);
    let mut accounts_of: Vec<Vec<ContextId>> = Vec::with_capacity(config.branches);
    let mut accounts = Vec::new();
    for _ in 0..config.branches {
        let branch = runtime.create_owned_context(Box::new(BranchWithDirectory::new()), &[bank])?;
        branches.push(branch);
        accounts_of.push(Vec::new());
    }
    // Exclusive accounts.
    for (b, branch) in branches.iter().enumerate() {
        for _ in 0..config.accounts_per_branch {
            let account = runtime.create_owned_context(
                Box::new(RecordingRegister::new(
                    "Account",
                    config.initial_balance,
                    recorder.clone(),
                )),
                &[*branch],
            )?;
            accounts_of[b].push(account);
            accounts.push(account);
        }
    }
    // Shared accounts between neighbouring branches.
    if config.branches > 1 {
        for b in 0..config.branches - 1 {
            for _ in 0..config.shared_accounts {
                let account = runtime.create_owned_context(
                    Box::new(RecordingRegister::new(
                        "Account",
                        config.initial_balance,
                        recorder.clone(),
                    )),
                    &[branches[b], branches[b + 1]],
                )?;
                accounts_of[b].push(account);
                accounts_of[b + 1].push(account);
                accounts.push(account);
            }
        }
    }
    // Tell each branch which accounts it owns (used by audits).
    let client = runtime.client();
    for (b, branch) in branches.iter().enumerate() {
        for account in &accounts_of[b] {
            client.call(*branch, "attach_account", args![*account])?;
        }
    }
    Ok(BankDeployment {
        bank,
        branches,
        accounts_of,
        accounts,
    })
}

/// `Branch` extended with an `account_ids` readonly method so the bank-level
/// audit can deduplicate shared accounts.
#[derive(Debug, Default)]
pub struct BranchWithDirectory {
    inner: Branch,
}

impl BranchWithDirectory {
    /// Creates an empty branch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ContextObject for BranchWithDirectory {
    fn class_name(&self) -> &str {
        "Branch"
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            "account_ids" => Ok(Value::List(
                inv.children(Some("Account"))?
                    .into_iter()
                    .map(Value::ContextRef)
                    .collect(),
            )),
            _ => self.inner.handle(method, args, inv),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "account_ids" || self.inner.is_readonly(method)
    }

    fn snapshot(&self) -> Value {
        self.inner.snapshot()
    }

    fn restore(&mut self, state: &Value) {
        self.inner.restore(state);
    }
}

/// Outcome of a bank workload run.
#[derive(Debug)]
pub struct BankRunReport {
    /// The recorded history.
    pub history: History,
    /// Result of the strict-serializability check over the history.
    pub serializability: std::result::Result<SerializationOrder, Violation>,
    /// Number of transfer events that completed successfully.
    pub transfers: u64,
    /// Number of read-only audit events that completed successfully.
    pub audits: u64,
    /// Total money observed by a final audit after all clients finished.
    pub final_total: i64,
    /// Total money expected (conservation invariant).
    pub expected_total: i64,
}

impl BankRunReport {
    /// Whether both the value-level invariant and the order-level check
    /// passed.
    pub fn is_correct(&self) -> bool {
        self.serializability.is_ok() && self.final_total == self.expected_total
    }
}

/// Builds a runtime, deploys the bank, runs the concurrent workload and
/// returns the report.
///
/// # Errors
///
/// Propagates deployment and event-submission failures; individual event
/// failures inside worker threads abort the run.
pub fn run_bank_workload(config: &BankConfig) -> Result<BankRunReport> {
    let recorder = HistoryRecorder::new();
    let runtime = AeonRuntime::builder()
        .servers(config.servers.max(1))
        .class_graph(bank_class_graph())
        .build()?;
    let deployment = deploy_bank(&runtime, config, &recorder)?;
    // Deployment traffic (attach_account and the registers' initial state)
    // is not part of the checked workload.
    recorder.reset();

    let deployment = Arc::new(deployment);
    let runtime = Arc::new(runtime);
    let mut workers = Vec::with_capacity(config.clients);
    for worker_idx in 0..config.clients {
        let runtime = Arc::clone(&runtime);
        let deployment = Arc::clone(&deployment);
        let recorder = recorder.clone();
        let config = config.clone();
        workers.push(std::thread::spawn(move || -> Result<(u64, u64)> {
            let client = runtime.client();
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(worker_idx as u64));
            let mut transfers = 0u64;
            let mut audits = 0u64;
            for op in 0..config.transfers_per_client {
                let do_audit = config.audit_every > 0 && op % config.audit_every == 0;
                if do_audit {
                    let token = recorder.invocation_started();
                    let handle = client.submit_readonly_event(deployment.bank, "audit", args![])?;
                    recorder.bind(token, handle.event_id());
                    let event = handle.event_id();
                    handle.wait()?;
                    recorder.completed(event);
                    audits += 1;
                } else {
                    let b = rng.gen_range(0..deployment.branches.len());
                    let accounts = &deployment.accounts_of[b];
                    let from = accounts[rng.gen_range(0..accounts.len())];
                    let mut to = accounts[rng.gen_range(0..accounts.len())];
                    if to == from {
                        to = accounts[(rng.gen_range(0..accounts.len()) + 1) % accounts.len()];
                    }
                    if to == from {
                        continue;
                    }
                    let amount = rng.gen_range(1..=10i64);
                    let method = if rng.gen_range(0..100u32) < config.async_percent {
                        "transfer_async"
                    } else {
                        "transfer"
                    };
                    let token = recorder.invocation_started();
                    let handle = client.submit_event(
                        deployment.branches[b],
                        method,
                        args![from, to, amount],
                    )?;
                    recorder.bind(token, handle.event_id());
                    let event = handle.event_id();
                    handle.wait()?;
                    recorder.completed(event);
                    transfers += 1;
                }
            }
            Ok((transfers, audits))
        }));
    }
    let mut transfers = 0u64;
    let mut audits = 0u64;
    for worker in workers {
        let (t, a) = worker
            .join()
            .map_err(|_| AeonError::internal("bank worker panicked"))??;
        transfers += t;
        audits += a;
    }

    let client = runtime.client();
    let final_total = client
        .call_readonly(deployment.bank, "audit", args![])?
        .as_i64()
        .ok_or_else(|| AeonError::app("audit returned non-integer"))?;
    let history = recorder.history();
    let serializability = check_strict_serializability(&history);
    Ok(BankRunReport {
        serializability,
        transfers,
        audits,
        final_total,
        expected_total: deployment.expected_total(config),
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_graph_is_acyclic() {
        bank_class_graph().check().unwrap();
    }

    #[test]
    fn deployment_builds_expected_shape() {
        let recorder = HistoryRecorder::new();
        let config = BankConfig {
            branches: 3,
            accounts_per_branch: 2,
            ..BankConfig::default()
        };
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        let deployment = deploy_bank(&runtime, &config, &recorder).unwrap();
        assert_eq!(deployment.branches.len(), 3);
        // 3 branches * 2 exclusive + 2 shared (between pairs 0-1 and 1-2).
        assert_eq!(deployment.accounts.len(), 3 * 2 + 2);
        assert_eq!(
            deployment.expected_total(&config),
            (3 * 2 + 2) as i64 * config.initial_balance
        );
        // Shared accounts have two owners in the ownership graph.
        let graph = runtime.ownership_graph();
        let shared = deployment.accounts_of[0]
            .iter()
            .filter(|a| deployment.accounts_of[1].contains(a))
            .count();
        assert_eq!(shared, 1);
        let shared_account = *deployment.accounts_of[0]
            .iter()
            .find(|a| deployment.accounts_of[1].contains(a))
            .unwrap();
        assert_eq!(graph.parents(shared_account).unwrap().len(), 2);
    }

    #[test]
    fn sequential_transfers_conserve_money() {
        let config = BankConfig {
            clients: 1,
            transfers_per_client: 20,
            branches: 2,
            accounts_per_branch: 3,
            ..BankConfig::default()
        };
        let report = run_bank_workload(&config).unwrap();
        assert_eq!(report.final_total, report.expected_total);
        assert!(report.serializability.is_ok());
        assert!(report.is_correct());
        assert!(report.transfers > 0);
    }

    #[test]
    fn audit_counts_shared_accounts_once() {
        let recorder = HistoryRecorder::new();
        let config = BankConfig {
            branches: 2,
            accounts_per_branch: 1,
            shared_accounts: 1,
            initial_balance: 50,
            ..BankConfig::default()
        };
        let runtime = AeonRuntime::builder()
            .servers(1)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        let deployment = deploy_bank(&runtime, &config, &recorder).unwrap();
        let client = runtime.client();
        let total = client
            .call_readonly(deployment.bank, "audit", args![])
            .unwrap();
        // 2 exclusive + 1 shared = 3 accounts of 50.
        assert_eq!(total, Value::from(150i64));
    }
}
