//! Synthetic history generators used by property tests and benchmarks.
//!
//! Two families are provided:
//!
//! * [`serial_history`] — events execute one after the other, never
//!   overlapping.  Any such history is strictly serializable by
//!   construction, so the checker must accept it.
//! * [`locked_history`] — events overlap in real time, but every context is
//!   protected by an exclusive "lock" while an event uses it (the discipline
//!   the AEON protocol enforces).  These are also serializable by
//!   construction and exercise the conflict-edge machinery much harder.
//! * [`racy_history`] — the locking discipline is deliberately broken with a
//!   configurable probability, producing lost-update interleavings the
//!   checker is expected to reject (a model of the paper's `Orleans*`
//!   baseline, §6.1).

use crate::history::{EventSpan, History, OpKind, Operation};
use aeon_types::{ContextId, EventId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters shared by the generators.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Number of distinct contexts.
    pub contexts: usize,
    /// Operations performed by each event.
    pub ops_per_event: usize,
    /// Probability (0..=100) that an operation is a read.
    pub read_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            events: 20,
            contexts: 5,
            ops_per_event: 3,
            read_percent: 50,
            seed: 7,
        }
    }
}

fn kind<R: Rng>(rng: &mut R, config: &GeneratorConfig) -> OpKind {
    if rng.gen_range(0..100) < config.read_percent {
        OpKind::Read
    } else {
        OpKind::Write
    }
}

/// Generates a history in which events run strictly one after another.
pub fn serial_history(config: &GeneratorConfig) -> History {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = History::new();
    let mut clock = 0u64;
    for e in 1..=config.events as u64 {
        let event = EventId::new(e);
        let invoked_at = clock;
        clock += 1;
        for _ in 0..config.ops_per_event {
            let context = ContextId::new(rng.gen_range(1..=config.contexts as u64));
            history.push_operation(Operation {
                event,
                context,
                kind: kind(&mut rng, config),
                at: clock,
            });
            clock += 1;
        }
        history.set_span(
            event,
            EventSpan {
                invoked_at,
                responded_at: Some(clock),
            },
        );
        clock += 1;
    }
    history
}

/// Generates a history of overlapping events whose context accesses follow
/// an exclusive-lock discipline: for every context, the event order is
/// consistent with a global serial order drawn up front.  This is exactly
/// the guarantee the AEON dominator/lock protocol provides, so the result is
/// always strictly serializable.
pub fn locked_history(config: &GeneratorConfig) -> History {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = History::new();
    // The hidden serial order: event e is the e-th to commit.
    // Real-time spans all overlap (invoked at 0..n, responded late), so only
    // conflict edges order them — and those all agree with the hidden order.
    let mut clock = 0u64;
    let events: Vec<EventId> = (1..=config.events as u64).map(EventId::new).collect();
    for (pos, event) in events.iter().enumerate() {
        history.set_span(
            *event,
            EventSpan {
                invoked_at: pos as u64,
                responded_at: Some(
                    (config.events + config.events * config.ops_per_event + pos) as u64,
                ),
            },
        );
    }
    clock += config.events as u64;
    // Accesses happen in hidden-order passes, so per-context sequences are
    // consistent with it.
    for event in &events {
        for _ in 0..config.ops_per_event {
            let context = ContextId::new(rng.gen_range(1..=config.contexts as u64));
            history.push_operation(Operation {
                event: *event,
                context,
                kind: kind(&mut rng, config),
                at: clock,
            });
            clock += 1;
        }
    }
    history
}

/// Generates a history in which pairs of events interleave conflicting
/// accesses on a shared context with probability `race_percent`, modelling a
/// runtime without cross-actor synchronisation.  With a non-zero race
/// probability and enough events, the result is overwhelmingly likely to be
/// non-serializable.
pub fn racy_history(config: &GeneratorConfig, race_percent: u32) -> History {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = locked_history(config);
    let mut clock = 1_000_000u64;
    let mut next_event = config.events as u64 + 1;
    for c in 1..=config.contexts as u64 {
        if rng.gen_range(0..100) < race_percent {
            // Two new events interleave read-read-write-write on context c:
            // both miss each other's update (lost update).
            let a = EventId::new(next_event);
            let b = EventId::new(next_event + 1);
            next_event += 2;
            let context = ContextId::new(c);
            for (event, kind) in [
                (a, OpKind::Read),
                (b, OpKind::Read),
                (a, OpKind::Write),
                (b, OpKind::Write),
            ] {
                history.push_operation(Operation {
                    event,
                    context,
                    kind,
                    at: clock,
                });
                clock += 1;
            }
            history.set_span(
                a,
                EventSpan {
                    invoked_at: clock,
                    responded_at: Some(clock + 10),
                },
            );
            history.set_span(
                b,
                EventSpan {
                    invoked_at: clock,
                    responded_at: Some(clock + 10),
                },
            );
            clock += 20;
        }
    }
    history
}

/// Splices a lost-update interleaving into `history`: two fresh events
/// read-read-write-write `context` with overlapping spans, so each misses
/// the other's update.  The mutation creates a two-event conflict cycle,
/// which every serializability check must reject; property tests use it as
/// the canonical "known-cyclic" history mutation.  Returns the two injected
/// event ids.
pub fn inject_lost_update(history: &mut History, context: ContextId) -> (EventId, EventId) {
    let next_event = history.events().iter().map(|e| e.raw()).max().unwrap_or(0) + 1;
    let a = EventId::new(next_event);
    let b = EventId::new(next_event + 1);
    let mut clock = history
        .spans
        .values()
        .filter_map(|s| s.responded_at)
        .chain(
            history
                .operations
                .values()
                .flat_map(|ops| ops.iter().map(|op| op.at)),
        )
        .max()
        .unwrap_or(0)
        + 1;
    let invoked_at = clock;
    for (event, kind) in [
        (a, OpKind::Read),
        (b, OpKind::Read),
        (a, OpKind::Write),
        (b, OpKind::Write),
    ] {
        history.push_operation(Operation {
            event,
            context,
            kind,
            at: clock,
        });
        clock += 1;
    }
    for event in [a, b] {
        history.set_span(
            event,
            EventSpan {
                invoked_at,
                responded_at: Some(clock),
            },
        );
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_serializability, check_strict_serializability};

    #[test]
    fn serial_histories_are_strictly_serializable() {
        for seed in 0..5 {
            let config = GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            };
            let history = serial_history(&config);
            let order = check_strict_serializability(&history).unwrap();
            // The serial order must be the generation order.
            let expected: Vec<EventId> = (1..=config.events as u64).map(EventId::new).collect();
            assert_eq!(order.order, expected);
        }
    }

    #[test]
    fn locked_histories_are_strictly_serializable() {
        for seed in 0..5 {
            let config = GeneratorConfig {
                seed,
                events: 40,
                contexts: 6,
                ops_per_event: 4,
                read_percent: 30,
            };
            let history = locked_history(&config);
            assert!(
                check_strict_serializability(&history).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn racy_histories_are_rejected() {
        let config = GeneratorConfig {
            events: 10,
            contexts: 8,
            ..GeneratorConfig::default()
        };
        let history = racy_history(&config, 100);
        assert!(check_serializability(&history).is_err());
        assert!(check_strict_serializability(&history).is_err());
    }

    #[test]
    fn race_free_racy_history_degenerates_to_locked() {
        let config = GeneratorConfig::default();
        let history = racy_history(&config, 0);
        assert!(check_strict_serializability(&history).is_ok());
    }

    #[test]
    fn lost_update_mutation_breaks_any_history() {
        let mut history = serial_history(&GeneratorConfig::default());
        assert!(check_strict_serializability(&history).is_ok());
        let (a, b) = inject_lost_update(&mut history, ContextId::new(1));
        assert_ne!(a, b);
        let err = check_serializability(&history).unwrap_err();
        let members: std::collections::BTreeSet<EventId> =
            err.cycle.iter().flat_map(|e| [e.from, e.to]).collect();
        assert!(members.contains(&a) && members.contains(&b));
        assert!(check_strict_serializability(&history).is_err());
    }
}
