//! # aeon-checker — execution-history recording and serializability checking
//!
//! The AEON paper's central correctness claim (§4) is that every execution
//! of an application built on the runtime is **strictly serializable**:
//! indistinguishable from some serial execution of its events that respects
//! the real-time order of non-overlapping events.  This crate provides the
//! tooling to *test* that claim against the actual runtime rather than take
//! it on faith:
//!
//! * [`HistoryRecorder`] / [`History`] capture what happened during a run —
//!   per-event invocation/response spans and per-context read/write
//!   sequences;
//! * [`check_strict_serializability`] builds the precedence graph (conflict
//!   edges + real-time edges) and either produces an equivalent serial
//!   order or a witnessed cycle;
//! * [`RecordingRegister`] / [`RecordingKv`] are instrumented context
//!   objects that feed the recorder from inside event handlers;
//! * [`bank`] is a ready-made concurrent workload (transfers over a bank of
//!   shared accounts) that exercises multi-ownership, read-only events and
//!   `async` calls, and checks both a value-level invariant (money is
//!   conserved) and the order-level property;
//! * [`generator`] produces synthetic correct and incorrect histories (and
//!   the [`generator::inject_lost_update`] cyclic mutation) for property
//!   tests and benchmarks of the checker itself.
//!
//! # The live recording surface
//!
//! Synthetic histories only test the checker; to test the *system*, the
//! recorder doubles as the canonical [`aeon_types::HistorySink`]: install a
//! clone on any `aeon_api::Deployment` via `install_history_sink` and the
//! backend itself feeds it —
//!
//! * the gateway/runtime records `invoked` when an event id is assigned
//!   (before the event can start) and `responded` once the completion is
//!   observable, so recorded spans over-approximate the true ones and the
//!   derived real-time order stays sound;
//! * each node records `accessed` under the context's object lock, so
//!   per-context sequences equal the order the context observed;
//! * deployment-level snapshots are recorded as one event *reading* every
//!   member, restores as one event *writing* every member — which is what
//!   lets the checker catch a torn (non-atomic) snapshot as a conflict
//!   cycle through the snapshot event.
//!
//! # The distributed freeze protocol being verified
//!
//! The cluster's `snapshot_context`/`restore_snapshot` run a coordinated
//! subtree freeze (`FreezeReq`/`FreezeAck`/`ThawReq`): the freeze event
//! first takes the root's dominator sequencer exclusively (quiescing every
//! in-flight event that could reach shared members), then exclusively
//! activates the members owner-before-owned across their hosting nodes,
//! capturing or restoring each at activation while *all* locks stay held,
//! and finally thaws every contacted node — also on failure, so a node
//! crash mid-freeze leaves no stranded locks.  The chaos suite
//! (`tests/chaos_serializability.rs`) drives randomized workloads with
//! snapshot/crash/restore/migration injected mid-run, feeds the recorded
//! history to [`check_strict_serializability`], and demonstrates that the
//! legacy member-at-a-time capture (test-only
//! `ClusterBuilder::torn_snapshot_for_tests`) is rejected by the same
//! machinery.
//!
//! # Examples
//!
//! ```
//! use aeon_checker::{bank, check_strict_serializability};
//!
//! # fn main() -> aeon_types::Result<()> {
//! let config = bank::BankConfig { clients: 2, transfers_per_client: 10, ..Default::default() };
//! let report = bank::run_bank_workload(&config)?;
//! assert!(report.is_correct());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod checker;
pub mod generator;
pub mod history;
pub mod recording;

pub use checker::{
    check_serializability, check_strict_serializability, EdgeReason, PrecedenceEdge,
    PrecedenceGraph, SerializationOrder, Violation,
};
pub use generator::{inject_lost_update, GeneratorConfig};
pub use history::{EventSpan, History, HistoryRecorder, InvocationToken, OpKind, Operation};
pub use recording::{RecordingKv, RecordingRegister};
