//! # aeon-checker — execution-history recording and serializability checking
//!
//! The AEON paper's central correctness claim (§4) is that every execution
//! of an application built on the runtime is **strictly serializable**:
//! indistinguishable from some serial execution of its events that respects
//! the real-time order of non-overlapping events.  This crate provides the
//! tooling to *test* that claim against the actual runtime rather than take
//! it on faith:
//!
//! * [`HistoryRecorder`] / [`History`] capture what happened during a run —
//!   per-event invocation/response spans and per-context read/write
//!   sequences;
//! * [`check_strict_serializability`] builds the precedence graph (conflict
//!   edges + real-time edges) and either produces an equivalent serial
//!   order or a witnessed cycle;
//! * [`RecordingRegister`] / [`RecordingKv`] are instrumented context
//!   objects that feed the recorder from inside event handlers;
//! * [`bank`] is a ready-made concurrent workload (transfers over a bank of
//!   shared accounts) that exercises multi-ownership, read-only events and
//!   `async` calls, and checks both a value-level invariant (money is
//!   conserved) and the order-level property;
//! * [`generator`] produces synthetic correct and incorrect histories for
//!   property tests and benchmarks of the checker itself.
//!
//! # Examples
//!
//! ```
//! use aeon_checker::{bank, check_strict_serializability};
//!
//! # fn main() -> aeon_types::Result<()> {
//! let config = bank::BankConfig { clients: 2, transfers_per_client: 10, ..Default::default() };
//! let report = bank::run_bank_workload(&config)?;
//! assert!(report.is_correct());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod checker;
pub mod generator;
pub mod history;
pub mod recording;

pub use checker::{
    check_serializability, check_strict_serializability, EdgeReason, PrecedenceEdge,
    PrecedenceGraph, SerializationOrder, Violation,
};
pub use history::{EventSpan, History, HistoryRecorder, InvocationToken, OpKind, Operation};
pub use recording::{RecordingKv, RecordingRegister};
