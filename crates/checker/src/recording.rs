//! Instrumented context objects that feed a [`HistoryRecorder`].
//!
//! [`RecordingRegister`] is the workhorse: a single integer register whose
//! methods record every read and write, so that a workload built from
//! registers can be checked for strict serializability after the fact.
//! [`RecordingKv`] wraps the generic key/value context from `aeon-runtime`
//! the same way.

use crate::history::{HistoryRecorder, OpKind};
use aeon_runtime::{ContextObject, Invocation, KvContext};
use aeon_types::{AeonError, Args, Result, Value};

/// A single integer register that records its accesses.
///
/// Methods:
///
/// * `read` *(readonly)* — returns the current value;
/// * `write(v)` — replaces the value;
/// * `add(delta)` — read-modify-write increment, returns the new value;
/// * `compare_and_add(expected, delta)` — adds only when the current value
///   equals `expected`; returns a bool.
#[derive(Debug)]
pub struct RecordingRegister {
    class: String,
    value: i64,
    recorder: HistoryRecorder,
}

impl RecordingRegister {
    /// Creates a register with an initial value.
    pub fn new(class: impl Into<String>, initial: i64, recorder: HistoryRecorder) -> Self {
        Self {
            class: class.into(),
            value: initial,
            recorder,
        }
    }

    /// The current value (test convenience; concurrent access goes through
    /// events).
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl ContextObject for RecordingRegister {
    fn class_name(&self) -> &str {
        &self.class
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let event = inv.event_id();
        let this = inv.self_id();
        match method {
            "read" => {
                self.recorder.record(event, this, OpKind::Read);
                Ok(Value::from(self.value))
            }
            "write" => {
                self.recorder.record(event, this, OpKind::Write);
                self.value = args.get_i64(0)?;
                Ok(Value::Null)
            }
            "add" => {
                self.recorder.record(event, this, OpKind::Write);
                self.value += args.get_i64(0)?;
                Ok(Value::from(self.value))
            }
            "compare_and_add" => {
                self.recorder.record(event, this, OpKind::Write);
                let expected = args.get_i64(0)?;
                let delta = args.get_i64(1)?;
                if self.value == expected {
                    self.value += delta;
                    Ok(Value::from(true))
                } else {
                    Ok(Value::from(false))
                }
            }
            _ => Err(AeonError::UnknownMethod {
                class: self.class.clone(),
                method: method.to_string(),
            }),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "read"
    }

    fn snapshot(&self) -> Value {
        Value::map([
            ("class", Value::from(self.class.clone())),
            ("value", Value::from(self.value)),
        ])
    }

    fn restore(&mut self, state: &Value) {
        if let Some(class) = state.get("class").and_then(Value::as_str) {
            self.class = class.to_string();
        }
        if let Some(value) = state.get("value").and_then(Value::as_i64) {
            self.value = value;
        }
    }
}

/// A recording wrapper around [`KvContext`]: `get`/`keys` record reads,
/// every other method records a write.
#[derive(Debug)]
pub struct RecordingKv {
    inner: KvContext,
    recorder: HistoryRecorder,
}

impl RecordingKv {
    /// Creates an empty recording key/value context.
    pub fn new(class: impl Into<String>, recorder: HistoryRecorder) -> Self {
        Self {
            inner: KvContext::new(class),
            recorder,
        }
    }
}

impl ContextObject for RecordingKv {
    fn class_name(&self) -> &str {
        self.inner.class_name()
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let kind = if self.inner.is_readonly(method) {
            OpKind::Read
        } else {
            OpKind::Write
        };
        self.recorder.record(inv.event_id(), inv.self_id(), kind);
        self.inner.handle(method, args, inv)
    }

    fn is_readonly(&self, method: &str) -> bool {
        self.inner.is_readonly(method)
    }

    fn snapshot(&self) -> Value {
        self.inner.snapshot()
    }

    fn restore(&mut self, state: &Value) {
        self.inner.restore(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_strict_serializability;
    use aeon_api::Session;
    use aeon_runtime::{AeonRuntime, Placement};
    use aeon_types::args;

    #[test]
    fn register_records_reads_and_writes() {
        let recorder = HistoryRecorder::new();
        let runtime = AeonRuntime::builder().build().unwrap();
        let reg = runtime
            .create_context(
                Box::new(RecordingRegister::new("Register", 5, recorder.clone())),
                Placement::Auto,
            )
            .unwrap();
        let client = runtime.client();

        let token = recorder.invocation_started();
        let handle = client.submit_readonly_event(reg, "read", args![]).unwrap();
        recorder.bind(token, handle.event_id());
        assert_eq!(handle.wait().unwrap(), Value::from(5i64));

        let token = recorder.invocation_started();
        let handle = client.submit_event(reg, "add", args![3i64]).unwrap();
        recorder.bind(token, handle.event_id());
        let event = handle.event_id();
        assert_eq!(handle.wait().unwrap(), Value::from(8i64));
        recorder.completed(event);

        let history = recorder.history();
        assert_eq!(history.operation_count(), 2);
        assert!(check_strict_serializability(&history).is_ok());
    }

    #[test]
    fn register_rejects_unknown_methods_and_snapshots() {
        let recorder = HistoryRecorder::new();
        let runtime = AeonRuntime::builder().build().unwrap();
        let reg = runtime
            .create_context(
                Box::new(RecordingRegister::new("Register", 1, recorder.clone())),
                Placement::Auto,
            )
            .unwrap();
        let client = runtime.client();
        assert!(matches!(
            client.call(reg, "no_such_method", args![]),
            Err(AeonError::UnknownMethod { .. })
        ));

        let mut r = RecordingRegister::new("Register", 42, recorder);
        let snap = r.snapshot();
        r.value = 0;
        r.restore(&snap);
        assert_eq!(r.value(), 42);
    }

    #[test]
    fn recording_kv_classifies_methods_like_kv() {
        let recorder = HistoryRecorder::new();
        let kv = RecordingKv::new("Item", recorder.clone());
        assert!(kv.is_readonly("get"));
        assert!(!kv.is_readonly("set"));

        let runtime = AeonRuntime::builder().build().unwrap();
        let ctx = runtime
            .create_context(Box::new(kv), Placement::Auto)
            .unwrap();
        let client = runtime.client();
        client.call(ctx, "set", args!["gold", 7i64]).unwrap();
        assert_eq!(
            client.call_readonly(ctx, "get", args!["gold"]).unwrap(),
            Value::from(7i64)
        );
        let history = recorder.history();
        assert_eq!(history.operation_count(), 2);
        assert_eq!(
            history.operations.values().next().unwrap()[0].kind,
            OpKind::Write
        );
        assert_eq!(
            history.operations.values().next().unwrap()[1].kind,
            OpKind::Read
        );
    }

    #[test]
    fn compare_and_add_only_applies_on_match() {
        let recorder = HistoryRecorder::new();
        let runtime = AeonRuntime::builder().build().unwrap();
        let reg = runtime
            .create_context(
                Box::new(RecordingRegister::new("Register", 10, recorder)),
                Placement::Auto,
            )
            .unwrap();
        let client = runtime.client();
        assert_eq!(
            client
                .call(reg, "compare_and_add", args![10i64, 5i64])
                .unwrap(),
            Value::from(true)
        );
        assert_eq!(
            client
                .call(reg, "compare_and_add", args![10i64, 5i64])
                .unwrap(),
            Value::from(false)
        );
        assert_eq!(
            client.call_readonly(reg, "read", args![]).unwrap(),
            Value::from(15i64)
        );
    }
}
