//! The strict-serializability checker.
//!
//! Given a recorded [`History`], the checker builds a *precedence graph*
//! over events and searches it for cycles:
//!
//! * **conflict edges** — for every pair of operations on the same context
//!   where at least one is a write, an edge from the event whose operation
//!   the context observed first to the event whose operation it observed
//!   second (the per-context order is the serialization order imposed by the
//!   context's activation lock);
//! * **real-time edges** — an edge from every event that responded before
//!   another event was invoked (strictness: the equivalent serial order must
//!   respect the temporal order of non-overlapping events, §4 of the paper).
//!
//! If the graph is acyclic, its topological order is an equivalent serial
//! execution and the history is strictly serializable.  If it has a cycle,
//! the checker reports the shortest cycle it found together with the edges
//! that form it, which makes test failures actionable.

use crate::history::History;
use aeon_types::{ContextId, EventId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Why two events must be ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeReason {
    /// The two events performed conflicting operations on `context`, and the
    /// source event's operation was observed first.
    Conflict {
        /// The context on which the conflict occurred.
        context: ContextId,
    },
    /// The source event responded before the destination event was invoked.
    RealTime,
}

impl fmt::Display for EdgeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeReason::Conflict { context } => write!(f, "conflict on context {context}"),
            EdgeReason::RealTime => write!(f, "real-time order"),
        }
    }
}

/// A directed precedence edge between two events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PrecedenceEdge {
    /// Event that must be serialized first.
    pub from: EventId,
    /// Event that must be serialized second.
    pub to: EventId,
    /// Why the edge exists.
    pub reason: EdgeReason,
}

/// The precedence graph derived from a history.
#[derive(Debug, Clone, Default)]
pub struct PrecedenceGraph {
    nodes: BTreeSet<EventId>,
    /// Adjacency: for each source, the set of destinations with one witness
    /// reason each (the first reason found is kept).
    edges: BTreeMap<EventId, BTreeMap<EventId, EdgeReason>>,
}

impl PrecedenceGraph {
    /// Builds the precedence graph (conflict edges plus real-time edges) for
    /// a history.
    pub fn build(history: &History) -> Self {
        let mut graph = Self {
            nodes: history.events(),
            edges: BTreeMap::new(),
        };
        graph.add_conflict_edges(history);
        graph.add_real_time_edges(history);
        graph
    }

    /// Builds a graph with conflict edges only (plain serializability, used
    /// by the weaker [`check_serializability`] entry point).
    pub fn build_conflict_only(history: &History) -> Self {
        let mut graph = Self {
            nodes: history.events(),
            edges: BTreeMap::new(),
        };
        graph.add_conflict_edges(history);
        graph
    }

    fn add_edge(&mut self, from: EventId, to: EventId, reason: EdgeReason) {
        if from == to {
            return;
        }
        self.nodes.insert(from);
        self.nodes.insert(to);
        self.edges
            .entry(from)
            .or_default()
            .entry(to)
            .or_insert(reason);
    }

    fn add_conflict_edges(&mut self, history: &History) {
        for (context, ops) in &history.operations {
            for (i, earlier) in ops.iter().enumerate() {
                for later in ops.iter().skip(i + 1) {
                    if earlier.event != later.event && earlier.kind.conflicts_with(later.kind) {
                        self.add_edge(
                            earlier.event,
                            later.event,
                            EdgeReason::Conflict { context: *context },
                        );
                    }
                }
            }
        }
    }

    fn add_real_time_edges(&mut self, history: &History) {
        let spans: Vec<(EventId, &crate::history::EventSpan)> =
            history.spans.iter().map(|(e, s)| (*e, s)).collect();
        for (first_id, first) in &spans {
            for (second_id, second) in &spans {
                if first_id != second_id && first.precedes(second) {
                    self.add_edge(*first_id, *second_id, EdgeReason::RealTime);
                }
            }
        }
    }

    /// Number of events in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeMap::len).sum()
    }

    /// All edges, ordered by `(from, to)`.
    pub fn edges(&self) -> Vec<PrecedenceEdge> {
        self.edges
            .iter()
            .flat_map(|(from, dests)| {
                dests.iter().map(|(to, reason)| PrecedenceEdge {
                    from: *from,
                    to: *to,
                    reason: *reason,
                })
            })
            .collect()
    }

    /// Kahn's algorithm: returns a topological order, or the events left on
    /// a cycle when none exists.
    fn topological_sort(&self) -> Result<Vec<EventId>, Vec<EventId>> {
        let mut indegree: BTreeMap<EventId, usize> = self.nodes.iter().map(|n| (*n, 0)).collect();
        for dests in self.edges.values() {
            for to in dests.keys() {
                *indegree.entry(*to).or_insert(0) += 1;
            }
        }
        let mut ready: VecDeque<EventId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(node) = ready.pop_front() {
            order.push(node);
            if let Some(dests) = self.edges.get(&node) {
                for to in dests.keys() {
                    let d = indegree.get_mut(to).expect("destination is a node");
                    *d -= 1;
                    if *d == 0 {
                        ready.push_back(*to);
                    }
                }
            }
        }
        if order.len() == self.nodes.len() {
            Ok(order)
        } else {
            let ordered: BTreeSet<EventId> = order.into_iter().collect();
            Err(self
                .nodes
                .iter()
                .filter(|n| !ordered.contains(n))
                .copied()
                .collect())
        }
    }

    /// Finds the shortest cycle through `start` using BFS over the residual
    /// nodes, returning the cycle as an edge list.
    fn cycle_through(&self, start: EventId, residual: &BTreeSet<EventId>) -> Vec<PrecedenceEdge> {
        // BFS from start back to start.
        let mut predecessor: BTreeMap<EventId, EventId> = BTreeMap::new();
        let mut queue = VecDeque::from([start]);
        let mut seen = BTreeSet::from([start]);
        while let Some(node) = queue.pop_front() {
            if let Some(dests) = self.edges.get(&node) {
                for to in dests.keys() {
                    if !residual.contains(to) {
                        continue;
                    }
                    if *to == start {
                        // Reconstruct the path start -> ... -> node -> start.
                        let mut path = vec![node, start];
                        let mut cursor = node;
                        while cursor != start {
                            let prev = predecessor[&cursor];
                            path.insert(0, prev);
                            cursor = prev;
                        }
                        return path
                            .windows(2)
                            .map(|pair| PrecedenceEdge {
                                from: pair[0],
                                to: pair[1],
                                reason: self.edges[&pair[0]][&pair[1]],
                            })
                            .collect();
                    }
                    if seen.insert(*to) {
                        predecessor.insert(*to, node);
                        queue.push_back(*to);
                    }
                }
            }
        }
        Vec::new()
    }
}

/// A witnessed violation: a cycle in the precedence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The edges forming the cycle, in order; the last edge returns to the
    /// first edge's source.
    pub cycle: Vec<PrecedenceEdge>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serializability violation: ")?;
        for (i, edge) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, ", then ")?;
            }
            write!(f, "{} -> {} ({})", edge.from, edge.to, edge.reason)?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// The verdict of a successful check: an equivalent serial order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializationOrder {
    /// Events in an order compatible with every precedence edge.
    pub order: Vec<EventId>,
}

impl SerializationOrder {
    /// Position of each event in the serial order.
    pub fn positions(&self) -> BTreeMap<EventId, usize> {
        self.order
            .iter()
            .enumerate()
            .map(|(i, e)| (*e, i))
            .collect()
    }

    /// Whether `first` is serialized before `second`.
    pub fn serializes_before(&self, first: EventId, second: EventId) -> bool {
        let pos = self.positions();
        match (pos.get(&first), pos.get(&second)) {
            (Some(a), Some(b)) => a < b,
            _ => false,
        }
    }
}

/// Checks a history for **strict serializability**: there must exist a
/// serial order of events consistent with both the per-context conflict
/// order and the real-time order of non-overlapping events.
///
/// # Errors
///
/// Returns a [`Violation`] carrying a witnessed precedence cycle when no
/// such order exists.
///
/// # Examples
///
/// ```
/// use aeon_checker::{check_strict_serializability, HistoryRecorder, OpKind};
/// use aeon_types::{ContextId, EventId};
///
/// let rec = HistoryRecorder::new();
/// rec.begin(EventId::new(1));
/// rec.record(EventId::new(1), ContextId::new(1), OpKind::Write);
/// rec.completed(EventId::new(1));
/// let order = check_strict_serializability(&rec.history()).unwrap();
/// assert_eq!(order.order, vec![EventId::new(1)]);
/// ```
pub fn check_strict_serializability(history: &History) -> Result<SerializationOrder, Violation> {
    check_graph(PrecedenceGraph::build(history))
}

/// Checks a history for plain (non-strict) conflict serializability: the
/// real-time order is ignored.  Useful to distinguish "not serializable at
/// all" from "serializable but not strictly" in diagnostics.
///
/// # Errors
///
/// Returns a [`Violation`] when even the conflict-only graph is cyclic.
pub fn check_serializability(history: &History) -> Result<SerializationOrder, Violation> {
    check_graph(PrecedenceGraph::build_conflict_only(history))
}

fn check_graph(graph: PrecedenceGraph) -> Result<SerializationOrder, Violation> {
    match graph.topological_sort() {
        Ok(order) => Ok(SerializationOrder { order }),
        Err(residual) => {
            let residual_set: BTreeSet<EventId> = residual.iter().copied().collect();
            let cycle = residual
                .iter()
                .map(|start| graph.cycle_through(*start, &residual_set))
                .filter(|c| !c.is_empty())
                .min_by_key(Vec::len)
                .unwrap_or_default();
            Err(Violation { cycle })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{EventSpan, HistoryRecorder, OpKind, Operation};

    fn ev(n: u64) -> EventId {
        EventId::new(n)
    }

    fn cx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    fn op(event: u64, context: u64, kind: OpKind, at: u64) -> Operation {
        Operation {
            event: ev(event),
            context: cx(context),
            kind,
            at,
        }
    }

    #[test]
    fn empty_history_is_trivially_serializable() {
        let order = check_strict_serializability(&History::new()).unwrap();
        assert!(order.order.is_empty());
    }

    #[test]
    fn sequential_writes_serialize_in_context_order() {
        let rec = HistoryRecorder::new();
        for e in 1..=3 {
            rec.begin(ev(e));
            rec.record(ev(e), cx(1), OpKind::Write);
            rec.completed(ev(e));
        }
        let order = check_strict_serializability(&rec.history()).unwrap();
        assert_eq!(order.order, vec![ev(1), ev(2), ev(3)]);
    }

    #[test]
    fn concurrent_reads_commute() {
        let mut h = History::new();
        // Two overlapping read-only events on the same context.
        h.set_span(
            ev(1),
            EventSpan {
                invoked_at: 0,
                responded_at: Some(10),
            },
        );
        h.set_span(
            ev(2),
            EventSpan {
                invoked_at: 1,
                responded_at: Some(9),
            },
        );
        h.push_operation(op(1, 1, OpKind::Read, 2));
        h.push_operation(op(2, 1, OpKind::Read, 3));
        let graph = PrecedenceGraph::build(&h);
        assert_eq!(graph.edge_count(), 0, "read/read pairs produce no edges");
        assert!(check_strict_serializability(&h).is_ok());
    }

    #[test]
    fn conflict_cycle_is_detected() {
        // Classic lost-update interleaving: E1 and E2 both read context 1
        // then both write it, each missing the other's write.
        let mut h = History::new();
        h.push_operation(op(1, 1, OpKind::Read, 0));
        h.push_operation(op(2, 1, OpKind::Read, 1));
        h.push_operation(op(1, 1, OpKind::Write, 2));
        h.push_operation(op(2, 1, OpKind::Write, 3));
        // Overlapping spans: no real-time constraint.
        h.set_span(
            ev(1),
            EventSpan {
                invoked_at: 0,
                responded_at: Some(10),
            },
        );
        h.set_span(
            ev(2),
            EventSpan {
                invoked_at: 0,
                responded_at: Some(10),
            },
        );
        let err = check_strict_serializability(&h).unwrap_err();
        assert!(!err.cycle.is_empty());
        assert!(err.to_string().contains("conflict"));
        // It is not even plainly serializable.
        assert!(check_serializability(&h).is_err());
    }

    #[test]
    fn write_skew_across_two_contexts_is_detected() {
        // E1 reads c1 then writes c2; E2 reads c2 then writes c1, with the
        // reads observing the pre-images.  c1 order: r1(E1), w(E2); c2
        // order: r(E2), w(E1).  Gives E1 -> ... wait: edges E1->E2 on c1
        // (read before write) and E2->E1 on c2 (read before write): cycle.
        let mut h = History::new();
        h.push_operation(op(1, 1, OpKind::Read, 0));
        h.push_operation(op(2, 1, OpKind::Write, 3));
        h.push_operation(op(2, 2, OpKind::Read, 1));
        h.push_operation(op(1, 2, OpKind::Write, 2));
        let err = check_serializability(&h).unwrap_err();
        assert_eq!(
            err.cycle.len(),
            2,
            "shortest witness is the two-event cycle"
        );
    }

    #[test]
    fn stale_read_after_response_violates_strictness_only() {
        // E1 writes context 1 and responds.  E2 then starts, but reads the
        // context *before* E1's write in the context order (a stale read, as
        // a non-strict system could produce from a lagging replica).  The
        // history is serializable (E2 before E1) but not strictly so.
        let mut h = History::new();
        h.push_operation(op(2, 1, OpKind::Read, 5));
        h.push_operation(op(1, 1, OpKind::Write, 6));
        h.set_span(
            ev(1),
            EventSpan {
                invoked_at: 0,
                responded_at: Some(2),
            },
        );
        h.set_span(
            ev(2),
            EventSpan {
                invoked_at: 3,
                responded_at: Some(7),
            },
        );
        assert!(check_serializability(&h).is_ok());
        let err = check_strict_serializability(&h).unwrap_err();
        assert!(err.cycle.iter().any(|e| e.reason == EdgeReason::RealTime));
        assert!(err
            .cycle
            .iter()
            .any(|e| matches!(e.reason, EdgeReason::Conflict { context } if context == cx(1))));
    }

    #[test]
    fn serialization_order_respects_real_time() {
        let rec = HistoryRecorder::new();
        rec.begin(ev(10));
        rec.record(ev(10), cx(1), OpKind::Write);
        rec.completed(ev(10));
        rec.begin(ev(4));
        rec.record(ev(4), cx(2), OpKind::Write);
        rec.completed(ev(4));
        let order = check_strict_serializability(&rec.history()).unwrap();
        assert!(
            order.serializes_before(ev(10), ev(4)),
            "real-time order wins over id order"
        );
    }

    #[test]
    fn disjoint_events_commute_in_any_order() {
        let mut h = History::new();
        h.push_operation(op(1, 1, OpKind::Write, 0));
        h.push_operation(op(2, 2, OpKind::Write, 1));
        h.set_span(
            ev(1),
            EventSpan {
                invoked_at: 0,
                responded_at: Some(10),
            },
        );
        h.set_span(
            ev(2),
            EventSpan {
                invoked_at: 0,
                responded_at: Some(10),
            },
        );
        let graph = PrecedenceGraph::build(&h);
        assert_eq!(graph.edge_count(), 0);
        assert_eq!(graph.node_count(), 2);
        assert!(check_strict_serializability(&h).is_ok());
    }

    #[test]
    fn three_event_cycle_is_reported_with_witness_edges() {
        let mut h = History::new();
        h.push_operation(op(1, 1, OpKind::Write, 0));
        h.push_operation(op(2, 1, OpKind::Write, 1));
        h.push_operation(op(2, 2, OpKind::Write, 2));
        h.push_operation(op(3, 2, OpKind::Write, 3));
        h.push_operation(op(3, 3, OpKind::Write, 4));
        h.push_operation(op(1, 3, OpKind::Write, 5));
        // Real-time edge closing the loop the "wrong" way is not needed;
        // conflicts already give 1 -> 2 -> 3 -> 1?  No: edges are 1->2,
        // 2->3, 3->1?  c3 order is (3, then 1) so 3->1.  Cycle of length 3.
        let err = check_serializability(&h).unwrap_err();
        assert_eq!(err.cycle.len(), 3);
        let members: BTreeSet<EventId> = err.cycle.iter().flat_map(|e| [e.from, e.to]).collect();
        assert_eq!(members, BTreeSet::from([ev(1), ev(2), ev(3)]));
    }

    #[test]
    fn violation_display_is_informative() {
        let violation = Violation {
            cycle: vec![
                PrecedenceEdge {
                    from: ev(1),
                    to: ev(2),
                    reason: EdgeReason::Conflict { context: cx(5) },
                },
                PrecedenceEdge {
                    from: ev(2),
                    to: ev(1),
                    reason: EdgeReason::RealTime,
                },
            ],
        };
        let text = violation.to_string();
        assert!(text.contains("conflict on context"));
        assert!(text.contains("real-time order"));
    }
}
