//! Execution histories: the raw material of the serializability checker.
//!
//! A [`History`] records, for one run of an AEON application:
//!
//! * per-event *spans* — a logical invocation timestamp taken no later than
//!   the moment the client submitted the event, and a response timestamp
//!   taken no earlier than the moment the client observed its completion;
//! * per-context *operation sequences* — the order in which events read and
//!   wrote each context, as observed inside the context (i.e. under the
//!   context's activation lock, which serializes all conflicting accesses).
//!
//! The timestamps are drawn from a single logical clock, so the real-time
//! ("happened strictly before") relation between events is well defined.
//! Because invocation timestamps are taken *before* submission and response
//! timestamps *after* completion, the recorded spans over-approximate the
//! true spans; the derived real-time order is therefore a subset of the true
//! one, which keeps the checker sound (it never reports a false violation
//! due to timestamping).

use aeon_types::{AccessMode, ContextId, EventId, HistorySink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether an operation observed or modified the context state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// The operation only observed state.
    Read,
    /// The operation modified state.
    Write,
}

impl OpKind {
    /// Two operations conflict when they touch the same context and at least
    /// one of them is a write.
    pub fn conflicts_with(self, other: OpKind) -> bool {
        matches!((self, other), (OpKind::Write, _) | (_, OpKind::Write))
    }
}

/// One recorded access of a context by an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operation {
    /// The event performing the access.
    pub event: EventId,
    /// The context accessed.
    pub context: ContextId,
    /// Read or write.
    pub kind: OpKind,
    /// Logical timestamp at which the access was recorded (monotonic per
    /// context because accesses are recorded under the context lock).
    pub at: u64,
}

/// The client-observed span of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSpan {
    /// Logical timestamp taken before the event was submitted.
    pub invoked_at: u64,
    /// Logical timestamp taken after the event's response was observed, or
    /// `None` while the event is still pending.
    pub responded_at: Option<u64>,
}

impl EventSpan {
    /// Whether this event responded strictly before `other` was invoked
    /// (the real-time precedence used by strict serializability).
    pub fn precedes(&self, other: &EventSpan) -> bool {
        matches!(self.responded_at, Some(r) if r < other.invoked_at)
    }
}

/// A complete recorded execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// Per-event spans.
    pub spans: BTreeMap<EventId, EventSpan>,
    /// Per-context operation sequences, in context-observed order.
    pub operations: BTreeMap<ContextId, Vec<Operation>>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events that appear in the history (as a span, an operation, or
    /// both).
    pub fn events(&self) -> BTreeSet<EventId> {
        let mut events: BTreeSet<EventId> = self.spans.keys().copied().collect();
        for ops in self.operations.values() {
            events.extend(ops.iter().map(|op| op.event));
        }
        events
    }

    /// All contexts with at least one recorded operation.
    pub fn contexts(&self) -> BTreeSet<ContextId> {
        self.operations.keys().copied().collect()
    }

    /// Total number of recorded operations.
    pub fn operation_count(&self) -> usize {
        self.operations.values().map(Vec::len).sum()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events().len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.operations.iter().all(|(_, ops)| ops.is_empty())
    }

    /// Appends an operation to a context's sequence (test / generator
    /// convenience; the runtime path goes through [`HistoryRecorder`]).
    pub fn push_operation(&mut self, op: Operation) {
        self.operations.entry(op.context).or_default().push(op);
    }

    /// Inserts or replaces an event span (test / generator convenience).
    pub fn set_span(&mut self, event: EventId, span: EventSpan) {
        self.spans.insert(event, span);
    }

    /// Merges another history into this one.  Operation sequences for the
    /// same context are concatenated in `(self, other)` order; callers
    /// should only merge histories recorded against disjoint context sets or
    /// disjoint time ranges.
    pub fn merge(&mut self, other: History) {
        for (event, span) in other.spans {
            self.spans.entry(event).or_insert(span);
        }
        for (context, ops) in other.operations {
            self.operations.entry(context).or_default().extend(ops);
        }
    }
}

/// A pending invocation token: carries the invocation timestamp taken before
/// the runtime assigned an [`EventId`] to the submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationToken {
    invoked_at: u64,
}

#[derive(Debug, Default)]
struct RecorderInner {
    clock: AtomicU64,
    spans: Mutex<BTreeMap<EventId, EventSpan>>,
    operations: Mutex<BTreeMap<ContextId, Vec<Operation>>>,
}

/// Thread-safe recorder shared between the workload driver (which records
/// event spans) and the instrumented contexts (which record per-context
/// reads and writes).
///
/// Cloning the recorder is cheap; all clones feed the same history.
///
/// # Examples
///
/// ```
/// use aeon_checker::{HistoryRecorder, OpKind};
/// use aeon_types::{ContextId, EventId};
///
/// let recorder = HistoryRecorder::new();
/// let token = recorder.invocation_started();
/// let event = EventId::new(1);
/// recorder.bind(token, event);
/// recorder.record(event, ContextId::new(7), OpKind::Write);
/// recorder.completed(event);
/// let history = recorder.history();
/// assert_eq!(history.event_count(), 1);
/// assert_eq!(history.operation_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryRecorder {
    inner: Arc<RecorderInner>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Takes an invocation timestamp.  Call this *before* submitting the
    /// event so the recorded span covers the true one.
    pub fn invocation_started(&self) -> InvocationToken {
        InvocationToken {
            invoked_at: self.tick(),
        }
    }

    /// Binds a previously taken invocation token to the event id the runtime
    /// assigned to the submission.
    pub fn bind(&self, token: InvocationToken, event: EventId) {
        self.inner.spans.lock().insert(
            event,
            EventSpan {
                invoked_at: token.invoked_at,
                responded_at: None,
            },
        );
    }

    /// Convenience for tests and synchronous drivers: takes the invocation
    /// timestamp and binds it in one step (only correct when the event has
    /// not started executing yet).
    pub fn begin(&self, event: EventId) {
        let token = self.invocation_started();
        self.bind(token, event);
    }

    /// Records the response timestamp of an event.  Call this *after* the
    /// client observed the completion (e.g. after `EventHandle::wait`).
    pub fn completed(&self, event: EventId) {
        let at = self.tick();
        let mut spans = self.inner.spans.lock();
        match spans.get_mut(&event) {
            Some(span) => span.responded_at = Some(at),
            None => {
                spans.insert(
                    event,
                    EventSpan {
                        invoked_at: at,
                        responded_at: Some(at),
                    },
                );
            }
        }
    }

    /// Records a read or write of `context` by `event`.  Instrumented
    /// contexts call this from inside their method handlers, i.e. while the
    /// event holds the context's activation lock.
    pub fn record(&self, event: EventId, context: ContextId, kind: OpKind) {
        let at = self.tick();
        self.inner
            .operations
            .lock()
            .entry(context)
            .or_default()
            .push(Operation {
                event,
                context,
                kind,
                at,
            });
    }

    /// Number of operations recorded so far.
    pub fn operation_count(&self) -> usize {
        self.inner.operations.lock().values().map(Vec::len).sum()
    }

    /// A snapshot of everything recorded so far.
    pub fn history(&self) -> History {
        History {
            spans: self.inner.spans.lock().clone(),
            operations: self.inner.operations.lock().clone(),
        }
    }

    /// Clears everything recorded so far (e.g. between benchmark phases).
    pub fn reset(&self) {
        self.inner.spans.lock().clear();
        self.inner.operations.lock().clear();
    }
}

/// The recorder is the canonical [`HistorySink`]: install a clone on any
/// `aeon_api::Deployment` (`install_history_sink`) and every backend feeds
/// it live invoke/respond/access records, ready for
/// [`crate::check_strict_serializability`].
///
/// # Examples
///
/// ```
/// use aeon_api::Deployment;
/// use aeon_checker::{check_strict_serializability, HistoryRecorder};
/// use aeon_runtime::{AeonRuntime, KvContext, Placement};
/// use aeon_types::args;
/// use std::sync::Arc;
///
/// # fn main() -> aeon_types::Result<()> {
/// let recorder = HistoryRecorder::new();
/// let runtime = AeonRuntime::builder().build()?;
/// runtime.install_history_sink(Arc::new(recorder.clone()));
/// let item = runtime.create_context(Box::new(KvContext::new("Item")), Placement::Auto)?;
/// let session = Deployment::session(&runtime);
/// session.call(item, "set", args!["gold", 3])?;
/// assert!(check_strict_serializability(&recorder.history()).is_ok());
/// runtime.shutdown();
/// # Ok(())
/// # }
/// ```
impl HistorySink for HistoryRecorder {
    fn invoked(&self, event: EventId) {
        self.begin(event);
    }

    fn responded(&self, event: EventId) {
        self.completed(event);
    }

    fn accessed(&self, event: EventId, context: ContextId, mode: AccessMode) {
        let kind = if mode.is_read_only() {
            OpKind::Read
        } else {
            OpKind::Write
        };
        self.record(event, context, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> EventId {
        EventId::new(n)
    }

    fn cx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    #[test]
    fn spans_capture_invocation_and_response_order() {
        let rec = HistoryRecorder::new();
        let t1 = rec.invocation_started();
        rec.bind(t1, ev(1));
        rec.completed(ev(1));
        let t2 = rec.invocation_started();
        rec.bind(t2, ev(2));
        rec.completed(ev(2));
        let h = rec.history();
        assert!(h.spans[&ev(1)].precedes(&h.spans[&ev(2)]));
        assert!(!h.spans[&ev(2)].precedes(&h.spans[&ev(1)]));
    }

    #[test]
    fn pending_events_never_precede_anything() {
        let rec = HistoryRecorder::new();
        rec.begin(ev(1));
        rec.begin(ev(2));
        rec.completed(ev(2));
        let h = rec.history();
        assert!(!h.spans[&ev(1)].precedes(&h.spans[&ev(2)]));
        assert!(h.spans[&ev(1)].responded_at.is_none());
    }

    #[test]
    fn completion_without_begin_creates_a_point_span() {
        let rec = HistoryRecorder::new();
        rec.completed(ev(9));
        let h = rec.history();
        assert!(h.spans[&ev(9)].responded_at.is_some());
    }

    #[test]
    fn operations_keep_per_context_order() {
        let rec = HistoryRecorder::new();
        rec.record(ev(1), cx(1), OpKind::Write);
        rec.record(ev(2), cx(1), OpKind::Read);
        rec.record(ev(3), cx(2), OpKind::Write);
        let h = rec.history();
        let ops = &h.operations[&cx(1)];
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].event, ev(1));
        assert_eq!(ops[1].event, ev(2));
        assert!(ops[0].at < ops[1].at);
        assert_eq!(h.contexts().len(), 2);
        assert_eq!(h.operation_count(), 3);
        assert_eq!(h.event_count(), 3);
    }

    #[test]
    fn conflict_matrix_is_read_write_standard() {
        assert!(!OpKind::Read.conflicts_with(OpKind::Read));
        assert!(OpKind::Read.conflicts_with(OpKind::Write));
        assert!(OpKind::Write.conflicts_with(OpKind::Read));
        assert!(OpKind::Write.conflicts_with(OpKind::Write));
    }

    #[test]
    fn merge_combines_histories() {
        let rec_a = HistoryRecorder::new();
        rec_a.begin(ev(1));
        rec_a.record(ev(1), cx(1), OpKind::Write);
        rec_a.completed(ev(1));
        let rec_b = HistoryRecorder::new();
        rec_b.begin(ev(2));
        rec_b.record(ev(2), cx(2), OpKind::Write);
        rec_b.completed(ev(2));
        let mut merged = rec_a.history();
        merged.merge(rec_b.history());
        assert_eq!(merged.event_count(), 2);
        assert_eq!(merged.operation_count(), 2);
        assert!(!merged.is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let rec = HistoryRecorder::new();
        rec.begin(ev(1));
        rec.record(ev(1), cx(1), OpKind::Write);
        rec.reset();
        assert!(rec.history().is_empty());
        assert_eq!(rec.operation_count(), 0);
    }
}
