//! Property tests for the static analysis pipeline.
//!
//! The generator is the oracle: it builds random ownership DAGs whose call
//! summaries only follow declared ownership edges, so by construction the
//! analyzer must accept them without a single diagnostic.  Each mutation
//! test then splices exactly one seeded defect into an otherwise-sound
//! graph and asserts the pipeline reports the matching `AEONnnn` code —
//! the same contract `aeon-lint` and deploy-time enforcement rely on.

use aeon_analyzer::{analyze, enforce, AnalysisMode, DiagCode};
use aeon_ownership::{ClassGraph, MethodRef};
use aeon_types::AeonError;
use proptest::prelude::*;

/// Class name of index `i`: `C0`, `C1`, ...
fn class(i: usize) -> String {
    format!("C{i}")
}

/// Mutating method name of class `i`.
fn mutating(i: usize) -> String {
    format!("m{i}")
}

/// Readonly method name of class `i`.
fn readonly(i: usize) -> String {
    format!("r{i}")
}

/// Builds a random sound graph of `n` classes.
///
/// Ownership constraints always point from a lower index to a strictly
/// higher index, so the constraint relation is acyclic by construction.  A
/// spine `C0 owns C1 owns ... owns Cn-1` keeps every class connected (no
/// AEON007), and `extra_bits` sprinkles additional forward edges on top.
/// Every class declares one mutating and one readonly method; the mutating
/// method's summary calls the mutating method of each directly-owned class
/// (trivially covered), and the readonly method's summary calls the
/// readonly method of each directly-owned class (never reaches a mutating
/// method).  The call graph therefore also only points forward: no AEON005.
fn sound_graph(n: usize, extra_bits: u64) -> ClassGraph {
    let mut classes = ClassGraph::new();
    let mut owned_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut bit = 0u32;
    for (i, owned) in owned_of.iter_mut().enumerate() {
        classes.add_class(class(i));
        for j in (i + 1)..n {
            let spine = j == i + 1;
            let extra = extra_bits >> (bit % 64) & 1 == 1;
            bit += 1;
            if spine || extra {
                classes.add_constraint(class(i), class(j));
                owned.push(j);
            }
        }
    }
    for (i, owned) in owned_of.iter().enumerate() {
        classes.declare_method(class(i), mutating(i), false);
        classes.declare_method(class(i), readonly(i), true);
        classes.declare_calls(
            class(i),
            mutating(i),
            owned.iter().map(|&j| MethodRef::new(class(j), mutating(j))),
        );
        classes.declare_calls(
            class(i),
            readonly(i),
            owned.iter().map(|&j| MethodRef::new(class(j), readonly(j))),
        );
    }
    classes
}

fn graph_strategy() -> impl Strategy<Value = ClassGraph> {
    (2usize..8, any::<u64>()).prop_map(|(n, bits)| sound_graph(n, bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The generator oracle: summaries that only follow declared ownership
    /// edges analyze completely clean — no errors AND no warnings.
    #[test]
    fn sound_graphs_are_clean(classes in graph_strategy()) {
        let report = analyze(&classes);
        prop_assert!(
            report.is_clean(),
            "sound graph rejected:\n{}",
            report.render_text()
        );
        prop_assert!(classes.check().is_ok());
    }

    /// Clean graphs pass `enforce` in every mode.
    #[test]
    fn sound_graphs_pass_enforcement(classes in graph_strategy()) {
        for mode in [AnalysisMode::Off, AnalysisMode::Warn, AnalysisMode::Enforce] {
            prop_assert!(enforce(&classes, mode).is_ok());
        }
    }

    /// Mutation: a back-edge constraint closes a class-level ownership
    /// cycle, which must surface as AEON001.
    #[test]
    fn injected_ownership_cycle_is_rejected((n, bits) in (2usize..8, any::<u64>())) {
        let mut classes = sound_graph(n, bits);
        classes.add_constraint(class(n - 1), class(0));
        let report = analyze(&classes);
        prop_assert!(
            report.codes().contains(&DiagCode::OwnershipCycle),
            "expected AEON001, got:\n{}",
            report.render_text()
        );
        // The iterative checker agrees with the analyzer.
        prop_assert!(matches!(
            classes.check(),
            Err(AeonError::ClassCycleDetected { .. })
        ));
    }

    /// Mutation: a call against the ownership order (`Cn-1` calls `C0`,
    /// which it cannot own) is an uncovered edge: AEON002.
    #[test]
    fn injected_uncovered_call_is_rejected((n, bits) in (2usize..8, any::<u64>())) {
        let mut classes = sound_graph(n, bits);
        classes.declare_calls(
            class(n - 1),
            mutating(n - 1),
            [MethodRef::new(class(0), mutating(0))],
        );
        let report = analyze(&classes);
        prop_assert!(
            report.codes().contains(&DiagCode::UncoveredCall),
            "expected AEON002, got:\n{}",
            report.render_text()
        );
    }

    /// Mutation: a readonly method whose summary reaches a mutating method
    /// (directly here; the pass is transitive) is AEON003.
    #[test]
    fn injected_ro_calls_mutating_is_rejected((n, bits) in (2usize..8, any::<u64>())) {
        let mut classes = sound_graph(n, bits);
        // C0 owns C1 via the spine, so the edge is covered — the only
        // defect is the readonly method reaching a mutating one.
        classes.declare_calls(class(0), readonly(0), [MethodRef::new(class(1), mutating(1))]);
        let report = analyze(&classes);
        prop_assert!(
            report.codes().contains(&DiagCode::ReadonlyUnsound),
            "expected AEON003, got:\n{}",
            report.render_text()
        );
    }

    /// Mutation: a summary naming a class nobody declared is AEON004.
    #[test]
    fn injected_undeclared_target_is_rejected((n, bits) in (2usize..8, any::<u64>())) {
        let mut classes = sound_graph(n, bits);
        classes.declare_calls(
            class(0),
            mutating(0),
            [MethodRef::new("Ghost", "nothing")],
        );
        let report = analyze(&classes);
        prop_assert!(
            report.codes().contains(&DiagCode::UndeclaredTarget),
            "expected AEON004, got:\n{}",
            report.render_text()
        );
    }

    /// Mutation: closing a non-reflexive cycle in the method call graph
    /// (the spine chain `m0 -> m1 -> ... -> mn-1` plus a back edge
    /// `mn-1 -> m0`) is potential re-entrant deadlock: AEON005.
    #[test]
    fn injected_call_recursion_is_rejected((n, bits) in (2usize..8, any::<u64>())) {
        let mut classes = sound_graph(n, bits);
        classes.declare_calls(
            class(n - 1),
            mutating(n - 1),
            [MethodRef::new(class(0), mutating(0))],
        );
        let report = analyze(&classes);
        prop_assert!(
            report.codes().contains(&DiagCode::PotentialDeadlock),
            "expected AEON005, got:\n{}",
            report.render_text()
        );
    }

    /// Every mutated graph is refused by `Enforce` mode and waved through
    /// (with stderr warnings only) by `Warn` and `Off`.
    #[test]
    fn enforcement_tracks_mutations((n, bits) in (2usize..8, any::<u64>())) {
        let mut classes = sound_graph(n, bits);
        classes.declare_calls(
            class(n - 1),
            mutating(n - 1),
            [MethodRef::new(class(0), mutating(0))],
        );
        prop_assert!(matches!(
            enforce(&classes, AnalysisMode::Enforce),
            Err(AeonError::AnalysisRejected { .. })
        ));
        prop_assert!(enforce(&classes, AnalysisMode::Warn).is_ok());
        prop_assert!(enforce(&classes, AnalysisMode::Off).is_ok());
    }
}
