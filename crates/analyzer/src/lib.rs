//! Static analysis of AEON contextclass graphs (§3, "Type-based
//! enforcement of DAG ownership").
//!
//! The paper's headline guarantee is that a *static* analysis over
//! contextclass declarations proves deadlock-free strict serializability
//! before the program runs.  This crate is that analysis for the
//! reproduction: a [`Pipeline`] of [`Pass`]es over an
//! [`aeon_ownership::ClassGraph`] — the declarative model assembled from
//! `add_constraint` calls and the runtime's `context_class!` method tables
//! (method surfaces, `ro` marks, and per-method `calls [...]`
//! summaries) — producing an [`AnalysisReport`] of [`Diagnostic`]s with
//! stable codes:
//!
//! | code    | severity | meaning                                                |
//! |---------|----------|--------------------------------------------------------|
//! | AEON001 | error    | ownership constraints contain a non-reflexive cycle    |
//! | AEON002 | error    | a declared call edge is not covered by ownership       |
//! | AEON003 | error    | a `ro` method transitively reaches a mutating method   |
//! | AEON004 | error    | a call targets an undeclared class or method           |
//! | AEON005 | error    | method-call recursion can re-enter an exclusive        |
//! |         |          | activation (potential deadlock)                        |
//! | AEON006 | warning  | a method of an unreachable class can never execute     |
//! | AEON007 | warning  | a class is disconnected from the rest of the graph     |
//!
//! # Deploy-time enforcement
//!
//! Every deployment entry point (`RuntimeBuilder`, `ClusterBuilder`,
//! `SimDeployment`, and `aeon::deploy`) runs [`enforce`] over its class
//! graph, governed by an [`AnalysisMode`] knob (`off | warn | enforce`,
//! default `enforce`): error diagnostics become
//! [`AeonError::AnalysisRejected`] and the deployment is refused.  In debug
//! builds the runtime additionally records actual invoke edges and flags
//! calls not covered by the declared summaries — the dynamic sanitizer that
//! validates the static model.
//!
//! The same pipeline backs the `aeon-lint` binary, which lints the built-in
//! workspace graphs and JSON-encoded [`ClassGraph`] documents (see
//! [`json`]).
//!
//! # Examples
//!
//! ```
//! use aeon_analyzer::{analyze, DiagCode};
//! use aeon_ownership::{ClassGraph, MethodRef};
//!
//! let mut classes = ClassGraph::new();
//! classes.add_constraint("Branch", "Account");
//! classes.declare_method("Account", "add", false);
//! classes.declare_calls("Branch", "transfer", [MethodRef::new("Account", "add")]);
//! assert!(analyze(&classes).is_clean());
//!
//! // An Account has no business calling back up into its Branch:
//! classes.declare_calls("Account", "evil", [MethodRef::new("Branch", "transfer")]);
//! classes.declare_method("Branch", "transfer", false);
//! let report = analyze(&classes);
//! assert_eq!(report.codes(), vec![DiagCode::UncoveredCall]);
//! ```

pub mod json;
pub mod passes;
pub mod report;

pub use passes::{
    analyze, certified_readonly, transitively_readonly, CallCoverage, ConstraintCycles,
    DeadlockFreedom, Pass, Pipeline, Reachability, ReadonlySoundness,
};
pub use report::{AnalysisReport, DiagCode, Diagnostic, Severity};

use aeon_ownership::ClassGraph;
use aeon_types::{AeonError, Result};
use std::fmt;
use std::str::FromStr;

/// How deployment entry points react to analysis findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Skip the pipeline entirely.
    Off,
    /// Run the pipeline, print every diagnostic to stderr, deploy anyway.
    Warn,
    /// Run the pipeline; error diagnostics refuse the deployment with
    /// [`AeonError::AnalysisRejected`] (warnings still print).
    #[default]
    Enforce,
}

impl FromStr for AnalysisMode {
    type Err = AeonError;

    fn from_str(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Ok(AnalysisMode::Off),
            "warn" => Ok(AnalysisMode::Warn),
            "enforce" => Ok(AnalysisMode::Enforce),
            other => Err(AeonError::Config(format!(
                "unknown analysis mode {other:?} (expected off|warn|enforce)"
            ))),
        }
    }
}

impl fmt::Display for AnalysisMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisMode::Off => write!(f, "off"),
            AnalysisMode::Warn => write!(f, "warn"),
            AnalysisMode::Enforce => write!(f, "enforce"),
        }
    }
}

/// Runs the standard pipeline over `classes` under `mode`: the single
/// helper every deployment entry point calls.
///
/// Warnings always print to stderr (except in [`AnalysisMode::Off`]); error
/// diagnostics print in [`AnalysisMode::Warn`] and become
/// [`AeonError::AnalysisRejected`] in [`AnalysisMode::Enforce`].
///
/// # Errors
///
/// Returns [`AeonError::AnalysisRejected`] in `Enforce` mode when any
/// error-severity diagnostic is reported.
pub fn enforce(classes: &ClassGraph, mode: AnalysisMode) -> Result<()> {
    if mode == AnalysisMode::Off {
        return Ok(());
    }
    let report = analyze(classes);
    for warning in report.warnings() {
        eprintln!("aeon-analyzer: {}", warning.render());
    }
    match report.to_error() {
        None => Ok(()),
        Some(error) => match mode {
            AnalysisMode::Off => unreachable!("handled above"),
            AnalysisMode::Warn => {
                for diagnostic in report.errors() {
                    eprintln!("aeon-analyzer: {}", diagnostic.render());
                }
                Ok(())
            }
            AnalysisMode::Enforce => Err(error),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_ownership::MethodRef;

    fn broken() -> ClassGraph {
        let mut g = ClassGraph::new();
        g.add_constraint("Branch", "Account");
        g.declare_method("Branch", "transfer", false);
        g.declare_calls("Account", "evil", [MethodRef::new("Branch", "transfer")]);
        g
    }

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!("off".parse::<AnalysisMode>().unwrap(), AnalysisMode::Off);
        assert_eq!("Warn".parse::<AnalysisMode>().unwrap(), AnalysisMode::Warn);
        assert_eq!(
            " enforce ".parse::<AnalysisMode>().unwrap(),
            AnalysisMode::Enforce
        );
        assert!(matches!(
            "strict".parse::<AnalysisMode>(),
            Err(AeonError::Config(_))
        ));
        assert_eq!(AnalysisMode::Enforce.to_string(), "enforce");
        assert_eq!(AnalysisMode::default(), AnalysisMode::Enforce);
    }

    #[test]
    fn enforce_rejects_warn_passes_off_skips() {
        let g = broken();
        let err = enforce(&g, AnalysisMode::Enforce).unwrap_err();
        match err {
            AeonError::AnalysisRejected { errors, report } => {
                assert!(errors >= 1);
                assert!(report.contains("AEON002"));
            }
            other => panic!("unexpected {other:?}"),
        }
        enforce(&g, AnalysisMode::Warn).unwrap();
        enforce(&g, AnalysisMode::Off).unwrap();
    }
}
