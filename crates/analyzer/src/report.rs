//! Diagnostics: stable codes, severities, and the [`AnalysisReport`] the
//! pass pipeline accumulates into.

use aeon_types::AeonError;
use std::fmt;

/// Severity of one diagnostic.  Only [`Severity::Error`] diagnostics make
/// `enforce`-mode deployment fail (and `aeon-lint` exit nonzero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not unsound; reported, never fatal.
    Warning,
    /// The static model is unsound; deployment is refused in `enforce` mode.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes of the analysis pipeline.
///
/// The numeric codes are part of the tool contract (`aeon-lint` output, CI
/// greps, test assertions) and must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagCode {
    /// AEON001: the class-level ownership constraints contain a
    /// non-reflexive cycle.
    OwnershipCycle,
    /// AEON002: a declared call edge `A::m -> B::n` is not covered by any
    /// chain of ownership constraints `B ≤ ... ≤ A` (it would surface at
    /// runtime as an `OwnershipViolation`).
    UncoveredCall,
    /// AEON003: a `ro` method transitively reaches a mutating method
    /// through the declared call graph.
    ReadonlyUnsound,
    /// AEON004: a declared call targets an undeclared class, or a method
    /// the target class's declared surface does not contain.
    UndeclaredTarget,
    /// AEON005: non-reflexive (mutual) recursion in the method call graph —
    /// under dominator sequencing the cycle can re-enter an exclusive
    /// activation and deadlock.
    PotentialDeadlock,
    /// AEON006: a method of an unreachable class (see AEON007) can never
    /// execute.
    DeadMethod,
    /// AEON007: a class no ownership constraint or call edge connects to
    /// the rest of a multi-class graph — usually a typo'd class name.
    UnreachableClass,
}

impl DiagCode {
    /// The stable `AEONnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::OwnershipCycle => "AEON001",
            DiagCode::UncoveredCall => "AEON002",
            DiagCode::ReadonlyUnsound => "AEON003",
            DiagCode::UndeclaredTarget => "AEON004",
            DiagCode::PotentialDeadlock => "AEON005",
            DiagCode::DeadMethod => "AEON006",
            DiagCode::UnreachableClass => "AEON007",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::OwnershipCycle
            | DiagCode::UncoveredCall
            | DiagCode::ReadonlyUnsound
            | DiagCode::UndeclaredTarget
            | DiagCode::PotentialDeadlock => Severity::Error,
            DiagCode::DeadMethod | DiagCode::UnreachableClass => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of the analysis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (severity derives from it).
    pub code: DiagCode,
    /// Primary class the finding is about, when there is one.
    pub class: Option<String>,
    /// Primary method the finding is about, when there is one.
    pub method: Option<String>,
    /// Human-readable explanation (self-contained; already names the
    /// classes/methods involved).
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored at `class::method`.
    pub fn new(
        code: DiagCode,
        class: impl Into<Option<String>>,
        method: impl Into<Option<String>>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            class: class.into(),
            method: method.into(),
            message: message.into(),
        }
    }

    /// The diagnostic's severity (a function of its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic on one line: `error[AEON002] message`.
    pub fn render(&self) -> String {
        format!("{}[{}] {}", self.severity(), self.code, self.message)
    }
}

/// The accumulated output of an analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// All diagnostics, in pass order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// Whether any error-severity diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is empty (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The distinct codes present, in code order (test/CI helper).
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut codes: Vec<DiagCode> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    /// Renders the report as text, one diagnostic per line.
    pub fn render_text(&self) -> String {
        self.diagnostics
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Renders the report as a JSON array of diagnostic objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"class\":{},\"method\":{},\"message\":{}}}",
                crate::json::json_string(d.code.code()),
                crate::json::json_string(&d.severity().to_string()),
                d.class
                    .as_deref()
                    .map_or_else(|| "null".to_string(), crate::json::json_string),
                d.method
                    .as_deref()
                    .map_or_else(|| "null".to_string(), crate::json::json_string),
                crate::json::json_string(&d.message),
            ));
        }
        out.push(']');
        out
    }

    /// Converts the report into the error `enforce`-mode deployment fails
    /// with; `None` when there are no error-severity diagnostics.
    pub fn to_error(&self) -> Option<AeonError> {
        if !self.has_errors() {
            return None;
        }
        Some(AeonError::AnalysisRejected {
            errors: self.errors().count(),
            report: self
                .errors()
                .map(Diagnostic::render)
                .collect::<Vec<_>>()
                .join("\n"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: DiagCode) -> Diagnostic {
        Diagnostic::new(code, Some("A".to_string()), None, "boom")
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(DiagCode::OwnershipCycle.code(), "AEON001");
        assert_eq!(DiagCode::UncoveredCall.code(), "AEON002");
        assert_eq!(DiagCode::ReadonlyUnsound.code(), "AEON003");
        assert_eq!(DiagCode::UndeclaredTarget.code(), "AEON004");
        assert_eq!(DiagCode::PotentialDeadlock.code(), "AEON005");
        assert_eq!(DiagCode::DeadMethod.code(), "AEON006");
        assert_eq!(DiagCode::UnreachableClass.code(), "AEON007");
    }

    #[test]
    fn severity_split_matches_the_contract() {
        assert_eq!(DiagCode::PotentialDeadlock.severity(), Severity::Error);
        assert_eq!(DiagCode::DeadMethod.severity(), Severity::Warning);
        assert_eq!(DiagCode::UnreachableClass.severity(), Severity::Warning);
    }

    #[test]
    fn report_partitions_and_renders() {
        let mut report = AnalysisReport::new();
        assert!(report.is_clean());
        assert!(report.to_error().is_none());
        report.push(diag(DiagCode::UnreachableClass));
        assert!(!report.has_errors());
        report.push(diag(DiagCode::UncoveredCall));
        report.push(diag(DiagCode::UncoveredCall));
        assert!(report.has_errors());
        assert_eq!(report.errors().count(), 2);
        assert_eq!(report.warnings().count(), 1);
        assert_eq!(
            report.codes(),
            vec![DiagCode::UncoveredCall, DiagCode::UnreachableClass]
        );
        let text = report.render_text();
        assert!(text.contains("error[AEON002]"));
        assert!(text.contains("warning[AEON007]"));
        match report.to_error().unwrap() {
            AeonError::AnalysisRejected { errors, report } => {
                assert_eq!(errors, 2);
                assert!(report.contains("AEON002"));
                assert!(!report.contains("AEON007"), "warnings stay out: {report}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let json = report.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"code\":\"AEON002\""));
        assert!(json.contains("\"severity\":\"warning\""));
    }
}
