//! The analysis passes and the pipeline that runs them.
//!
//! Every pass reads the same input — a fully declared
//! [`ClassGraph`] (constraints from `add_constraint`, method surfaces and
//! call summaries from the runtime's `context_class!` tables) — and appends
//! [`Diagnostic`]s to a shared [`AnalysisReport`].  Passes never mutate the
//! graph, so their order only affects report order, not findings.

use crate::report::{AnalysisReport, DiagCode, Diagnostic};
use aeon_ownership::{ClassGraph, MethodRef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One analysis pass over a [`ClassGraph`].
pub trait Pass {
    /// Short machine-usable pass name.
    fn name(&self) -> &'static str;

    /// Appends this pass's findings to `report`.
    fn run(&self, classes: &ClassGraph, report: &mut AnalysisReport);
}

/// An ordered list of passes.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full standard pipeline, in diagnostic-code order.
    pub fn standard() -> Self {
        Self::new()
            .with(ConstraintCycles)
            .with(CallCoverage)
            .with(ReadonlySoundness)
            .with(DeadlockFreedom)
            .with(Reachability)
    }

    /// Appends a pass.
    #[must_use]
    pub fn with(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass and returns the accumulated report.
    pub fn run(&self, classes: &ClassGraph) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        for pass in &self.passes {
            pass.run(classes, &mut report);
        }
        report
    }
}

/// Runs the standard pipeline over `classes`.
pub fn analyze(classes: &ClassGraph) -> AnalysisReport {
    Pipeline::standard().run(classes)
}

/// AEON001: the ownership constraints must be acyclic (reflexive edges
/// excepted).  Re-renders [`ClassGraph::find_constraint_cycle`] as a
/// diagnostic so tooling sees it alongside the other passes.
pub struct ConstraintCycles;

impl Pass for ConstraintCycles {
    fn name(&self) -> &'static str {
        "constraint-cycles"
    }

    fn run(&self, classes: &ClassGraph, report: &mut AnalysisReport) {
        if let Some(cycle) = classes.find_constraint_cycle() {
            report.push(Diagnostic::new(
                DiagCode::OwnershipCycle,
                cycle.first().cloned(),
                None,
                format!(
                    "ownership constraints are cyclic: {} (only the reflexive \
                     case is allowed)",
                    cycle.join(" -> ")
                ),
            ));
        }
    }
}

/// Transitive constraint reachability: every class reachable from `class`
/// by following `owns` edges (excluding `class` itself unless a cycle or a
/// reflexive constraint leads back to it).
fn reachable_from(classes: &ClassGraph, class: &str) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut queue: VecDeque<&str> = classes.owned_by(class).collect();
    while let Some(next) = queue.pop_front() {
        if seen.insert(next.to_string()) {
            queue.extend(classes.owned_by(next));
        }
    }
    seen
}

/// Whether a declared call edge from `class` to `call` is resolvable enough
/// to analyse: the target class is declared and, when the target class has a
/// declared method surface, the method exists on it.
fn resolvable(classes: &ClassGraph, call: &MethodRef) -> bool {
    classes.contains(&call.class)
        && (classes.methods_of(&call.class).is_empty()
            || classes.readonly_method(&call.class, &call.method).is_some())
}

/// AEON002 + AEON004: every declared call edge `A::m -> B::n` must target a
/// declared class/method (AEON004) and be covered by a chain of ownership
/// constraints making `B` transitively owned by `A` (AEON002) — otherwise
/// the call is guaranteed to surface at runtime as an `OwnershipViolation`.
pub struct CallCoverage;

impl Pass for CallCoverage {
    fn name(&self) -> &'static str {
        "call-coverage"
    }

    fn run(&self, classes: &ClassGraph, report: &mut AnalysisReport) {
        let mut reach_cache: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        let class_names: Vec<String> = classes.classes().map(str::to_string).collect();
        for class in &class_names {
            for method in classes.methods_of(class) {
                let Some(calls) = &method.calls else {
                    continue;
                };
                for call in calls {
                    if !classes.contains(&call.class) {
                        report.push(Diagnostic::new(
                            DiagCode::UndeclaredTarget,
                            Some(class.clone()),
                            Some(method.name.clone()),
                            format!(
                                "{class}::{} calls {call}, but class {} is not declared",
                                method.name, call.class
                            ),
                        ));
                        continue;
                    }
                    if !classes.methods_of(&call.class).is_empty()
                        && classes.readonly_method(&call.class, &call.method).is_none()
                    {
                        report.push(Diagnostic::new(
                            DiagCode::UndeclaredTarget,
                            Some(class.clone()),
                            Some(method.name.clone()),
                            format!(
                                "{class}::{} calls {call}, but class {} declares no \
                                 method {}",
                                method.name, call.class, call.method
                            ),
                        ));
                        // The method is missing but the class is known; the
                        // ownership-coverage check below still applies.
                    }
                    // Same-class calls go to sibling instances; the
                    // instance-level DAG (plus the reflexive-constraint
                    // runtime checks) covers them, and AEON005 audits the
                    // recursion.
                    if call.class == *class {
                        continue;
                    }
                    let reachable = reach_cache
                        .entry(class.as_str())
                        .or_insert_with(|| reachable_from(classes, class));
                    if !reachable.contains(&call.class) {
                        report.push(Diagnostic::new(
                            DiagCode::UncoveredCall,
                            Some(class.clone()),
                            Some(method.name.clone()),
                            format!(
                                "{class}::{} calls {call}, but no ownership constraint \
                                 chain makes {} owned by {class} (declare \
                                 add_constraint(\"{class}\", \"{}\") or an \
                                 intermediate owner)",
                                method.name, call.class, call.class
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// AEON003: a `ro` method must not (transitively) reach a mutating method
/// through the declared call graph — under a read-only activation the
/// mutating callee would fail at runtime with a `ReadOnlyViolation`.
///
/// Computed as a fixpoint ("may reach a mutating method") over the call
/// graph; the diagnostic names the offending path.
pub struct ReadonlySoundness;

impl Pass for ReadonlySoundness {
    fn name(&self) -> &'static str {
        "readonly-soundness"
    }

    fn run(&self, classes: &ClassGraph, report: &mut AnalysisReport) {
        let class_names: Vec<String> = classes.classes().map(str::to_string).collect();
        for class in &class_names {
            for method in classes.methods_of(class) {
                if !method.readonly {
                    continue;
                }
                // Breadth-first search from the ro method over resolvable
                // call edges, keeping predecessor links for the path.
                let start = MethodRef::new(class.clone(), method.name.clone());
                let mut pred: BTreeMap<MethodRef, MethodRef> = BTreeMap::new();
                let mut queue: VecDeque<MethodRef> = VecDeque::from([start.clone()]);
                let mut seen: BTreeSet<MethodRef> = BTreeSet::from([start.clone()]);
                let mut offender: Option<MethodRef> = None;
                'search: while let Some(node) = queue.pop_front() {
                    let Some(calls) = classes.calls_of(&node.class, &node.method) else {
                        continue;
                    };
                    for call in calls {
                        if !resolvable(classes, call) || !seen.insert(call.clone()) {
                            continue;
                        }
                        pred.insert(call.clone(), node.clone());
                        if classes.readonly_method(&call.class, &call.method) == Some(false) {
                            offender = Some(call.clone());
                            break 'search;
                        }
                        queue.push_back(call.clone());
                    }
                }
                if let Some(end) = offender {
                    let mut path = vec![end.clone()];
                    let mut cursor = end.clone();
                    while let Some(prev) = pred.get(&cursor) {
                        path.push(prev.clone());
                        cursor = prev.clone();
                    }
                    path.reverse();
                    let rendered: Vec<String> = path.iter().map(MethodRef::to_string).collect();
                    report.push(Diagnostic::new(
                        DiagCode::ReadonlyUnsound,
                        Some(class.clone()),
                        Some(method.name.clone()),
                        format!(
                            "ro method {class}::{} transitively calls mutating method \
                             {end} ({})",
                            method.name,
                            rendered.join(" -> ")
                        ),
                    ));
                }
            }
        }
    }
}

/// AEON005: recursion in the method call graph.
///
/// Under dominator sequencing an event holds its activations exclusively for
/// its whole duration, so a call cycle re-enters an activation the event
/// already holds and deadlocks (the runtime's re-entrance guard turns this
/// into an error, but only once it happens).  The one sanctioned shape is
/// the paper's inductive-structure exception: recursion that stays inside a
/// single class which *explicitly* declared the reflexive constraint
/// (`Node` owns `Node`) descends a chain of distinct instances.
pub struct DeadlockFreedom;

impl Pass for DeadlockFreedom {
    fn name(&self) -> &'static str {
        "deadlock-freedom"
    }

    fn run(&self, classes: &ClassGraph, report: &mut AnalysisReport) {
        // Build the method call graph, dropping unresolvable edges (AEON004
        // reports those) and sanctioned intra-class edges of classes with a
        // declared reflexive constraint.  Any cycle that remains is a
        // potential deadlock.
        let mut nodes: Vec<MethodRef> = Vec::new();
        let mut edges: BTreeMap<MethodRef, Vec<MethodRef>> = BTreeMap::new();
        let class_names: Vec<String> = classes.classes().map(str::to_string).collect();
        for class in &class_names {
            let reflexive = classes.declares(class, class);
            for method in classes.methods_of(class) {
                let node = MethodRef::new(class.clone(), method.name.clone());
                nodes.push(node.clone());
                let Some(calls) = &method.calls else {
                    continue;
                };
                let outgoing: Vec<MethodRef> = calls
                    .iter()
                    .filter(|call| resolvable(classes, call))
                    .filter(|call| !(reflexive && call.class == *class))
                    .cloned()
                    .collect();
                edges.insert(node, outgoing);
            }
        }

        // Iterative coloured DFS; every grey-hit is one cycle.  Cycles are
        // deduplicated by their member set so overlapping traversals don't
        // repeat a finding.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<&MethodRef, Colour> =
            nodes.iter().map(|n| (n, Colour::White)).collect();
        let mut reported: BTreeSet<Vec<MethodRef>> = BTreeSet::new();
        for root in &nodes {
            if colour[root] != Colour::White {
                continue;
            }
            let mut path: Vec<&MethodRef> = vec![root];
            let mut frames: Vec<(&MethodRef, usize)> = vec![(root, 0)];
            colour.insert(root, Colour::Grey);
            while !frames.is_empty() {
                // The node reference is copied out (it borrows `nodes`, not
                // the frame), so the stack can be pushed/popped below.
                let (node, next) = {
                    let frame = frames.last_mut().expect("loop guard");
                    let snapshot = (frame.0, frame.1);
                    frame.1 += 1;
                    snapshot
                };
                let outgoing = edges.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if next >= outgoing.len() {
                    colour.insert(node, Colour::Black);
                    path.pop();
                    frames.pop();
                    continue;
                }
                let target = &outgoing[next];
                // Edges into classes that never declared a method surface
                // have no node of their own; they cannot continue a cycle.
                match colour.get(target).copied().unwrap_or(Colour::Black) {
                    Colour::Grey => {
                        let start = path.iter().position(|n| *n == target).unwrap_or(0);
                        let mut cycle: Vec<MethodRef> =
                            path[start..].iter().map(|n| (*n).clone()).collect();
                        let mut key = cycle.clone();
                        key.sort();
                        if reported.insert(key) {
                            cycle.push(target.clone());
                            let rendered: Vec<String> =
                                cycle.iter().map(MethodRef::to_string).collect();
                            let single_class = cycle.iter().all(|n| n.class == cycle[0].class);
                            let hint = if single_class {
                                format!(
                                    "; declare the reflexive constraint \
                                     add_constraint(\"{0}\", \"{0}\") if instances of \
                                     {0} intentionally recurse over owned instances",
                                    cycle[0].class
                                )
                            } else {
                                String::new()
                            };
                            report.push(Diagnostic::new(
                                DiagCode::PotentialDeadlock,
                                Some(target.class.clone()),
                                Some(target.method.clone()),
                                format!(
                                    "method call cycle {} can re-enter an exclusive \
                                     activation under dominator sequencing{hint}",
                                    rendered.join(" -> ")
                                ),
                            ));
                        }
                    }
                    Colour::White => {
                        colour.insert(target, Colour::Grey);
                        path.push(target);
                        frames.push((target, 0));
                    }
                    Colour::Black => {}
                }
            }
        }
    }
}

/// AEON006 + AEON007: in a multi-class graph, a class no non-reflexive
/// ownership constraint and no call edge connects to the rest of the graph
/// is unreachable (AEON007) — usually a typo'd class name in a constraint or
/// summary — and its declared methods can never execute (AEON006).
pub struct Reachability;

impl Pass for Reachability {
    fn name(&self) -> &'static str {
        "reachability"
    }

    fn run(&self, classes: &ClassGraph, report: &mut AnalysisReport) {
        if classes.len() < 2 {
            // A single class is trivially the root of its own world.
            return;
        }
        let mut touched: BTreeSet<String> = BTreeSet::new();
        let class_names: Vec<String> = classes.classes().map(str::to_string).collect();
        for class in &class_names {
            for owned in classes.owned_by(class) {
                if owned != class.as_str() {
                    touched.insert(class.clone());
                    touched.insert(owned.to_string());
                }
            }
            for method in classes.methods_of(class) {
                for call in method.calls.iter().flatten() {
                    touched.insert(class.clone());
                    if classes.contains(&call.class) {
                        touched.insert(call.class.clone());
                    }
                }
            }
        }
        for class in &class_names {
            if touched.contains(class.as_str()) {
                continue;
            }
            report.push(Diagnostic::new(
                DiagCode::UnreachableClass,
                Some(class.clone()),
                None,
                format!(
                    "class {class} is unreachable: no ownership constraint or call \
                     edge connects it to the rest of the graph (typo?)"
                ),
            ));
            for method in classes.methods_of(class) {
                report.push(Diagnostic::new(
                    DiagCode::DeadMethod,
                    Some(class.clone()),
                    Some(method.name.clone()),
                    format!(
                        "method {class}::{} can never execute: its class is \
                         unreachable",
                        method.name
                    ),
                ));
            }
        }
    }
}

/// The set of declared `ro` methods the AEON003 fixpoint proves
/// **transitively** read-only: every method reachable from them over
/// resolvable declared call edges is itself declared `ro`.
///
/// This is the positive complement of [`ReadonlySoundness`]: that pass
/// reports `ro` methods that *may* reach a mutating method; this query
/// returns the `ro` methods for which the same breadth-first fixpoint finds
/// no such path **and** every edge along the way carries a call summary
/// (a summary-less callee could call anything, so nothing past it can be
/// proven).  Methods whose own summary is missing are excluded — with no
/// summary the method body is unconstrained.
pub fn transitively_readonly(classes: &ClassGraph) -> BTreeSet<MethodRef> {
    let mut certified = BTreeSet::new();
    let class_names: Vec<String> = classes.classes().map(str::to_string).collect();
    for class in &class_names {
        for method in classes.methods_of(class) {
            if !method.readonly || method.calls.is_none() {
                continue;
            }
            let start = MethodRef::new(class.clone(), method.name.clone());
            let mut queue: VecDeque<MethodRef> = VecDeque::from([start.clone()]);
            let mut seen: BTreeSet<MethodRef> = BTreeSet::from([start.clone()]);
            let mut proven = true;
            'search: while let Some(node) = queue.pop_front() {
                let Some(calls) = classes.calls_of(&node.class, &node.method) else {
                    // A reachable callee without a summary defeats the
                    // proof (its body is unconstrained).  The start method
                    // itself was already required to carry one.
                    proven = false;
                    break;
                };
                for call in calls {
                    if !resolvable(classes, call) {
                        proven = false;
                        break 'search;
                    }
                    if !seen.insert(call.clone()) {
                        continue;
                    }
                    if classes.readonly_method(&call.class, &call.method) != Some(true) {
                        // Mutating, or a method on a class with no declared
                        // surface (unknowable).
                        proven = false;
                        break 'search;
                    }
                    queue.push_back(call.clone());
                }
            }
            if proven {
                certified.insert(start);
            }
        }
    }
    certified
}

/// The subset of [`transitively_readonly`] methods eligible for the
/// runtime's **read-only fast path**: `ro` methods whose declared call
/// summary is empty (`calls []`), i.e. their lock footprint is exactly the
/// target context.
///
/// The fast path skips dominator sequencing, so two concurrently executing
/// fast-path events share no common sequencer with in-flight exclusive
/// events.  That is only deadlock-free if a fast-path event never *waits*
/// for a second context while holding its first: a reader holding `T`
/// (shared) and waiting for `C` opposite a writer holding `C` (exclusive)
/// and waiting for `T` is a cycle no dominator breaks, because neither
/// event was sequenced.  Restricting the fast path to leaf methods (empty
/// summary ⇒ single-lock footprint, even for same-class calls, which
/// target *other* instances) makes the hold-and-wait condition impossible,
/// so skipping the sequencer is safe.  Transitively-ro methods *with*
/// calls still take the slow path: dominator sequencing under a shared
/// activation.
pub fn certified_readonly(classes: &ClassGraph) -> BTreeSet<MethodRef> {
    let mut certified = BTreeSet::new();
    let class_names: Vec<String> = classes.classes().map(str::to_string).collect();
    for class in &class_names {
        for method in classes.methods_of(class) {
            if method.readonly && method.calls.as_deref().is_some_and(<[MethodRef]>::is_empty) {
                certified.insert(MethodRef::new(class.clone(), method.name.clone()));
            }
        }
    }
    certified
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covered_graph() -> ClassGraph {
        let mut g = ClassGraph::new();
        g.add_constraint("Bank", "Branch");
        g.add_constraint("Branch", "Account");
        g.declare_method("Account", "read", true);
        g.declare_method("Account", "add", false);
        g.declare_calls("Branch", "transfer", [MethodRef::new("Account", "add")]);
        g.declare_calls(
            "Bank",
            "audit",
            [MethodRef::new("Account", "read")], // transitive: Bank -> Branch -> Account
        );
        g.declare_method("Bank", "audit", true);
        g.declare_method("Account", "read", true);
        g
    }

    #[test]
    fn clean_graph_produces_no_diagnostics() {
        let report = analyze(&covered_graph());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn constraint_cycle_is_aeon001() {
        let mut g = ClassGraph::new();
        g.add_constraint("A", "B");
        g.add_constraint("B", "A");
        let report = analyze(&g);
        assert!(report.codes().contains(&DiagCode::OwnershipCycle));
    }

    #[test]
    fn uncovered_call_is_aeon002() {
        let mut g = covered_graph();
        // Account calling up into Branch is never ownership-covered.
        g.declare_calls("Account", "evil", [MethodRef::new("Branch", "transfer")]);
        g.declare_method("Branch", "transfer", false);
        let report = analyze(&g);
        assert_eq!(report.codes(), vec![DiagCode::UncoveredCall]);
        let diag = report.errors().next().unwrap();
        assert!(diag.message.contains("Account::evil"), "{}", diag.message);
        assert!(diag.message.contains("add_constraint"), "{}", diag.message);
    }

    #[test]
    fn transitive_ownership_covers_deep_calls() {
        // Bank::audit -> Account::read is covered through Bank -> Branch ->
        // Account; asserted by the clean-graph test, and the negative:
        let mut g = ClassGraph::new();
        g.add_constraint("Bank", "Branch");
        g.add_class("Account");
        g.add_constraint("Account", "Branch"); // keeps Account reachable
        g.declare_method("Account", "read", true);
        g.declare_calls("Bank", "audit", [MethodRef::new("Account", "read")]);
        let report = analyze(&g);
        assert!(report.codes().contains(&DiagCode::UncoveredCall));
    }

    #[test]
    fn ro_reaching_mutating_is_aeon003() {
        let mut g = covered_graph();
        // ro Bank::snoop -> ro Branch::peek -> mutating Account::add.
        g.declare_method("Branch", "peek", true);
        g.declare_calls("Branch", "peek", [MethodRef::new("Account", "add")]);
        g.declare_method("Branch", "peek", true);
        g.declare_method("Bank", "snoop", true);
        g.declare_calls("Bank", "snoop", [MethodRef::new("Branch", "peek")]);
        g.declare_method("Bank", "snoop", true);
        let report = analyze(&g);
        assert!(report.codes().contains(&DiagCode::ReadonlyUnsound));
        let diag = report
            .errors()
            .find(|d| d.code == DiagCode::ReadonlyUnsound)
            .unwrap();
        assert!(
            diag.message
                .contains("Bank::snoop -> Branch::peek -> Account::add")
                || diag.message.contains("Branch::peek -> Account::add"),
            "path is rendered: {}",
            diag.message
        );
    }

    #[test]
    fn undeclared_class_and_method_are_aeon004() {
        let mut g = covered_graph();
        g.declare_calls("Branch", "typo", [MethodRef::new("Acount", "add")]);
        g.declare_calls("Bank", "typo2", [MethodRef::new("Account", "sub")]);
        let report = analyze(&g);
        let aeon004: Vec<_> = report
            .errors()
            .filter(|d| d.code == DiagCode::UndeclaredTarget)
            .collect();
        assert_eq!(aeon004.len(), 2, "{}", report.render_text());
        assert!(aeon004.iter().any(|d| d.message.contains("Acount")));
        assert!(aeon004.iter().any(|d| d.message.contains("sub")));
    }

    #[test]
    fn calls_into_classes_without_method_surface_are_unchecked() {
        let mut g = ClassGraph::new();
        g.add_constraint("WareHouse", "Stock");
        // Stock declares constraints but no method table: the call is
        // ownership-checked, not surface-checked.
        g.declare_calls(
            "WareHouse",
            "reserve_stock",
            [MethodRef::new("Stock", "reserve")],
        );
        let report = analyze(&g);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn mutual_recursion_is_aeon005() {
        let mut g = covered_graph();
        g.declare_calls("Branch", "ping", [MethodRef::new("Account", "pong")]);
        g.declare_calls("Account", "pong", [MethodRef::new("Branch", "ping")]);
        let report = analyze(&g);
        assert!(report.codes().contains(&DiagCode::PotentialDeadlock));
    }

    #[test]
    fn self_recursion_without_reflexive_constraint_is_aeon005() {
        let mut g = ClassGraph::new();
        g.add_constraint("List", "Node");
        g.declare_calls("Node", "next", [MethodRef::new("Node", "next")]);
        let report = analyze(&g);
        assert!(
            report.codes().contains(&DiagCode::PotentialDeadlock),
            "{}",
            report.render_text()
        );
        let diag = report
            .errors()
            .find(|d| d.code == DiagCode::PotentialDeadlock)
            .unwrap();
        assert!(diag.message.contains("reflexive"), "{}", diag.message);
    }

    #[test]
    fn reflexive_constraint_sanctions_inductive_recursion() {
        let mut g = ClassGraph::new();
        g.add_constraint("List", "Node");
        g.add_constraint("Node", "Node");
        g.declare_calls("Node", "next", [MethodRef::new("Node", "next")]);
        g.declare_calls("List", "find", [MethodRef::new("Node", "next")]);
        let report = analyze(&g);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn unreachable_class_and_dead_methods_are_warnings() {
        let mut g = covered_graph();
        g.add_class("Orphan");
        g.declare_method("Orphan", "lost", false);
        let report = analyze(&g);
        assert!(!report.has_errors(), "{}", report.render_text());
        assert_eq!(
            report.codes(),
            vec![DiagCode::DeadMethod, DiagCode::UnreachableClass]
        );
    }

    #[test]
    fn single_class_graph_is_not_unreachable() {
        let mut g = ClassGraph::new();
        g.add_class("Kv");
        g.declare_method("Kv", "get", true);
        let report = analyze(&g);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn transitively_readonly_follows_the_aeon003_fixpoint() {
        let mut g = ClassGraph::new();
        g.add_constraint("Bank", "Branch");
        g.add_constraint("Branch", "Account");
        g.declare_method("Account", "read", true);
        g.declare_calls("Account", "read", []);
        g.declare_method("Account", "add", false);
        g.declare_calls("Account", "add", []);
        // Transitively ro through a chain of ro summaries.
        g.declare_method("Branch", "total", true);
        g.declare_calls("Branch", "total", [MethodRef::new("Account", "read")]);
        g.declare_method("Bank", "audit", true);
        g.declare_calls("Bank", "audit", [MethodRef::new("Branch", "total")]);
        // ro mark but reaches a mutating method: not certified.
        g.declare_method("Branch", "sneaky", true);
        g.declare_calls("Branch", "sneaky", [MethodRef::new("Account", "add")]);
        // ro mark but no summary: unconstrained body, not certified.
        g.declare_method("Branch", "opaque", true);
        let ro = transitively_readonly(&g);
        assert!(ro.contains(&MethodRef::new("Account", "read")));
        assert!(ro.contains(&MethodRef::new("Branch", "total")));
        assert!(ro.contains(&MethodRef::new("Bank", "audit")));
        assert!(!ro.contains(&MethodRef::new("Branch", "sneaky")));
        assert!(!ro.contains(&MethodRef::new("Branch", "opaque")));
        assert!(!ro.contains(&MethodRef::new("Account", "add")));
    }

    #[test]
    fn transitively_readonly_rejects_summary_gaps() {
        let mut g = ClassGraph::new();
        g.add_constraint("Branch", "Account");
        // Callee is ro but carries no summary of its own: the chain cannot
        // be proven past it.
        g.declare_method("Account", "read", true);
        g.declare_method("Branch", "total", true);
        g.declare_calls("Branch", "total", [MethodRef::new("Account", "read")]);
        let ro = transitively_readonly(&g);
        assert!(!ro.contains(&MethodRef::new("Branch", "total")));
        assert!(!ro.contains(&MethodRef::new("Account", "read")));
    }

    #[test]
    fn certified_readonly_is_the_leaf_subset() {
        let mut g = ClassGraph::new();
        g.add_constraint("Branch", "Account");
        g.declare_method("Account", "read", true);
        g.declare_calls("Account", "read", []);
        g.declare_method("Account", "add", false);
        g.declare_calls("Account", "add", []);
        g.declare_method("Branch", "total", true);
        g.declare_calls("Branch", "total", [MethodRef::new("Account", "read")]);
        let fast = certified_readonly(&g);
        // Leaf + ro: certified.
        assert!(fast.contains(&MethodRef::new("Account", "read")));
        // Leaf but mutating: not certified.
        assert!(!fast.contains(&MethodRef::new("Account", "add")));
        // ro (even transitively) but with a lock footprint beyond the
        // target: slow path.
        assert!(!fast.contains(&MethodRef::new("Branch", "total")));
        // Certified methods are always transitively readonly.
        let ro = transitively_readonly(&g);
        assert!(fast.iter().all(|m| ro.contains(m)));
    }

    #[test]
    fn pipeline_is_composable() {
        let pipeline = Pipeline::new().with(ConstraintCycles);
        assert_eq!(pipeline.pass_names(), vec!["constraint-cycles"]);
        let mut g = ClassGraph::new();
        g.declare_calls("A", "m", [MethodRef::new("Missing", "n")]);
        // Only the cycle pass runs: the AEON004 situation goes unreported.
        assert!(pipeline.run(&g).is_clean());
        assert_eq!(
            Pipeline::standard().pass_names(),
            vec![
                "constraint-cycles",
                "call-coverage",
                "readonly-soundness",
                "deadlock-freedom",
                "reachability"
            ]
        );
    }
}
