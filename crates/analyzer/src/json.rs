//! Self-contained JSON encoding of [`ClassGraph`]s for `aeon-lint`.
//!
//! The workspace's offline `serde` is a marker stub (snapshots use the
//! `aeon_types::codec` binary format), so the lint surface carries its own
//! minimal JSON reader/writer.  The document shape:
//!
//! ```json
//! {
//!   "classes": {
//!     "Branch": {
//!       "owns": ["Account"],
//!       "methods": [
//!         {"name": "transfer", "readonly": false, "calls": ["Account::add"]},
//!         {"name": "account_ids", "readonly": true}
//!       ]
//!     }
//!   }
//! }
//! ```
//!
//! A method without a `"calls"` key (or with `"calls": null`) never declared
//! a call summary; `"calls": []` declares "calls nothing".

use aeon_ownership::{ClassGraph, MethodRef};
use aeon_types::{AeonError, Result};

/// Escapes and quotes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialises a [`ClassGraph`] to the JSON document format `aeon-lint`
/// reads.  Classes and constraints are emitted in name order, methods in
/// declaration order, so the output is deterministic.
pub fn to_json(classes: &ClassGraph) -> String {
    let mut out = String::from("{\"classes\":{");
    for (ci, class) in classes.classes().enumerate() {
        if ci > 0 {
            out.push(',');
        }
        out.push_str(&json_string(class));
        out.push_str(":{\"owns\":[");
        for (oi, owned) in classes.owned_by(class).enumerate() {
            if oi > 0 {
                out.push(',');
            }
            out.push_str(&json_string(owned));
        }
        out.push_str("],\"methods\":[");
        for (mi, method) in classes.methods_of(class).iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"readonly\":{}",
                json_string(&method.name),
                method.readonly
            ));
            if let Some(calls) = &method.calls {
                out.push_str(",\"calls\":[");
                for (li, call) in calls.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(&call.to_string()));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// Parses the JSON document format back into a [`ClassGraph`].
///
/// # Errors
///
/// Returns [`AeonError::Codec`] on malformed JSON or a document of the
/// wrong shape.
pub fn from_json(text: &str) -> Result<ClassGraph> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(bad("trailing data after JSON document"));
    }
    graph_of(&value)
}

fn bad(msg: impl std::fmt::Display) -> AeonError {
    AeonError::Codec(format!("class graph JSON: {msg}"))
}

/// Minimal JSON value tree (numbers are not needed by the schema but are
/// parsed so almost-right documents fail with shape errors, not syntax
/// errors).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| bad("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(bad(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' | b'f' | b'n' => self.keyword(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(bad(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(bad(format!(
                        "expected ',' or '}}', got '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(bad(format!("expected ',' or ']', got '{}'", other as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| bad("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| bad("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| bad("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| bad("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| bad("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by class names;
                            // reject them rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| bad("\\u escape is not a scalar value"))?,
                            );
                        }
                        other => return Err(bad(format!("unknown escape '\\{}'", other as char))),
                    }
                }
                _ => {
                    // Re-synchronise on UTF-8 boundaries: push the raw byte
                    // run of this code point.
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| bad("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn keyword(&mut self) -> Result<Json> {
        for (word, value) in [
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("null", Json::Null),
        ] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(value);
            }
        }
        Err(bad(format!("unknown keyword at byte {}", self.pos)))
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii run");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| bad(format!("invalid number {text:?}")))
    }
}

fn graph_of(doc: &Json) -> Result<ClassGraph> {
    let classes = doc
        .get("classes")
        .ok_or_else(|| bad("missing top-level \"classes\" object"))?;
    let Json::Obj(entries) = classes else {
        return Err(bad("\"classes\" must be an object"));
    };
    let mut graph = ClassGraph::new();
    for (class, spec) in entries {
        graph.add_class(class.as_str());
        if let Some(owns) = spec.get("owns") {
            let Json::Arr(owned) = owns else {
                return Err(bad(format!("class {class}: \"owns\" must be an array")));
            };
            for item in owned {
                let Json::Str(owned_class) = item else {
                    return Err(bad(format!("class {class}: owned entries must be strings")));
                };
                graph.add_constraint(class.as_str(), owned_class.as_str());
            }
        }
        let Some(methods) = spec.get("methods") else {
            continue;
        };
        let Json::Arr(methods) = methods else {
            return Err(bad(format!("class {class}: \"methods\" must be an array")));
        };
        for method in methods {
            let Some(Json::Str(name)) = method.get("name") else {
                return Err(bad(format!(
                    "class {class}: every method needs a string \"name\""
                )));
            };
            let readonly = match method.get("readonly") {
                None | Some(Json::Bool(false)) => false,
                Some(Json::Bool(true)) => true,
                Some(_) => {
                    return Err(bad(format!(
                        "class {class} method {name}: \"readonly\" must be a boolean"
                    )))
                }
            };
            graph.declare_method(class.as_str(), name.as_str(), readonly);
            match method.get("calls") {
                None | Some(Json::Null) => {}
                Some(Json::Arr(calls)) => {
                    let mut refs = Vec::with_capacity(calls.len());
                    for call in calls {
                        let Json::Str(call) = call else {
                            return Err(bad(format!(
                                "class {class} method {name}: call entries must be strings"
                            )));
                        };
                        refs.push(MethodRef::parse(call).ok_or_else(|| {
                            bad(format!(
                                "class {class} method {name}: malformed call {call:?} \
                                 (expected \"Class::method\")"
                            ))
                        })?);
                    }
                    graph.declare_calls(class.as_str(), name.as_str(), refs);
                }
                Some(_) => {
                    return Err(bad(format!(
                        "class {class} method {name}: \"calls\" must be an array or null"
                    )))
                }
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClassGraph {
        let mut g = ClassGraph::new();
        g.add_constraint("Bank", "Branch");
        g.add_constraint("Branch", "Account");
        g.declare_method("Account", "read", true);
        g.declare_method("Account", "add", false);
        g.declare_calls("Branch", "transfer", [MethodRef::new("Account", "add")]);
        g.declare_calls("Branch", "noop", []);
        g.declare_method("Bank", "branch_count", true);
        g
    }

    #[test]
    fn round_trips_a_class_graph() {
        let graph = sample();
        let json = to_json(&graph);
        let back = from_json(&json).unwrap();
        let classes: Vec<&str> = back.classes().collect();
        assert_eq!(classes, vec!["Account", "Bank", "Branch"]);
        assert!(back.declares("Branch", "Account"));
        assert_eq!(back.readonly_method("Account", "read"), Some(true));
        assert_eq!(
            back.calls_of("Branch", "transfer"),
            Some(&[MethodRef::new("Account", "add")][..])
        );
        assert_eq!(back.calls_of("Branch", "noop"), Some(&[][..]));
        assert_eq!(back.calls_of("Bank", "branch_count"), None);
        // Determinism: re-serialising the parse gives identical text.
        assert_eq!(to_json(&back), json);
    }

    #[test]
    fn parses_hand_written_documents_with_whitespace() {
        let text = r#"
        {
          "classes": {
            "List": { "owns": ["Node", "Node"], "methods": [] },
            "Node": {
              "owns": ["Node"],
              "methods": [
                { "name": "next", "readonly": true, "calls": [] },
                { "name": "insert_after", "calls": ["Node::insert_after"] }
              ]
            }
          }
        }
        "#;
        let graph = from_json(text).unwrap();
        assert!(graph.declares("Node", "Node"));
        assert_eq!(graph.readonly_method("Node", "insert_after"), Some(false));
        assert_eq!(
            graph.calls_of("Node", "insert_after"),
            Some(&[MethodRef::new("Node", "insert_after")][..])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut g = ClassGraph::new();
        g.add_class("weird \"class\"\nname\tü");
        let json = to_json(&g);
        let back = from_json(&json).unwrap();
        assert!(back.contains("weird \"class\"\nname\tü"));
    }

    #[test]
    fn malformed_documents_are_codec_errors() {
        for text in [
            "",
            "{",
            "[1, 2",
            "{\"classes\": []}",
            "{\"classes\": {\"A\": {\"owns\": \"B\"}}}",
            "{\"classes\": {\"A\": {\"methods\": [{}]}}}",
            "{\"classes\": {\"A\": {\"methods\": [{\"name\": \"m\", \"calls\": [\"bad\"]}]}}}",
            "{\"classes\": {}} trailing",
            "nope",
        ] {
            let err = from_json(text).unwrap_err();
            assert!(matches!(err, AeonError::Codec(_)), "{text:?}: {err}");
        }
    }
}
