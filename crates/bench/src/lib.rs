//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (§6); see EXPERIMENTS.md at the workspace root for the mapping
//! and the recorded outputs.

use aeon_api::Session;
use aeon_apps::game::{deploy_game, game_class_graph};
use aeon_apps::social::social_class_graph;
use aeon_apps::tpcc::{deploy_tpcc, run_payment, tpcc_class_graph};
use aeon_apps::{
    deploy_social, generate_plan, run_social_stream, GameWorkload, GameWorkloadConfig,
    SocialConfig, TpccWorkload, TpccWorkloadConfig,
};
use aeon_runtime::AeonRuntime;
use aeon_sim::{Metrics, SimDeployment, Simulator, SystemKind};
use aeon_types::{args, Result, SimDuration, SimTime};

/// Prints a table header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Formats a float with two decimals for table cells.
pub fn cell(value: f64) -> String {
    format!("{value:.2}")
}

/// Runs the game workload for one system/server-count pair and returns the
/// metrics together with the experiment horizon.
pub fn run_game(system: SystemKind, config: &GameWorkloadConfig) -> (Metrics, SimTime) {
    let mut workload = GameWorkload::generate(system, config);
    let metrics = Simulator::new().run(&mut workload.cluster, &workload.requests);
    (metrics, SimTime::ZERO + config.duration)
}

/// Runs the TPC-C workload for one system/server-count pair.
pub fn run_tpcc(system: SystemKind, config: &TpccWorkloadConfig) -> (Metrics, SimTime) {
    let mut workload = TpccWorkload::generate(system, config);
    let metrics = Simulator::new().run(&mut workload.cluster, &workload.requests);
    (metrics, SimTime::ZERO + config.duration)
}

/// The worker-pool size knob of the fig5/fig6 drivers: `--pool-size N` on
/// the command line or the `AEON_POOL_SIZE` environment variable.  When
/// set, the drivers append a live measurement on a real `AeonRuntime`
/// whose sharded executor runs with that many resident workers.
pub fn pool_size_knob() -> Option<usize> {
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--pool-size" {
            return argv.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--pool-size=") {
            return v.parse().ok();
        }
    }
    std::env::var("AEON_POOL_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// The backend knob of the fig9 driver: `--backend runtime|cluster|sim` on
/// the command line or the `AEON_BACKEND` environment variable (same
/// pattern as [`pool_size_knob`]).  The selected backend is built through
/// the config-driven `aeon::deploy` entry point, so the elasticity bench
/// exercises every execution substrate.
///
/// # Panics
///
/// Panics on an unparseable backend name: a figure-generating driver must
/// not silently fall back to measuring the wrong backend.
pub fn backend_knob() -> Option<aeon::Backend> {
    fn parse(value: &str) -> aeon::Backend {
        value
            .parse()
            .unwrap_or_else(|e| panic!("invalid backend knob: {e}"))
    }
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--backend" {
            return argv.next().map(|v| parse(&v));
        }
        if let Some(v) = arg.strip_prefix("--backend=") {
            return Some(parse(v));
        }
    }
    std::env::var("AEON_BACKEND").ok().map(|v| parse(&v))
}

/// The result of a live (non-simulated) run against a real backend.
#[derive(Debug, Clone, Copy)]
pub struct LiveReport {
    /// Resident executor workers used by the run.
    pub pool_size: usize,
    /// Events completed.
    pub events: usize,
    /// Events per wall-clock second.
    pub throughput: f64,
    /// Median event latency in microseconds.
    pub p50_micros: u64,
    /// 99th-percentile event latency in microseconds.
    pub p99_micros: u64,
}

impl LiveReport {
    /// Renders the report as a figure footnote line.
    pub fn footnote(&self, label: &str) -> String {
        format!(
            "# live {label} (pool={}): {:.2} events/s over {} events, \
             p50={}us p99={}us",
            self.pool_size, self.throughput, self.events, self.p50_micros, self.p99_micros
        )
    }
}

fn live_report(runtime: &AeonRuntime, pool_size: usize, events: usize, secs: f64) -> LiveReport {
    let latency = runtime.stats().latency_summary();
    LiveReport {
        pool_size,
        events,
        throughput: events as f64 / secs.max(f64::MIN_POSITIVE),
        p50_micros: latency.p50_micros,
        p99_micros: latency.p99_micros,
    }
}

/// Measures the game workload on a live `AeonRuntime` with a sharded
/// worker pool of `pool_size` resident workers: `rooms` rooms × 4 players
/// mine gold concurrently (`events_per_player` each).
///
/// # Errors
///
/// Propagates deployment and event submission failures.
pub fn live_game_run(
    pool_size: usize,
    rooms: usize,
    events_per_player: usize,
) -> Result<LiveReport> {
    let runtime = AeonRuntime::builder()
        .servers(rooms.max(1))
        .worker_threads(pool_size)
        .class_graph(game_class_graph())
        .build()?;
    let players_per_room = 4;
    let world = deploy_game(&runtime, rooms, players_per_room)?;
    let session = runtime.client();
    let started = std::time::Instant::now();
    let mut handles = Vec::new();
    for _ in 0..events_per_player {
        for room in &world.players {
            for player in room {
                handles.push(Session::submit_event(
                    &session,
                    *player,
                    "get_gold",
                    args![1],
                )?);
            }
        }
    }
    let events = handles.len();
    for handle in handles {
        handle.wait()?;
    }
    let secs = started.elapsed().as_secs_f64();
    let report = live_report(&runtime, pool_size, events, secs);
    runtime.shutdown();
    Ok(report)
}

/// Measures the TPC-C Payment workload on a live `AeonRuntime` with a
/// sharded worker pool of `pool_size` resident workers: `clients`
/// client threads each issue `payments_per_client` Payment transactions.
///
/// # Errors
///
/// Propagates deployment and transaction failures.
pub fn live_tpcc_run(
    pool_size: usize,
    districts: usize,
    clients: usize,
    payments_per_client: usize,
) -> Result<LiveReport> {
    let runtime = AeonRuntime::builder()
        .servers(districts.max(1))
        .worker_threads(pool_size)
        .class_graph(tpcc_class_graph())
        .build()?;
    let world = deploy_tpcc(&runtime, districts, 4)?;
    let started = std::time::Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut joins = Vec::new();
        for client in 0..clients {
            let session = runtime.client();
            let world = &world;
            joins.push(scope.spawn(move || -> Result<()> {
                for payment in 0..payments_per_client {
                    let district = (client + payment) % world.districts.len();
                    let customer = payment % world.customers[district].len();
                    run_payment(&session, world, district, customer, 1)?;
                }
                Ok(())
            }));
        }
        for join in joins {
            join.join().expect("client thread does not panic")?;
        }
        Ok(())
    })?;
    let secs = started.elapsed().as_secs_f64();
    // A Payment is three events (warehouse, district, customer).
    let events = clients * payments_per_client * 3;
    let report = live_report(&runtime, pool_size, events, secs);
    runtime.shutdown();
    Ok(report)
}

/// Outcome of a virtual-time run on the contention-mode
/// [`SimDeployment`]: real contextclass code executed inline, latency and
/// throughput accounted against the simulator's lock/CPU timelines.
#[derive(Debug, Clone, Copy)]
pub struct SimReport {
    /// Events completed.
    pub events: u64,
    /// Events per *virtual* second (events / makespan).
    pub virtual_ops_per_sec: f64,
    /// Mean virtual event latency in microseconds.
    pub mean_latency_micros: u64,
    /// Virtual makespan of the measured stream in microseconds.
    pub virtual_micros: u64,
}

/// Shared knobs of the virtual-time drivers below.
#[derive(Debug, Clone, Copy)]
pub struct SimRunConfig {
    /// Simulated servers.
    pub servers: usize,
    /// Cores per simulated server.
    pub cores: usize,
    /// Per-event CPU service demand.
    pub service: SimDuration,
    /// One network hop (client↔server and server↔server).
    pub hop: SimDuration,
    /// Open-loop inter-arrival gap of the request stream.
    pub arrival_interval: SimDuration,
}

impl Default for SimRunConfig {
    fn default() -> Self {
        SimRunConfig {
            servers: 4,
            cores: 2,
            service: SimDuration::from_micros(100),
            hop: SimDuration::from_micros(50),
            arrival_interval: SimDuration::from_micros(25),
        }
    }
}

impl SimRunConfig {
    fn build(&self, classes: aeon_ownership::ClassGraph) -> Result<SimDeployment> {
        SimDeployment::builder()
            .servers(self.servers)
            .contention(self.cores)
            .service_time(self.service)
            .network_hop(self.hop)
            .arrival_interval(self.arrival_interval)
            .class_graph(classes)
            .build()
    }

    fn report(&self, sim: &SimDeployment) -> SimReport {
        SimReport {
            events: sim.events_completed(),
            virtual_ops_per_sec: sim.virtual_throughput(),
            mean_latency_micros: sim.mean_virtual_latency().as_micros(),
            virtual_micros: sim.virtual_now().as_micros(),
        }
    }
}

/// Runs the fig5 game driver under virtual time: the same
/// [`deploy_game`]/`get_gold` loop as [`live_game_run`], but on the
/// contention-mode simulator, so server/core counts can be swept without
/// real hardware.
///
/// # Errors
///
/// Propagates deployment and event failures.
pub fn sim_game_run(
    config: &SimRunConfig,
    rooms: usize,
    events_per_player: usize,
) -> Result<SimReport> {
    let sim = config.build(game_class_graph())?;
    let world = deploy_game(&sim, rooms, 4)?;
    let session = sim.client();
    sim.reset_virtual_time();
    for _ in 0..events_per_player {
        for room in &world.players {
            for player in room {
                session.call(*player, "get_gold", args![1])?;
            }
        }
    }
    Ok(config.report(&sim))
}

/// Runs the fig6 TPC-C Payment driver under virtual time.
///
/// # Errors
///
/// Propagates deployment and transaction failures.
pub fn sim_tpcc_run(config: &SimRunConfig, districts: usize, payments: usize) -> Result<SimReport> {
    let sim = config.build(tpcc_class_graph())?;
    let world = deploy_tpcc(&sim, districts, 4)?;
    let session = sim.client();
    sim.reset_virtual_time();
    for payment in 0..payments {
        let district = payment % world.districts.len();
        let customer = payment % world.customers[district].len();
        run_payment(&session, &world, district, customer, 1)?;
    }
    Ok(config.report(&sim))
}

/// Runs the Zipfian social driver under virtual time: deploys the seeded
/// social graph, then replays a deterministic skewed request stream and
/// accounts it against the simulated sequencer/CPU timelines (the fig7
/// hot-dominator shape).
///
/// # Errors
///
/// Propagates deployment and event failures.
pub fn sim_social_run(
    config: &SimRunConfig,
    social: &SocialConfig,
    events: usize,
) -> Result<SimReport> {
    let sim = config.build(social_class_graph())?;
    let world = deploy_social(&sim, social)?;
    let session = sim.client();
    sim.reset_virtual_time();
    let ops = generate_plan(social).request_stream(events, social.seed ^ 0xf167);
    run_social_stream(&session, &world, &ops)?;
    Ok(config.report(&sim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_helpers_produce_metrics() {
        let config = GameWorkloadConfig {
            servers: 2,
            request_rate: 200.0,
            duration: aeon_types::SimDuration::from_secs(1),
            ..GameWorkloadConfig::default()
        };
        let (metrics, horizon) = run_game(SystemKind::Aeon, &config);
        assert!(metrics.count() > 0);
        assert!(metrics.throughput(Some(horizon)) > 0.0);
        assert_eq!(cell(1.234), "1.23");
    }

    #[test]
    fn virtual_time_drivers_account_real_executions() {
        let config = SimRunConfig {
            servers: 2,
            cores: 2,
            ..SimRunConfig::default()
        };
        let game = sim_game_run(&config, 2, 4).unwrap();
        assert_eq!(game.events, 2 * 4 * 4);
        assert!(game.virtual_micros > 0);
        assert!(game.virtual_ops_per_sec > 0.0);

        let tpcc = sim_tpcc_run(&config, 2, 8).unwrap();
        assert_eq!(tpcc.events, 8 * 3);
        assert!(tpcc.mean_latency_micros > 0);

        let social = SocialConfig {
            regions: 2,
            users: 16,
            ..SocialConfig::default()
        };
        let report = sim_social_run(&config, &social, 64).unwrap();
        assert_eq!(report.events, 64);
        assert!(report.virtual_ops_per_sec > 0.0);
    }

    #[test]
    fn skew_concentrates_virtual_time_on_hot_dominators() {
        // The same stream size under heavier Zipf skew funnels more events
        // through the celebrity dominators, so the virtual makespan and
        // mean latency cannot improve relative to the uniform stream.
        let config = SimRunConfig {
            servers: 4,
            cores: 1,
            arrival_interval: SimDuration::ZERO,
            ..SimRunConfig::default()
        };
        let base = SocialConfig {
            regions: 2,
            users: 32,
            ..SocialConfig::default()
        };
        let uniform = SocialConfig {
            zipf_s: 0.0,
            ..base.clone()
        };
        let skewed = SocialConfig {
            zipf_s: 1.4,
            ..base
        };
        let flat = sim_social_run(&config, &uniform, 256).unwrap();
        let hot = sim_social_run(&config, &skewed, 256).unwrap();
        assert_eq!(flat.events, hot.events);
        assert!(
            hot.virtual_micros >= flat.virtual_micros,
            "skewed makespan {} < uniform makespan {}",
            hot.virtual_micros,
            flat.virtual_micros
        );
    }
}
