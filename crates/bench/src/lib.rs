//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (§6); see EXPERIMENTS.md at the workspace root for the mapping
//! and the recorded outputs.

use aeon_apps::{GameWorkload, GameWorkloadConfig, TpccWorkload, TpccWorkloadConfig};
use aeon_sim::{Metrics, Simulator, SystemKind};
use aeon_types::SimTime;

/// Prints a table header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Formats a float with two decimals for table cells.
pub fn cell(value: f64) -> String {
    format!("{value:.2}")
}

/// Runs the game workload for one system/server-count pair and returns the
/// metrics together with the experiment horizon.
pub fn run_game(system: SystemKind, config: &GameWorkloadConfig) -> (Metrics, SimTime) {
    let mut workload = GameWorkload::generate(system, config);
    let metrics = Simulator::new().run(&mut workload.cluster, &workload.requests);
    (metrics, SimTime::ZERO + config.duration)
}

/// Runs the TPC-C workload for one system/server-count pair.
pub fn run_tpcc(system: SystemKind, config: &TpccWorkloadConfig) -> (Metrics, SimTime) {
    let mut workload = TpccWorkload::generate(system, config);
    let metrics = Simulator::new().run(&mut workload.cluster, &workload.requests);
    (metrics, SimTime::ZERO + config.duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_helpers_produce_metrics() {
        let config = GameWorkloadConfig {
            servers: 2,
            request_rate: 200.0,
            duration: aeon_types::SimDuration::from_secs(1),
            ..GameWorkloadConfig::default()
        };
        let (metrics, horizon) = run_game(SystemKind::Aeon, &config);
        assert!(metrics.count() > 0);
        assert!(metrics.throughput(Some(horizon)) > 0.0);
        assert_eq!(cell(1.234), "1.23");
    }
}
