//! Figure 6a: TPC-C scale-out — throughput (transactions/s) as the number of
//! servers grows (one district per server), for every system.

use aeon_apps::TpccWorkloadConfig;
use aeon_bench::{cell, header, live_tpcc_run, pool_size_knob, run_tpcc};
use aeon_sim::SystemKind;

fn main() {
    header(&[
        "servers",
        "EventWave",
        "Orleans",
        "Orleans*",
        "AEON_SO",
        "AEON",
    ]);
    for servers in [2usize, 4, 8, 12, 16] {
        let config = TpccWorkloadConfig::for_servers(servers);
        let mut row = vec![servers.to_string()];
        for system in SystemKind::ALL {
            let (metrics, horizon) = run_tpcc(system, &config);
            row.push(cell(metrics.throughput(Some(horizon))));
        }
        println!("{}", row.join("\t"));
    }
    // Optional live validation on the real runtime's sharded worker pool
    // (`--pool-size N` / AEON_POOL_SIZE).
    if let Some(pool) = pool_size_knob() {
        match live_tpcc_run(pool, 4, 8, 25) {
            Ok(report) => println!("{}", report.footnote("tpcc scale-out")),
            Err(e) => eprintln!("live run failed: {e}"),
        }
    }
}
