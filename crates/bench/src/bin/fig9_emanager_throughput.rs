//! Figure 9: maximum eManager migration throughput (contexts/s) for 1 KB and
//! 1 MB contexts on the three instance classes, plus a measurement of a real
//! backend's migration primitive as a sanity check.
//!
//! The live measurement runs on any execution substrate: select it with
//! `--backend runtime|cluster|sim` or `AEON_BACKEND` (default: runtime).
//! The backend is built through the config-driven `aeon::deploy` entry
//! point, exactly like the elasticity manager would use it.

use aeon::prelude::*;
use aeon_bench::{backend_knob, cell};
use aeon_sim::{EManagerThroughputModel, InstanceType};
use std::time::Instant;

fn main() {
    println!("instance\tcontext_size\tcontexts_per_s");
    for instance in [
        InstanceType::Large,
        InstanceType::Medium,
        InstanceType::Small,
    ] {
        let model = EManagerThroughputModel::for_instance(instance);
        for (label, bytes) in [("1KB", 1u64 << 10), ("1MB", 1u64 << 20)] {
            println!(
                "{instance}\t{label}\t{}",
                cell(model.contexts_per_second(bytes))
            );
        }
    }
    // Sanity check: migration throughput of a real backend.
    let backend = backend_knob().unwrap_or_default();
    let deployment = aeon::deploy(DeployConfig::new(backend).servers(2)).expect("deployment");
    // Backends that ship state between servers (the cluster) rebuild the
    // context through its class factory.
    deployment.register_class_factory(
        "Item",
        std::sync::Arc::new(|state: &Value| {
            let mut item = KvContext::new("Item");
            ContextObject::restore(&mut item, state);
            Box::new(item) as Box<dyn ContextObject>
        }),
    );
    let servers = deployment.servers();
    let contexts: Vec<_> = (0..200)
        .map(|i| {
            deployment
                .create_context(
                    Box::new(KvContext::with_entries(
                        "Item",
                        [("payload", Value::from(vec![0u8; 1024]))],
                    )),
                    Placement::Server(servers[i % 2]),
                )
                .expect("context")
        })
        .collect();
    let start = Instant::now();
    for (i, ctx) in contexts.iter().enumerate() {
        deployment
            .migrate_context(*ctx, servers[(i + 1) % 2])
            .expect("migrate");
    }
    let rate = contexts.len() as f64 / start.elapsed().as_secs_f64();
    println!("live-{}\t1KB\t{}", deployment.backend_name(), cell(rate));
    deployment.shutdown();
}
