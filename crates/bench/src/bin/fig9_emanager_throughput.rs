//! Figure 9: maximum eManager migration throughput (contexts/s) for 1 KB and
//! 1 MB contexts on the three instance classes, plus a measurement of the
//! real runtime's migration primitive as a sanity check.

use aeon_bench::cell;
use aeon_runtime::{AeonRuntime, KvContext, Placement};
use aeon_sim::{EManagerThroughputModel, InstanceType};
use aeon_types::Value;
use std::time::Instant;

fn main() {
    println!("instance\tcontext_size\tcontexts_per_s");
    for instance in [
        InstanceType::Large,
        InstanceType::Medium,
        InstanceType::Small,
    ] {
        let model = EManagerThroughputModel::for_instance(instance);
        for (label, bytes) in [("1KB", 1u64 << 10), ("1MB", 1u64 << 20)] {
            println!(
                "{instance}\t{label}\t{}",
                cell(model.contexts_per_second(bytes))
            );
        }
    }
    // Sanity check: in-process migration throughput of the real runtime.
    let runtime = AeonRuntime::builder().servers(2).build().expect("runtime");
    let contexts: Vec<_> = (0..200)
        .map(|i| {
            runtime
                .create_context(
                    Box::new(KvContext::with_entries(
                        "Item",
                        [("payload", Value::from(vec![0u8; 1024]))],
                    )),
                    Placement::Server(runtime.servers()[i % 2]),
                )
                .expect("context")
        })
        .collect();
    let start = Instant::now();
    for (i, ctx) in contexts.iter().enumerate() {
        runtime
            .migrate_context(*ctx, runtime.servers()[(i + 1) % 2])
            .expect("migrate");
    }
    let rate = contexts.len() as f64 / start.elapsed().as_secs_f64();
    println!("in-process-runtime\t1KB\t{}", cell(rate));
    runtime.shutdown();
}
