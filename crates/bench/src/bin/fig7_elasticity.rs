//! Figure 7: the elastic game deployment vs static 8/16/32-server setups —
//! average request latency (7a) and number of servers (7b) over time.

use aeon_bench::cell;
use aeon_sim::{elastic::run_elastic, ElasticConfig, ElasticSetup};

fn main() {
    let config = ElasticConfig::paper_default();
    let setups = [
        ElasticSetup::Elastic { initial: 8 },
        ElasticSetup::Static(8),
        ElasticSetup::Static(16),
        ElasticSetup::Static(32),
    ];
    println!("time_s\tclients\tsetup\tservers\tavg_latency_ms");
    for setup in setups {
        let outcome = run_elastic(&config, setup);
        for round in &outcome.rounds {
            println!(
                "{}\t{}\t{}\t{}\t{}",
                round.time.as_secs_f64() as u64,
                round.clients,
                setup,
                round.servers,
                cell(round.avg_latency_ms),
            );
        }
    }
}
