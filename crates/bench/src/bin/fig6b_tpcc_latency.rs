//! Figure 6b: TPC-C latency vs throughput at 8 servers, obtained by sweeping
//! the offered load.

use aeon_apps::TpccWorkloadConfig;
use aeon_bench::{cell, header, live_tpcc_run, pool_size_knob, run_tpcc};
use aeon_sim::SystemKind;

fn main() {
    header(&[
        "system",
        "offered_tps",
        "throughput_tps",
        "mean_latency_ms",
        "p99_latency_ms",
    ]);
    for system in SystemKind::ALL {
        for load in [50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 600.0] {
            let config = TpccWorkloadConfig {
                servers: 8,
                request_rate: load,
                ..TpccWorkloadConfig::default()
            };
            let (metrics, horizon) = run_tpcc(system, &config);
            println!(
                "{system}\t{load}\t{}\t{}\t{}",
                cell(metrics.throughput(Some(horizon))),
                cell(metrics.mean_latency_ms()),
                cell(metrics.latency_percentile_ms(0.99)),
            );
        }
    }
    // Optional live latency validation on the real runtime's sharded
    // worker pool (`--pool-size N` / AEON_POOL_SIZE).
    if let Some(pool) = pool_size_knob() {
        match live_tpcc_run(pool, 8, 8, 25) {
            Ok(report) => println!("{}", report.footnote("tpcc latency")),
            Err(e) => eprintln!("live run failed: {e}"),
        }
    }
}
