//! `aeon-bench`: the machine-readable hot-path benchmark runner.
//!
//! Unlike the `figN` binaries (which regenerate the paper's figures as TSV
//! tables), this runner measures the live backends and emits versioned JSON
//! documents — `BENCH_<suite>.json`, schema `aeon-bench/v1` — that CI and
//! regression tooling can diff across commits.
//!
//! Suites:
//!
//! * `fig5-game`  — game world gold-mining bursts on the runtime and the
//!   Channel cluster (the paper's §6.2 workload).
//! * `fig6-tpcc`  — TPC-C Payment on the runtime and the Channel cluster
//!   (§6.3).
//! * `readonly`   — certified read-only burst on the bank world, measured
//!   with the analyzer-certified fast path disabled (the "before" leg) and
//!   enabled (the "after" leg), on both backends.  The fast-path event
//!   counters land in each result's `extra` map.
//! * `fig7-social` — Zipfian social-graph workload (hot celebrity
//!   dominators under skewed load) on the runtime, the Channel cluster,
//!   and the contention-mode virtual-time simulator.
//! * `micro`      — submit latency, executor saturation, and wire codec
//!   encode/decode microbenchmarks.
//!
//! Usage:
//!
//! ```text
//! aeon-bench [--only=SUITE[,SUITE]] [--out-dir=DIR] [--smoke]
//! aeon-bench --validate [FILE...]
//! ```
//!
//! `AEON_BENCH_SMOKE=1` (or `--smoke`) shrinks every suite to CI-smoke
//! scale.  `--validate` parses the given files (default: every
//! `BENCH_*.json` in the output directory) and checks them against the
//! `aeon-bench/v1` schema, exiting non-zero on any violation.

use aeon_api::{Deployment, Session};
use aeon_apps::bank::{bank_class_graph, deploy_bank, BankWorldConfig};
use aeon_apps::game::{deploy_game, game_class_graph};
use aeon_apps::social::{deploy_social, generate_plan, social_class_graph, SocialConfig, SocialOp};
use aeon_apps::tpcc::{deploy_tpcc, run_payment, tpcc_class_graph};
use aeon_apps::SocialWorld;
use aeon_bench::{live_game_run, live_tpcc_run, sim_social_run, SimRunConfig};
use aeon_cluster::Cluster;
use aeon_runtime::{AeonRuntime, KvContext, Placement};
use aeon_types::{args, codec, Args, ContextId, LatencyHistogram, Result, Value};
use std::fmt::Write as _;
use std::time::Instant;

/// Outstanding-handle cap for burst submission: keeps memory bounded while
/// still saturating the executor.
const WAVE: usize = 1024;

fn main() {
    let options = Options::parse(std::env::args().skip(1));
    let code = if options.validate {
        validate_main(&options)
    } else {
        match run_suites(&options) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("aeon-bench: {e}");
                1
            }
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

struct Options {
    only: Option<Vec<String>>,
    out_dir: String,
    smoke: bool,
    validate: bool,
    files: Vec<String>,
}

impl Options {
    fn parse(argv: impl Iterator<Item = String>) -> Self {
        let mut options = Options {
            only: None,
            out_dir: ".".to_string(),
            smoke: std::env::var("AEON_BENCH_SMOKE").is_ok_and(|v| v == "1"),
            validate: false,
            files: Vec::new(),
        };
        for arg in argv {
            if let Some(list) = arg.strip_prefix("--only=") {
                options.only = Some(list.split(',').map(str::to_string).collect());
            } else if let Some(dir) = arg.strip_prefix("--out-dir=") {
                options.out_dir = dir.to_string();
            } else if arg == "--smoke" {
                options.smoke = true;
            } else if arg == "--validate" {
                options.validate = true;
            } else if arg.starts_with("--") {
                eprintln!("aeon-bench: unknown flag {arg}");
                std::process::exit(2);
            } else {
                options.files.push(arg);
            }
        }
        options
    }

    fn wants(&self, suite: &str) -> bool {
        match &self.only {
            None => true,
            Some(only) => only.iter().any(|s| s == suite),
        }
    }
}

fn fingerprint(smoke: bool) -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!(
        "profile={profile} host_workers={} smoke={smoke}",
        host_workers()
    )
}

/// Available hardware parallelism, clamped to a sane pool size so the
/// full-scale suites do not oversubscribe small CI hosts.
fn host_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .clamp(2, 8)
}

// ---------------------------------------------------------------------------
// Result model and JSON emission
// ---------------------------------------------------------------------------

/// One measured (bench, backend) cell of a suite document.
struct BenchResult {
    bench: String,
    backend: String,
    config: String,
    events: u64,
    ops_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
    /// Optional counters (fast-path events, batch hits, ...).
    extra: Vec<(String, u64)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_document(name: &str, smoke: bool, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"aeon-bench/v1\",");
    let _ = writeln!(out, "  \"name\": \"{}\",", json_escape(name));
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"fingerprint\": \"{}\",",
        json_escape(&fingerprint(smoke))
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"bench\": \"{}\",", json_escape(&r.bench));
        let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(&r.backend));
        let _ = writeln!(out, "      \"config\": \"{}\",", json_escape(&r.config));
        let _ = writeln!(out, "      \"events\": {},", r.events);
        let ops = if r.ops_per_sec.is_finite() {
            r.ops_per_sec
        } else {
            0.0
        };
        let _ = writeln!(out, "      \"ops_per_sec\": {ops:.2},");
        let _ = writeln!(out, "      \"p50_micros\": {},", r.p50_micros);
        if r.extra.is_empty() {
            let _ = writeln!(out, "      \"p99_micros\": {}", r.p99_micros);
        } else {
            let _ = writeln!(out, "      \"p99_micros\": {},", r.p99_micros);
            out.push_str("      \"extra\": {");
            for (j, (key, value)) in r.extra.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {value}", json_escape(key));
            }
            out.push_str("}\n");
        }
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn write_document(options: &Options, name: &str, results: &[BenchResult]) -> Result<String> {
    let file = format!("{}/BENCH_{}.json", options.out_dir, name.replace('-', "_"));
    let doc = render_document(name, options.smoke, results);
    std::fs::write(&file, doc)
        .map_err(|e| aeon_types::AeonError::Config(format!("cannot write {file}: {e}")))?;
    for r in results {
        println!(
            "{:<12} {:<22} {:>10} events {:>12.2} ops/s  p50={}us p99={}us  [{}]",
            name, r.backend, r.events, r.ops_per_sec, r.p50_micros, r.p99_micros, r.config
        );
    }
    println!("wrote {file}");
    Ok(file)
}

// ---------------------------------------------------------------------------
// Generic burst measurement
// ---------------------------------------------------------------------------

struct LegOutcome {
    events: u64,
    ops_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
}

/// Runs `burst` against a fresh session on `deployment`, timing it
/// end-to-end; latency percentiles come from the backend's merged
/// per-server histograms so the same code measures every backend.
fn run_leg(
    deployment: &dyn Deployment,
    burst: impl FnOnce(&dyn Session) -> Result<usize>,
) -> Result<LegOutcome> {
    let session = deployment.session();
    let started = Instant::now();
    let events = burst(session.as_ref())?;
    let secs = started.elapsed().as_secs_f64();
    let mut latency = LatencyHistogram::new();
    for metrics in deployment.server_metrics() {
        latency.merge(&metrics.latency);
    }
    Ok(LegOutcome {
        events: events as u64,
        ops_per_sec: events as f64 / secs.max(f64::MIN_POSITIVE),
        p50_micros: latency.p50_micros(),
        p99_micros: latency.p99_micros(),
    })
}

/// Submits `events` events round-robin over `targets` in bounded waves.
fn burst_events(
    session: &dyn Session,
    targets: &[ContextId],
    events: usize,
    method: &str,
    readonly: bool,
    payload: &dyn Fn() -> Args,
) -> Result<usize> {
    let mut handles = Vec::with_capacity(WAVE.min(events));
    let mut submitted = 0usize;
    while submitted < events {
        let wave = WAVE.min(events - submitted);
        for _ in 0..wave {
            let target = targets[submitted % targets.len()];
            let handle = if readonly {
                session.submit_readonly_event(target, method, payload())?
            } else {
                session.submit_event(target, method, payload())?
            };
            handles.push(handle);
            submitted += 1;
        }
        for handle in handles.drain(..) {
            handle.wait()?;
        }
    }
    Ok(submitted)
}

// ---------------------------------------------------------------------------
// Suite: fig5-game
// ---------------------------------------------------------------------------

fn suite_fig5_game(options: &Options) -> Result<Vec<BenchResult>> {
    let (pool, rooms, events_per_player) = if options.smoke {
        (2, 2, 5)
    } else {
        (host_workers(), 8, 100)
    };
    let mut results = Vec::new();

    let report = live_game_run(pool, rooms, events_per_player)?;
    results.push(BenchResult {
        bench: "fig5-game".into(),
        backend: "runtime".into(),
        config: format!("pool={pool} rooms={rooms} events_per_player={events_per_player}"),
        events: report.events as u64,
        ops_per_sec: report.throughput,
        p50_micros: report.p50_micros,
        p99_micros: report.p99_micros,
        extra: Vec::new(),
    });

    let servers = rooms.clamp(2, 4);
    let cluster = Cluster::builder()
        .servers(servers)
        .worker_threads(pool)
        .class_graph(game_class_graph())
        .build()?;
    let world = deploy_game(&cluster, rooms, 4)?;
    let players: Vec<ContextId> = world.players.iter().flatten().copied().collect();
    let total = players.len() * events_per_player;
    let leg = run_leg(&cluster, |session| {
        burst_events(session, &players, total, "get_gold", false, &|| args![1])
    })?;
    cluster.shutdown();
    results.push(BenchResult {
        bench: "fig5-game".into(),
        backend: "cluster-channel".into(),
        config: format!(
            "servers={servers} pool={pool} rooms={rooms} events_per_player={events_per_player}"
        ),
        events: leg.events,
        ops_per_sec: leg.ops_per_sec,
        p50_micros: leg.p50_micros,
        p99_micros: leg.p99_micros,
        extra: Vec::new(),
    });
    Ok(results)
}

// ---------------------------------------------------------------------------
// Suite: fig6-tpcc
// ---------------------------------------------------------------------------

fn suite_fig6_tpcc(options: &Options) -> Result<Vec<BenchResult>> {
    let (pool, districts, clients, payments) = if options.smoke {
        (2, 2, 2, 10)
    } else {
        (host_workers(), 4, host_workers(), 100)
    };
    let mut results = Vec::new();

    let report = live_tpcc_run(pool, districts, clients, payments)?;
    results.push(BenchResult {
        bench: "fig6-tpcc".into(),
        backend: "runtime".into(),
        config: format!("pool={pool} districts={districts} clients={clients} payments={payments}"),
        events: report.events as u64,
        ops_per_sec: report.throughput,
        p50_micros: report.p50_micros,
        p99_micros: report.p99_micros,
        extra: Vec::new(),
    });

    let servers = districts.max(2);
    let cluster = Cluster::builder()
        .servers(servers)
        .worker_threads(pool)
        .class_graph(tpcc_class_graph())
        .build()?;
    let world = deploy_tpcc(&cluster, districts, 4)?;
    let started = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut joins = Vec::new();
        for client in 0..clients {
            let session = Deployment::session(&cluster);
            let world = &world;
            joins.push(scope.spawn(move || -> Result<()> {
                for payment in 0..payments {
                    let district = (client + payment) % world.districts.len();
                    let customer = payment % world.customers[district].len();
                    run_payment(session.as_ref(), world, district, customer, 1)?;
                }
                Ok(())
            }));
        }
        for join in joins {
            join.join().expect("tpcc client thread does not panic")?;
        }
        Ok(())
    })?;
    let secs = started.elapsed().as_secs_f64();
    // A Payment is three events (warehouse, district, customer).
    let events = (clients * payments * 3) as u64;
    let mut latency = LatencyHistogram::new();
    for metrics in cluster.server_metrics() {
        latency.merge(&metrics.latency);
    }
    cluster.shutdown();
    results.push(BenchResult {
        bench: "fig6-tpcc".into(),
        backend: "cluster-channel".into(),
        config: format!("servers={servers} pool={pool} districts={districts} clients={clients} payments={payments}"),
        events,
        ops_per_sec: events as f64 / secs.max(f64::MIN_POSITIVE),
        p50_micros: latency.p50_micros(),
        p99_micros: latency.p99_micros(),
        extra: Vec::new(),
    });
    Ok(results)
}

// ---------------------------------------------------------------------------
// Suite: readonly (fast-path A/B)
// ---------------------------------------------------------------------------

fn suite_readonly(options: &Options) -> Result<Vec<BenchResult>> {
    let (pool, runtime_events, cluster_events) = if options.smoke {
        (2, 2_000, 400)
    } else {
        (host_workers(), 120_000, 60_000)
    };
    let config = BankWorldConfig::default();
    let mut results = Vec::new();

    // `Account::read` is declared `ro` with a `calls []` summary, so the
    // analyzer certifies it; the off-leg is the "before" measurement.
    for fast_path in [false, true] {
        let runtime = AeonRuntime::builder()
            .servers(4)
            .worker_threads(pool)
            .class_graph(bank_class_graph())
            .readonly_fast_path(fast_path)
            .build()?;
        let world = deploy_bank(&runtime, &config)?;
        // Untimed warmup: populates caches and spins the worker pool up so
        // the timed burst measures steady state.
        burst_events(
            Deployment::session(&runtime).as_ref(),
            &world.accounts,
            runtime_events / 10,
            "read",
            true,
            &|| args![],
        )?;
        let leg = run_leg(&runtime, |session| {
            burst_events(
                session,
                &world.accounts,
                runtime_events,
                "read",
                true,
                &|| args![],
            )
        })?;
        let stats = runtime.executor_stats();
        runtime.shutdown();
        results.push(BenchResult {
            bench: "readonly".into(),
            backend: if fast_path {
                "runtime+fastpath"
            } else {
                "runtime"
            }
            .into(),
            config: format!(
                "pool={pool} accounts={} events={runtime_events}",
                world.accounts.len()
            ),
            events: leg.events,
            ops_per_sec: leg.ops_per_sec,
            p50_micros: leg.p50_micros,
            p99_micros: leg.p99_micros,
            extra: vec![
                ("fast_path_events".into(), stats.fast_path),
                ("batched".into(), stats.batched),
            ],
        });
    }

    for fast_path in [false, true] {
        let cluster = Cluster::builder()
            .servers(4)
            .worker_threads(pool)
            .class_graph(bank_class_graph())
            .readonly_fast_path(fast_path)
            .build()?;
        let world = deploy_bank(&cluster, &config)?;
        burst_events(
            Deployment::session(&cluster).as_ref(),
            &world.accounts,
            cluster_events / 10,
            "read",
            true,
            &|| args![],
        )?;
        let leg = run_leg(&cluster, |session| {
            burst_events(
                session,
                &world.accounts,
                cluster_events,
                "read",
                true,
                &|| args![],
            )
        })?;
        let fast_path_events = cluster.fast_path_events();
        cluster.shutdown();
        results.push(BenchResult {
            bench: "readonly".into(),
            backend: if fast_path {
                "cluster-channel+fastpath"
            } else {
                "cluster-channel"
            }
            .into(),
            config: format!(
                "servers=4 pool={pool} accounts={} events={cluster_events}",
                world.accounts.len()
            ),
            events: leg.events,
            ops_per_sec: leg.ops_per_sec,
            p50_micros: leg.p50_micros,
            p99_micros: leg.p99_micros,
            extra: vec![("fast_path_events".into(), fast_path_events)],
        });
    }
    Ok(results)
}

// ---------------------------------------------------------------------------
// Suite: fig7-social
// ---------------------------------------------------------------------------

/// Submits a pre-generated Zipfian social stream in bounded waves, the
/// social-graph analogue of [`burst_events`].
fn burst_social(session: &dyn Session, world: &SocialWorld, ops: &[SocialOp]) -> Result<usize> {
    let mut handles = Vec::with_capacity(WAVE.min(ops.len()));
    for chunk in ops.chunks(WAVE) {
        for op in chunk {
            let handle = match *op {
                SocialOp::Post { user, payload } => {
                    session.submit_event(world.users[user as usize], "post", args![payload])?
                }
                SocialOp::Timeline { user } => session.submit_readonly_event(
                    world.users[user as usize],
                    "timeline",
                    args![],
                )?,
                SocialOp::FeedLen { user } => {
                    session.submit_readonly_event(world.feeds[user as usize], "len", args![])?
                }
            };
            handles.push(handle);
        }
        for handle in handles.drain(..) {
            handle.wait()?;
        }
    }
    Ok(ops.len())
}

fn suite_fig7_social(options: &Options) -> Result<Vec<BenchResult>> {
    let (pool, social, events) = if options.smoke {
        (
            2,
            SocialConfig {
                regions: 2,
                users: 32,
                ..SocialConfig::default()
            },
            400,
        )
    } else {
        (
            host_workers(),
            SocialConfig {
                regions: 4,
                users: 500,
                follows_per_user: 5,
                ..SocialConfig::default()
            },
            10_000,
        )
    };
    let contexts = social.total_contexts() as u64;
    let knobs = format!(
        "regions={} users={} zipf_s={} events={events}",
        social.regions, social.users, social.zipf_s
    );
    let mut results = Vec::new();

    let servers = social.regions.clamp(2, 4);
    let runtime = AeonRuntime::builder()
        .servers(servers)
        .worker_threads(pool)
        .class_graph(social_class_graph())
        .build()?;
    let world = deploy_social(&runtime, &social)?;
    let ops = generate_plan(&social).request_stream(events, social.seed);
    let leg = run_leg(&runtime, |session| burst_social(session, &world, &ops))?;
    runtime.shutdown();
    results.push(BenchResult {
        bench: "fig7-social".into(),
        backend: "runtime".into(),
        config: format!("servers={servers} pool={pool} {knobs}"),
        events: leg.events,
        ops_per_sec: leg.ops_per_sec,
        p50_micros: leg.p50_micros,
        p99_micros: leg.p99_micros,
        extra: vec![("contexts".into(), contexts)],
    });

    let cluster = Cluster::builder()
        .servers(servers)
        .worker_threads(pool)
        .class_graph(social_class_graph())
        .build()?;
    let world = deploy_social(&cluster, &social)?;
    let leg = run_leg(&cluster, |session| burst_social(session, &world, &ops))?;
    cluster.shutdown();
    results.push(BenchResult {
        bench: "fig7-social".into(),
        backend: "cluster-channel".into(),
        config: format!("servers={servers} pool={pool} {knobs}"),
        events: leg.events,
        ops_per_sec: leg.ops_per_sec,
        p50_micros: leg.p50_micros,
        p99_micros: leg.p99_micros,
        extra: vec![("contexts".into(), contexts)],
    });

    // Virtual-time leg: same graph and stream on the contention-mode
    // simulator; ops/s here are events per *virtual* second.
    let sim_config = SimRunConfig {
        servers,
        cores: pool,
        ..SimRunConfig::default()
    };
    let report = sim_social_run(&sim_config, &social, events)?;
    results.push(BenchResult {
        bench: "fig7-social".into(),
        backend: "sim-timeline".into(),
        config: format!("servers={servers} cores={pool} {knobs}"),
        events: report.events,
        ops_per_sec: report.virtual_ops_per_sec,
        p50_micros: report.mean_latency_micros,
        p99_micros: report.mean_latency_micros,
        extra: vec![
            ("contexts".into(), contexts),
            ("virtual_micros".into(), report.virtual_micros),
        ],
    });
    Ok(results)
}

// ---------------------------------------------------------------------------
// Suite: micro
// ---------------------------------------------------------------------------

fn suite_micro(options: &Options) -> Result<Vec<BenchResult>> {
    let (pool, submit_events, sat_per_thread, codec_ops) = if options.smoke {
        (2, 500, 200, 50_000)
    } else {
        (host_workers(), 20_000, 5_000, 2_000_000)
    };
    let mut results = Vec::new();

    // Submit latency: sequential submit+wait on one context measures the
    // full event round trip with no queueing noise.
    {
        let runtime = AeonRuntime::builder()
            .servers(2)
            .worker_threads(pool)
            .build()?;
        let kv = runtime.create_context(Box::new(KvContext::new("Kv")), Placement::Auto)?;
        let session = runtime.client();
        let mut latency = LatencyHistogram::new();
        let started = Instant::now();
        for _ in 0..submit_events {
            let at = Instant::now();
            Session::submit_event(&session, kv, "incr", args!["hits", 1])?.wait()?;
            latency.record(at.elapsed().as_micros() as u64);
        }
        let secs = started.elapsed().as_secs_f64();
        runtime.shutdown();
        results.push(BenchResult {
            bench: "submit-latency".into(),
            backend: "runtime".into(),
            config: format!("pool={pool} sequential events={submit_events}"),
            events: submit_events as u64,
            ops_per_sec: submit_events as f64 / secs.max(f64::MIN_POSITIVE),
            p50_micros: latency.p50_micros(),
            p99_micros: latency.p99_micros(),
            extra: Vec::new(),
        });
    }

    // Executor saturation: every worker floods its own contexts.
    {
        let threads = pool;
        let runtime = AeonRuntime::builder()
            .servers(2)
            .worker_threads(pool)
            .build()?;
        let contexts: Vec<ContextId> = (0..threads * 2)
            .map(|_| runtime.create_context(Box::new(KvContext::new("Kv")), Placement::Auto))
            .collect::<Result<_>>()?;
        let started = Instant::now();
        std::thread::scope(|scope| -> Result<()> {
            let mut joins = Vec::new();
            for thread in 0..threads {
                let session = runtime.client();
                let contexts = &contexts;
                joins.push(scope.spawn(move || -> Result<()> {
                    let mine: Vec<ContextId> = contexts
                        .iter()
                        .copied()
                        .skip(thread)
                        .step_by(threads)
                        .collect();
                    burst_events(&session, &mine, sat_per_thread, "incr", false, &|| {
                        args!["hits", 1]
                    })?;
                    Ok(())
                }));
            }
            for join in joins {
                join.join().expect("saturation thread does not panic")?;
            }
            Ok(())
        })?;
        let secs = started.elapsed().as_secs_f64();
        let events = (threads * sat_per_thread) as u64;
        let latency = runtime.stats().latency_summary();
        let stats = runtime.executor_stats();
        runtime.shutdown();
        results.push(BenchResult {
            bench: "executor-saturation".into(),
            backend: "runtime".into(),
            config: format!(
                "pool={pool} threads={threads} contexts={} events={events}",
                contexts.len()
            ),
            events,
            ops_per_sec: events as f64 / secs.max(f64::MIN_POSITIVE),
            p50_micros: latency.p50_micros,
            p99_micros: latency.p99_micros,
            extra: vec![("batched".into(), stats.batched)],
        });
    }

    // Wire codec: encode/decode per-1024-op batches of a representative
    // protocol payload (the public `aeon_types::codec` is the cluster's
    // wire format).
    {
        let payload = Value::map([
            ("method", Value::from("transfer")),
            ("amount", Value::from(1234i64)),
            (
                "trace",
                Value::List((0..8).map(|i| Value::from(format!("hop-{i}"))).collect()),
            ),
        ]);
        let encoded = codec::encode(&payload);
        for (name, decode) in [("wire-encode", false), ("wire-decode", true)] {
            let mut latency = LatencyHistogram::new();
            let mut done = 0usize;
            let started = Instant::now();
            while done < codec_ops {
                let batch = 1024.min(codec_ops - done);
                let at = Instant::now();
                for _ in 0..batch {
                    if decode {
                        std::hint::black_box(codec::decode(std::hint::black_box(&encoded))?);
                    } else {
                        std::hint::black_box(codec::encode(std::hint::black_box(&payload)));
                    }
                }
                latency.record(at.elapsed().as_micros() as u64);
                done += batch;
            }
            let secs = started.elapsed().as_secs_f64();
            results.push(BenchResult {
                bench: name.into(),
                backend: "types-codec".into(),
                config: format!("payload_bytes={} batch=1024 ops={codec_ops}", encoded.len()),
                events: codec_ops as u64,
                ops_per_sec: codec_ops as f64 / secs.max(f64::MIN_POSITIVE),
                p50_micros: latency.p50_micros(),
                p99_micros: latency.p99_micros(),
                extra: Vec::new(),
            });
        }
    }
    Ok(results)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

fn run_suites(options: &Options) -> Result<()> {
    type Suite = (&'static str, fn(&Options) -> Result<Vec<BenchResult>>);
    let suites: [Suite; 5] = [
        ("fig5-game", suite_fig5_game),
        ("fig6-tpcc", suite_fig6_tpcc),
        ("readonly", suite_readonly),
        ("fig7-social", suite_fig7_social),
        ("micro", suite_micro),
    ];
    let mut ran = 0;
    for (name, run) in suites {
        if !options.wants(name) {
            continue;
        }
        let results = run(options)?;
        write_document(options, name, &results)?;
        ran += 1;
    }
    if ran == 0 {
        return Err(aeon_types::AeonError::Config(format!(
            "no suite matched --only={}",
            options.only.as_deref().unwrap_or_default().join(",")
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// --validate: a minimal JSON parser plus the aeon-bench/v1 schema check
// ---------------------------------------------------------------------------

/// A parsed JSON value (hand-rolled: the build environment has no JSON
/// dependency, and the vendored serde is a marker-trait stub).
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> std::result::Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> std::result::Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> std::result::Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> std::result::Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> std::result::Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                byte => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match byte {
                        0xf0..=0xf7 => 4,
                        0xe0..=0xef => 3,
                        0xc0..=0xdf => 2,
                        _ => 1,
                    };
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| "truncated UTF-8".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .copied()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

/// Checks one parsed document against the `aeon-bench/v1` schema.
fn validate_schema(doc: &Json) -> std::result::Result<usize, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != "aeon-bench/v1" {
        return Err(format!(
            "unknown schema {schema:?} (expected \"aeon-bench/v1\")"
        ));
    }
    doc.get("name")
        .and_then(Json::as_str)
        .ok_or("missing string field \"name\"")?;
    match doc.get("smoke") {
        Some(Json::Bool(_)) => {}
        _ => return Err("missing bool field \"smoke\"".to_string()),
    }
    doc.get("fingerprint")
        .and_then(Json::as_str)
        .ok_or("missing string field \"fingerprint\"")?;
    let results = match doc.get("results") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        Some(Json::Arr(_)) => return Err("\"results\" must not be empty".to_string()),
        _ => return Err("missing array field \"results\"".to_string()),
    };
    for (i, result) in results.iter().enumerate() {
        for key in ["bench", "backend", "config"] {
            result
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing string field {key:?}"))?;
        }
        for key in ["events", "ops_per_sec", "p50_micros", "p99_micros"] {
            let value = result
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("results[{i}]: missing number field {key:?}"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "results[{i}]: field {key:?} must be a finite non-negative number"
                ));
            }
        }
        match result.get("extra") {
            None => {}
            Some(Json::Obj(fields)) => {
                for (key, value) in fields {
                    if value.as_num().is_none() {
                        return Err(format!("results[{i}]: extra[{key:?}] must be a number"));
                    }
                }
            }
            Some(_) => return Err(format!("results[{i}]: \"extra\" must be an object")),
        }
    }
    Ok(results.len())
}

fn validate_main(options: &Options) -> i32 {
    let files = if options.files.is_empty() {
        match std::fs::read_dir(&options.out_dir) {
            Ok(entries) => {
                let mut files: Vec<String> = entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path().to_string_lossy().into_owned())
                    .filter(|p| {
                        let name = p.rsplit('/').next().unwrap_or(p);
                        name.starts_with("BENCH_") && name.ends_with(".json")
                    })
                    .collect();
                files.sort();
                files
            }
            Err(e) => {
                eprintln!("aeon-bench: cannot read {}: {e}", options.out_dir);
                return 1;
            }
        }
    } else {
        options.files.clone()
    };
    if files.is_empty() {
        eprintln!(
            "aeon-bench: no BENCH_*.json files found in {}",
            options.out_dir
        );
        return 1;
    }
    let mut failures = 0;
    for file in &files {
        let outcome = std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|text| Parser::parse(&text))
            .and_then(|doc| validate_schema(&doc));
        match outcome {
            Ok(results) => println!("{file}: ok ({results} results)"),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_results() -> Vec<BenchResult> {
        vec![
            BenchResult {
                bench: "readonly".into(),
                backend: "runtime+fastpath".into(),
                config: "pool=8 accounts=16 events=60000".into(),
                events: 60_000,
                ops_per_sec: 123_456.78,
                p50_micros: 12,
                p99_micros: 340,
                extra: vec![("fast_path_events".into(), 60_000)],
            },
            BenchResult {
                bench: "readonly".into(),
                backend: "runtime".into(),
                config: "pool=8 accounts=16 events=60000".into(),
                events: 60_000,
                ops_per_sec: 98_765.43,
                p50_micros: 25,
                p99_micros: 900,
                extra: Vec::new(),
            },
        ]
    }

    #[test]
    fn emitted_documents_round_trip_and_validate() {
        let doc = render_document("readonly", false, &sample_results());
        let parsed = Parser::parse(&doc).expect("emitted JSON parses");
        assert_eq!(validate_schema(&parsed), Ok(2));
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("aeon-bench/v1")
        );
        let results = match parsed.get("results") {
            Some(Json::Arr(items)) => items,
            other => panic!("unexpected results shape: {other:?}"),
        };
        assert_eq!(
            results[0]
                .get("extra")
                .and_then(|e| e.get("fast_path_events"))
                .and_then(Json::as_num),
            Some(60_000.0)
        );
        assert_eq!(results[1].get("extra"), None);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let parsed = Parser::parse(
            r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\"\nA"}, "d": [true, false, null]}"#,
        )
        .expect("parses");
        assert_eq!(
            parsed.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Num(1000.0)
            ]))
        );
        assert_eq!(
            parsed
                .get("b")
                .and_then(|b| b.get("c"))
                .and_then(Json::as_str),
            Some("x\"\nA")
        );
    }

    #[test]
    fn schema_rejects_malformed_documents() {
        for (doc, why) in [
            (r#"{"schema": "other/v1"}"#, "wrong schema"),
            (
                r#"{"schema": "aeon-bench/v1", "name": "x", "smoke": false, "fingerprint": "f", "results": []}"#,
                "empty results",
            ),
            (
                r#"{"schema": "aeon-bench/v1", "name": "x", "smoke": false, "fingerprint": "f",
                   "results": [{"bench": "b", "backend": "r", "config": "c", "events": 1,
                                "ops_per_sec": 1.0, "p50_micros": 1}]}"#,
                "missing p99",
            ),
        ] {
            let parsed = Parser::parse(doc).expect("parses");
            assert!(validate_schema(&parsed).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
