//! Figure 5a: game application scale-out — throughput (events/s) as the
//! number of servers grows, for every system.

use aeon_apps::GameWorkloadConfig;
use aeon_bench::{cell, header, live_game_run, pool_size_knob, run_game};
use aeon_sim::SystemKind;

fn main() {
    header(&[
        "servers",
        "EventWave",
        "Orleans",
        "Orleans*",
        "AEON_SO",
        "AEON",
    ]);
    for servers in [2usize, 4, 8, 12, 16] {
        let config = GameWorkloadConfig::for_servers(servers);
        let mut row = vec![servers.to_string()];
        for system in SystemKind::ALL {
            let (metrics, horizon) = run_game(system, &config);
            row.push(cell(metrics.throughput(Some(horizon))));
        }
        println!("{}", row.join("\t"));
    }
    // Optional live validation on the real runtime's sharded worker pool
    // (`--pool-size N` / AEON_POOL_SIZE).
    if let Some(pool) = pool_size_knob() {
        match live_game_run(pool, 4, 50) {
            Ok(report) => println!("{}", report.footnote("game scale-out")),
            Err(e) => eprintln!("live run failed: {e}"),
        }
    }
}
