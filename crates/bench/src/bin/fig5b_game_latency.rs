//! Figure 5b: game application latency vs throughput at 8 servers, obtained
//! by sweeping the offered load.

use aeon_apps::GameWorkloadConfig;
use aeon_bench::{cell, header, live_game_run, pool_size_knob, run_game};
use aeon_sim::SystemKind;

fn main() {
    header(&[
        "system",
        "offered_rps",
        "throughput_rps",
        "mean_latency_ms",
        "p99_latency_ms",
    ]);
    for system in SystemKind::ALL {
        for load in [
            2_000.0, 4_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0, 14_000.0, 16_000.0,
        ] {
            let config = GameWorkloadConfig {
                servers: 8,
                request_rate: load,
                ..GameWorkloadConfig::default()
            };
            let (metrics, horizon) = run_game(system, &config);
            println!(
                "{system}\t{load}\t{}\t{}\t{}",
                cell(metrics.throughput(Some(horizon))),
                cell(metrics.mean_latency_ms()),
                cell(metrics.latency_percentile_ms(0.99)),
            );
        }
    }
    // Optional live latency validation on the real runtime's sharded
    // worker pool (`--pool-size N` / AEON_POOL_SIZE).
    if let Some(pool) = pool_size_knob() {
        match live_game_run(pool, 8, 25) {
            Ok(report) => println!("{}", report.footnote("game latency")),
            Err(e) => eprintln!("live run failed: {e}"),
        }
    }
}
