//! Ablation: what does distribution cost?
//!
//! The paper's prototype always runs distributed (Mace servers on EC2); this
//! repository has both an in-process runtime and a message-passing cluster,
//! so we can isolate the overhead of the distributed execution path itself:
//!
//! * `in-process` — the shared-memory runtime (`aeon-runtime`);
//! * `cluster-colocated` — the distributed cluster with every context of a
//!   partition on the same server (the placement the paper's runtime aims
//!   for: Rooms, Players and Items co-located);
//! * `cluster-scattered` — the distributed cluster with children placed on a
//!   different server than their owner, so every child call crosses the
//!   network.
//!
//! The output reports events per second and the local/remote message split.
//! Expected shape: co-located ≈ in-process (the protocol, not the network,
//! dominates), scattered pays per-call messaging overhead — which is why the
//! paper's locality-aware placement matters (§6.1.1, reason 2 for beating
//! Orleans).

use aeon_bench::header;
use aeon_cluster::Cluster;
use aeon_runtime::{AeonRuntime, ContextObject, Invocation, KvContext, Placement};
use aeon_types::{args, AeonError, Args, Result, Value};
use std::sync::Arc;
use std::time::Instant;

/// A Room-like parent that updates all of its items within one event.
#[derive(Debug, Default)]
struct Room;

impl ContextObject for Room {
    fn class_name(&self) -> &str {
        "Room"
    }

    fn handle(&mut self, method: &str, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            "update_items" => {
                for item in inv.children(None)? {
                    inv.call(item, "incr", args!["version", 1i64])?;
                }
                Ok(Value::Null)
            }
            _ => Err(AeonError::UnknownMethod { class: "Room".into(), method: method.into() }),
        }
    }
}

const ROOMS: usize = 4;
const ITEMS_PER_ROOM: usize = 4;
const EVENTS_PER_ROOM: usize = 200;
const CLIENTS_PER_ROOM: usize = 2;

fn run_in_process() -> (f64, u64, u64) {
    let runtime = AeonRuntime::builder().servers(ROOMS).build().unwrap();
    let mut rooms = Vec::new();
    for _ in 0..ROOMS {
        let room = runtime.create_context(Box::new(Room), Placement::Auto).unwrap();
        for _ in 0..ITEMS_PER_ROOM {
            runtime
                .create_owned_context(Box::new(KvContext::new("Item")), &[room])
                .unwrap();
        }
        rooms.push(room);
    }
    let runtime = Arc::new(runtime);
    let started = Instant::now();
    let mut workers = Vec::new();
    for room in &rooms {
        for _ in 0..CLIENTS_PER_ROOM {
            let runtime = Arc::clone(&runtime);
            let room = *room;
            workers.push(std::thread::spawn(move || {
                let client = runtime.client();
                for _ in 0..EVENTS_PER_ROOM / CLIENTS_PER_ROOM {
                    client.call(room, "update_items", args![]).unwrap();
                }
            }));
        }
    }
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let events = (ROOMS * EVENTS_PER_ROOM) as f64;
    runtime.shutdown();
    (events / elapsed, 0, 0)
}

fn run_cluster(scattered: bool) -> (f64, u64, u64) {
    let cluster = Cluster::builder().servers(ROOMS).build().unwrap();
    let servers = cluster.servers();
    let mut rooms = Vec::new();
    for (i, _) in (0..ROOMS).enumerate() {
        let room_server = servers[i % servers.len()];
        let room = cluster.create_context(Box::new(Room), Some(room_server)).unwrap();
        for j in 0..ITEMS_PER_ROOM {
            let item_server = if scattered {
                servers[(i + 1 + j) % servers.len()]
            } else {
                room_server
            };
            let item = cluster
                .create_context(Box::new(KvContext::new("Item")), Some(item_server))
                .unwrap();
            cluster.add_ownership(room, item).unwrap();
        }
        rooms.push(room);
    }
    let base_local = cluster.network_stats().local_messages();
    let base_remote = cluster.network_stats().remote_messages();
    let cluster = Arc::new(cluster);
    let started = Instant::now();
    let mut workers = Vec::new();
    for room in &rooms {
        for _ in 0..CLIENTS_PER_ROOM {
            let cluster = Arc::clone(&cluster);
            let room = *room;
            workers.push(std::thread::spawn(move || {
                let client = cluster.client();
                for _ in 0..EVENTS_PER_ROOM / CLIENTS_PER_ROOM {
                    client.call(room, "update_items", args![]).unwrap();
                }
            }));
        }
    }
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let events = (ROOMS * EVENTS_PER_ROOM) as f64;
    let local = cluster.network_stats().local_messages() - base_local;
    let remote = cluster.network_stats().remote_messages() - base_remote;
    cluster.shutdown();
    (events / elapsed, local, remote)
}

fn main() {
    println!("== ablation_distribution ==");
    println!(
        "workload: {ROOMS} rooms x {ITEMS_PER_ROOM} items, {EVENTS_PER_ROOM} update events per room"
    );
    header(&["deployment", "events_per_s", "local_msgs", "remote_msgs"]);
    let (throughput, local, remote) = run_in_process();
    println!("in-process\t{throughput:.2}\t{local}\t{remote}");
    let (throughput, local, remote) = run_cluster(false);
    println!("cluster-colocated\t{throughput:.2}\t{local}\t{remote}");
    let (throughput, local, remote) = run_cluster(true);
    println!("cluster-scattered\t{throughput:.2}\t{local}\t{remote}");
}
