//! Ablation: what does distribution cost?
//!
//! The paper's prototype always runs distributed (Mace servers on EC2); this
//! repository has both an in-process runtime and a message-passing cluster,
//! so we can isolate the overhead of the distributed execution path itself:
//!
//! * `in-process` — the shared-memory runtime (`aeon-runtime`);
//! * `cluster-colocated` — the distributed cluster with every context of a
//!   partition on the same server (the placement the paper's runtime aims
//!   for: Rooms, Players and Items co-located);
//! * `cluster-scattered` — the distributed cluster with children placed on a
//!   different server than their owner, so every child call crosses the
//!   network.
//!
//! All three configurations run the *same* driver through the unified
//! `Deployment` API; only the backend and the placement differ.
//!
//! The output reports events per second and the local/remote message split.
//! Expected shape: co-located ≈ in-process (the protocol, not the network,
//! dominates), scattered pays per-call messaging overhead — which is why the
//! paper's locality-aware placement matters (§6.1.1, reason 2 for beating
//! Orleans).

use aeon_api::{Deployment, Placement};
use aeon_bench::header;
use aeon_cluster::Cluster;
use aeon_runtime::{context_class, AeonRuntime, Invocation, KvContext};
use aeon_types::{args, Args, Result, Value};
use std::sync::Arc;
use std::time::Instant;

/// A Room-like parent that updates all of its items within one event.
#[derive(Debug, Default)]
struct Room;

impl Room {
    fn update_items(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        for item in inv.children(None)? {
            inv.call(item, "incr", args!["version", 1i64])?;
        }
        Ok(Value::Null)
    }
}

context_class! {
    Room: "Room" {
        method "update_items" => Room::update_items,
    }
}

const ROOMS: usize = 4;
const ITEMS_PER_ROOM: usize = 4;
const EVENTS_PER_ROOM: usize = 200;
const CLIENTS_PER_ROOM: usize = 2;

/// Deploys rooms+items and drives the update workload through any backend.
/// `scattered` controls whether items land next to their room or on the
/// next servers round-robin.
fn run(deployment: &(impl Deployment + Clone + 'static), scattered: bool) -> f64 {
    let servers = deployment.servers();
    let mut rooms = Vec::new();
    for i in 0..ROOMS {
        let room_server = servers[i % servers.len()];
        let room = deployment
            .create_context(Box::new(Room), Placement::Server(room_server))
            .unwrap();
        for j in 0..ITEMS_PER_ROOM {
            let item_placement = if scattered {
                Placement::Server(servers[(i + 1 + j) % servers.len()])
            } else {
                Placement::Server(room_server)
            };
            let item = deployment
                .create_context(Box::new(KvContext::new("Item")), item_placement)
                .unwrap();
            deployment.add_ownership(room, item).unwrap();
        }
        rooms.push(room);
    }
    let deployment = Arc::new(deployment.clone());
    let started = Instant::now();
    let mut workers = Vec::new();
    for room in &rooms {
        for _ in 0..CLIENTS_PER_ROOM {
            let deployment = Arc::clone(&deployment);
            let room = *room;
            workers.push(std::thread::spawn(move || {
                let session = deployment.session();
                for _ in 0..EVENTS_PER_ROOM / CLIENTS_PER_ROOM {
                    session.call(room, "update_items", args![]).unwrap();
                }
            }));
        }
    }
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    (ROOMS * EVENTS_PER_ROOM) as f64 / elapsed
}

fn main() {
    println!("== ablation_distribution ==");
    println!(
        "workload: {ROOMS} rooms x {ITEMS_PER_ROOM} items, {EVENTS_PER_ROOM} update events per room"
    );
    header(&["deployment", "events_per_s", "local_msgs", "remote_msgs"]);

    let runtime = AeonRuntime::builder().servers(ROOMS).build().unwrap();
    let throughput = run(&runtime, false);
    runtime.shutdown();
    println!("in-process\t{throughput:.2}\t0\t0");

    for (label, scattered) in [("cluster-colocated", false), ("cluster-scattered", true)] {
        let cluster = Cluster::builder().servers(ROOMS).build().unwrap();
        let base_local = cluster.network_stats().local_messages();
        let base_remote = cluster.network_stats().remote_messages();
        let throughput = run(&cluster, scattered);
        let local = cluster.network_stats().local_messages() - base_local;
        let remote = cluster.network_stats().remote_messages() - base_remote;
        cluster.shutdown();
        println!("{label}\t{throughput:.2}\t{local}\t{remote}");
    }
}
