//! Table 1: percentage of requests violating the 10 ms SLA and average
//! number of servers, per setup.

use aeon_bench::cell;
use aeon_sim::{elastic::run_elastic, ElasticConfig, ElasticSetup};

fn main() {
    let config = ElasticConfig::paper_default();
    println!("setup\tpct_requests_gt_10ms\tavg_servers");
    for setup in [
        ElasticSetup::Static(8),
        ElasticSetup::Static(16),
        ElasticSetup::Static(22),
        ElasticSetup::Static(32),
        ElasticSetup::Elastic { initial: 8 },
    ] {
        let outcome = run_elastic(&config, setup);
        println!(
            "{setup}\t{}\t{}",
            cell(outcome.violation_percent()),
            cell(outcome.average_servers()),
        );
    }
}
