//! Figure 8: overall throughput over time while migrating 1, 8 or 12 Room
//! contexts (1 MB each) on a 20-server deployment.

use aeon_bench::cell;
use aeon_sim::{migration_impact, MigrationImpactConfig};

fn main() {
    println!("time_s\tcontexts_migrated\tevents_per_s");
    for contexts in [1usize, 8, 12] {
        let config = MigrationImpactConfig {
            contexts_migrated: contexts,
            ..Default::default()
        };
        let series = migration_impact(&config);
        for (t, throughput, _latency) in &series.points {
            println!(
                "{}\t{contexts}\t{}",
                t.as_secs_f64() as u64,
                cell(*throughput)
            );
        }
    }
}
