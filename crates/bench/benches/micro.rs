//! Criterion micro-benchmarks of the framework's hot paths plus the
//! ablation called out in DESIGN.md (async vs synchronous child calls,
//! single vs multiple ownership contention).

use aeon_api::Session;
use aeon_apps::game::{deploy_game, game_class_graph};
use aeon_ownership::{dominator_of, DominatorMode, OwnershipGraph};
use aeon_runtime::{AeonRuntime, ContextLock, KvContext, Placement};
use aeon_types::{args, codec, AccessMode, ContextId, EventId, Value};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn ownership_benches(c: &mut Criterion) {
    let (graph, ids) = aeon_ownership::fixtures::game_graph();
    c.bench_function("dominator/paper_formula", |b| {
        b.iter(|| dominator_of(&graph, ids.player1, DominatorMode::PaperFormula).unwrap())
    });
    c.bench_function("dominator/closure", |b| {
        b.iter(|| dominator_of(&graph, ids.player1, DominatorMode::Closure).unwrap())
    });
    c.bench_function("ownership/add_remove_edge", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g: OwnershipGraph| {
                g.remove_edge(ids.player1, ids.treasure).unwrap();
                g.add_edge(ids.player1, ids.treasure).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn lock_benches(c: &mut Criterion) {
    let lock = ContextLock::new(ContextId::new(1));
    let mut next = 0u64;
    c.bench_function("lock/activate_release_exclusive", |b| {
        b.iter(|| {
            next += 1;
            let event = EventId::new(next);
            lock.activate(event, AccessMode::Exclusive).unwrap();
            lock.release(event);
        })
    });
}

fn codec_benches(c: &mut Criterion) {
    let value = Value::map([
        (
            "players",
            Value::from((0..64u64).map(ContextId::new).collect::<Vec<_>>()),
        ),
        ("gold", Value::from(123_456i64)),
        ("name", Value::from("the kings room")),
    ]);
    c.bench_function("codec/encode_decode", |b| {
        b.iter(|| {
            let bytes = codec::encode(&value);
            codec::decode(&bytes).unwrap()
        })
    });
}

fn runtime_benches(c: &mut Criterion) {
    // End-to-end event latency on the real runtime (single context).
    let runtime = AeonRuntime::builder().servers(2).build().unwrap();
    let kv = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    c.bench_function("runtime/single_context_event", |b| {
        b.iter(|| client.call(kv, "incr", args!["n", 1]).unwrap())
    });

    // Multi-context event through the game world: the get_gold event of
    // Listing 1 (player -> mine -> shared treasure).
    let game_runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(game_class_graph())
        .build()
        .unwrap();
    let world = deploy_game(&game_runtime, 1, 2).unwrap();
    let game_client = game_runtime.client();
    let player = world.players[0][0];
    c.bench_function("runtime/multi_context_get_gold_event", |b| {
        b.iter(|| game_client.call(player, "get_gold", args![1]).unwrap())
    });
    c.bench_function("runtime/readonly_event", |b| {
        b.iter(|| {
            game_client
                .call_readonly(player, "treasure_balance", args![])
                .unwrap()
        })
    });

    // Ablation: async (deferred) vs synchronous fan-out to children.
    let building = world.building;
    c.bench_function("ablation/async_fanout_update_time", |b| {
        b.iter(|| {
            game_client
                .call(building, "update_time_of_day", args![])
                .unwrap()
        })
    });
    c.bench_function("ablation/sync_fanout_count_players", |b| {
        b.iter(|| {
            game_client
                .call_readonly(building, "count_players", args![])
                .unwrap()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = ownership_benches, lock_benches, codec_benches, runtime_benches
}
criterion_main!(benches);
