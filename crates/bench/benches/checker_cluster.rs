//! Criterion micro-benchmarks of the serializability checker and of the
//! distributed deployment (local vs. cross-server events), complementing the
//! protocol-level benchmarks in `micro.rs`.

use aeon_api::Session;
use aeon_checker::generator::{locked_history, GeneratorConfig};
use aeon_checker::{check_strict_serializability, HistoryRecorder, OpKind};
use aeon_cluster::Cluster;
use aeon_runtime::{AeonRuntime, KvContext, Placement};
use aeon_types::{args, ContextId, EventId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn checker_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/strict_serializability");
    for events in [50usize, 200, 800] {
        let config = GeneratorConfig {
            events,
            contexts: 16,
            ops_per_event: 4,
            read_percent: 40,
            seed: 11,
        };
        let history = locked_history(&config);
        group.bench_with_input(
            BenchmarkId::from_parameter(events),
            &history,
            |b, history| b.iter(|| check_strict_serializability(history).unwrap()),
        );
    }
    group.finish();

    c.bench_function("checker/record_operation", |b| {
        let recorder = HistoryRecorder::new();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            recorder.record(EventId::new(n), ContextId::new(n % 64), OpKind::Write);
        })
    });
}

fn runtime_vs_cluster_benches(c: &mut Criterion) {
    // The same single-context increment issued through the in-process
    // runtime and through the distributed cluster (gateway + messages).
    let runtime = AeonRuntime::builder().servers(2).build().unwrap();
    let runtime_counter = runtime
        .create_context(Box::new(KvContext::new("Counter")), Placement::Auto)
        .unwrap();
    let runtime_client = runtime.client();
    c.bench_function("deployment/in_process_event", |b| {
        b.iter(|| {
            runtime_client
                .call(runtime_counter, "incr", args!["hits", 1i64])
                .unwrap()
        })
    });

    let cluster = Cluster::builder().servers(2).build().unwrap();
    let servers = cluster.servers();
    let local_counter = cluster
        .create_context(
            Box::new(KvContext::new("Counter")),
            Placement::Server(servers[0]),
        )
        .unwrap();
    let cluster_client = cluster.client();
    c.bench_function("deployment/cluster_event", |b| {
        b.iter(|| {
            cluster_client
                .call(local_counter, "incr", args!["hits", 1i64])
                .unwrap()
        })
    });

    // Cross-server call: parent on server 0, child on server 1, each event
    // traverses the network twice (call + reply) on top of routing.
    let parent = cluster
        .create_context(
            Box::new(KvContext::new("Room")),
            Placement::Server(servers[0]),
        )
        .unwrap();
    let child = cluster
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(servers[1]),
        )
        .unwrap();
    cluster.add_ownership(parent, child).unwrap();
    c.bench_function("deployment/cluster_remote_child_event", |b| {
        b.iter(|| {
            cluster_client
                .call(child, "incr", args!["hits", 1i64])
                .unwrap()
        })
    });

    runtime.shutdown();
    cluster.shutdown();
}

criterion_group!(benches, checker_benches, runtime_vs_cluster_benches);
criterion_main!(benches);
