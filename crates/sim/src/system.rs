//! The systems compared by the paper's evaluation.

use std::fmt;

/// The coordination protocol / framework a workload is run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// AEON with multi-ownership (the full system).
    Aeon,
    /// AEON restricted to single ownership (the paper's `AEON_SO`).
    AeonSo,
    /// EventWave: a context tree with total ordering at the root.
    EventWave,
    /// Orleans with coarse locking to obtain strict serializability.
    OrleansStrict,
    /// Orleans without cross-grain synchronisation (not serializable;
    /// best-case performance baseline, called Orleans* in the paper).
    OrleansStar,
}

impl SystemKind {
    /// All systems, in the order the paper's figures list them.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::EventWave,
        SystemKind::OrleansStrict,
        SystemKind::OrleansStar,
        SystemKind::AeonSo,
        SystemKind::Aeon,
    ];

    /// CPU overhead multiplier relative to the AEON C++ implementation.
    /// The paper attributes part of the Orleans gap to the managed (C#)
    /// runtime; this factor makes that assumption explicit and tunable.
    pub fn cpu_overhead(self) -> f64 {
        match self {
            SystemKind::Aeon | SystemKind::AeonSo => 1.0,
            SystemKind::EventWave => 1.0,
            SystemKind::OrleansStrict | SystemKind::OrleansStar => 1.6,
        }
    }

    /// Whether the runtime co-locates contexts with their owners (AEON's
    /// dominator-aware placement).  Orleans distributes grains randomly.
    pub fn locality_placement(self) -> bool {
        !matches!(self, SystemKind::OrleansStrict | SystemKind::OrleansStar)
    }

    /// Whether every event is additionally ordered at the single tree root.
    pub fn orders_at_root(self) -> bool {
        matches!(self, SystemKind::EventWave)
    }

    /// Whether the system provides strict serializability.
    pub fn strictly_serializable(self) -> bool {
        !matches!(self, SystemKind::OrleansStar)
    }

    /// Whether the application may use multiple ownership.
    pub fn multi_ownership(self) -> bool {
        matches!(
            self,
            SystemKind::Aeon | SystemKind::OrleansStrict | SystemKind::OrleansStar
        )
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SystemKind::Aeon => "AEON",
            SystemKind::AeonSo => "AEON_SO",
            SystemKind::EventWave => "EventWave",
            SystemKind::OrleansStrict => "Orleans",
            SystemKind::OrleansStar => "Orleans*",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_match_figure_1_summary() {
        // Figure 1 of the paper: consistency and progress per system.
        assert!(SystemKind::Aeon.strictly_serializable());
        assert!(SystemKind::AeonSo.strictly_serializable());
        assert!(SystemKind::EventWave.strictly_serializable());
        assert!(SystemKind::OrleansStrict.strictly_serializable());
        assert!(!SystemKind::OrleansStar.strictly_serializable());
        assert!(SystemKind::EventWave.orders_at_root());
        assert!(!SystemKind::Aeon.orders_at_root());
        assert!(SystemKind::Aeon.locality_placement());
        assert!(!SystemKind::OrleansStar.locality_placement());
        assert!(SystemKind::Aeon.multi_ownership());
        assert!(!SystemKind::AeonSo.multi_ownership());
    }

    #[test]
    fn overheads_and_names() {
        assert_eq!(SystemKind::Aeon.cpu_overhead(), 1.0);
        assert!(SystemKind::OrleansStar.cpu_overhead() > 1.0);
        assert_eq!(SystemKind::Aeon.to_string(), "AEON");
        assert_eq!(SystemKind::OrleansStar.to_string(), "Orleans*");
        assert_eq!(SystemKind::ALL.len(), 5);
    }
}
