//! The greedy timeline simulation engine.

use crate::cluster::SimCluster;
use crate::metrics::Metrics;
use crate::request::RequestSpec;
use aeon_types::SimTime;

/// Runs request timelines against a cluster.
#[derive(Debug, Default)]
pub struct Simulator;

impl Simulator {
    /// Creates a simulator.
    pub fn new() -> Self {
        Self
    }

    /// Simulates `requests` (any order; they are sorted by arrival time)
    /// against `cluster` and returns the collected metrics.
    ///
    /// The timeline of one request is:
    ///
    /// 1. one network hop from the client to the server of its first step;
    /// 2. acquisition of every sequencer lock (exclusive, or shared for
    ///    read-only requests), held until the last step completes;
    /// 3. for each step: a network hop when the step's context lives on a
    ///    different server than the previous one, the per-context lock when
    ///    the step is `locked`, and the CPU service time on the hosting
    ///    server;
    /// 4. one network hop back to the client.
    pub fn run(&self, cluster: &mut SimCluster, requests: &[RequestSpec]) -> Metrics {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| requests[i].arrival);
        let mut metrics = Metrics::new();
        for idx in order {
            let request = &requests[idx];
            let (end, latency) = self.run_one(cluster, request);
            metrics.record(end, latency, request.readonly);
        }
        metrics
    }

    fn run_one(
        &self,
        cluster: &mut SimCluster,
        request: &RequestSpec,
    ) -> (SimTime, aeon_types::SimDuration) {
        let mut now = request.arrival;
        // Client -> entry server hop.
        now += cluster.sample_latency();

        // Sequencer acquisition (dominator, plus the root for EventWave).
        let mut sequencer_starts = Vec::with_capacity(request.sequencers.len());
        for &seq in &request.sequencers {
            let lock = cluster.lock_mut(seq);
            let start = if request.readonly {
                lock.next_shared_start(now)
            } else {
                lock.next_exclusive_start(now)
            };
            sequencer_starts.push(seq);
            now = start;
        }

        // Execute the steps.
        let mut current_server = request
            .steps
            .first()
            .map(|s| cluster.server_of(s.context))
            .unwrap_or_else(|| {
                cluster.server_of(
                    *request
                        .sequencers
                        .first()
                        .unwrap_or(&aeon_types::ContextId::new(0)),
                )
            });
        for step in &request.steps {
            let server = cluster.server_of(step.context);
            if server != current_server {
                now += cluster.sample_latency();
                current_server = server;
            }
            let service = cluster.scaled_cpu(step.cpu);
            let mut start = now;
            if step.locked {
                let lock = cluster.lock_mut(step.context);
                start = if request.readonly {
                    lock.next_shared_start(start)
                } else {
                    lock.next_exclusive_start(start)
                };
            }
            let end = cluster.cpu_of_mut(step.context).run(start, service);
            if step.locked {
                let lock = cluster.lock_mut(step.context);
                if request.readonly {
                    lock.hold_shared_until(end);
                } else {
                    lock.hold_exclusive_until(end);
                }
            }
            now = end;
        }

        // Release sequencers: they were held for the whole execution.
        for seq in sequencer_starts {
            let lock = cluster.lock_mut(seq);
            if request.readonly {
                lock.hold_shared_until(now);
            } else {
                lock.hold_exclusive_until(now);
            }
        }

        // Reply hop.
        now += cluster.sample_latency();
        (now, now - request.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Step;
    use aeon_net::LatencyModel;
    use aeon_types::{ContextId, ServerId, SimDuration};

    fn ctx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    fn quiet_cluster(servers: usize) -> SimCluster {
        SimCluster::new(servers, 1).with_latency(LatencyModel::Zero)
    }

    fn uniform_requests(
        n: usize,
        target: ContextId,
        every_us: u64,
        cpu_us: u64,
    ) -> Vec<RequestSpec> {
        (0..n)
            .map(|i| {
                RequestSpec::new(
                    SimTime::from_micros(i as u64 * every_us),
                    vec![target],
                    vec![Step::new(target, SimDuration::from_micros(cpu_us))],
                )
            })
            .collect()
    }

    #[test]
    fn uncontended_requests_have_service_latency() {
        let mut cluster = quiet_cluster(1);
        cluster.place(ctx(1), ServerId::new(0));
        // Requests spaced far apart: latency = service time.
        let requests = uniform_requests(10, ctx(1), 10_000, 500);
        let metrics = Simulator::new().run(&mut cluster, &requests);
        assert_eq!(metrics.count(), 10);
        assert!((metrics.mean_latency_ms() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn contention_on_a_sequencer_serializes_requests() {
        let mut cluster = quiet_cluster(4);
        cluster.place(ctx(1), ServerId::new(0));
        // All requests arrive at once: the k-th waits for k-1 predecessors.
        let requests = uniform_requests(10, ctx(1), 0, 1_000);
        let metrics = Simulator::new().run(&mut cluster, &requests);
        assert!((metrics.makespan().as_millis_f64() - 10.0).abs() < 1e-6);
        // Mean latency of a saturated FIFO chain: (1+2+...+10)/10 = 5.5ms.
        assert!((metrics.mean_latency_ms() - 5.5).abs() < 1e-6);
    }

    #[test]
    fn independent_sequencers_run_in_parallel_across_servers() {
        let mut cluster = quiet_cluster(2);
        cluster.place(ctx(1), ServerId::new(0));
        cluster.place(ctx(2), ServerId::new(1));
        let mut requests = uniform_requests(10, ctx(1), 0, 1_000);
        requests.extend(uniform_requests(10, ctx(2), 0, 1_000));
        let metrics = Simulator::new().run(&mut cluster, &requests);
        // Both chains finish at 10ms, not 20ms.
        assert!((metrics.makespan().as_millis_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn readonly_requests_share_the_sequencer() {
        // Put the shared context on a 4-core server so that read-only
        // requests can actually overlap on the CPU as well.
        let mut cluster4 = SimCluster::new(1, 4).with_latency(LatencyModel::Zero);
        cluster4.place(ctx(1), ServerId::new(0));
        let requests: Vec<RequestSpec> = (0..4)
            .map(|_| {
                RequestSpec::new(
                    SimTime::ZERO,
                    vec![ctx(1)],
                    vec![Step::new(ctx(1), SimDuration::from_millis(1))],
                )
                .readonly()
            })
            .collect();
        let metrics = Simulator::new().run(&mut cluster4, &requests);
        // All four overlap: makespan stays ~1ms instead of 4ms.
        assert!(metrics.makespan().as_millis_f64() < 1.5);
    }

    #[test]
    fn cross_server_steps_pay_network_hops() {
        let make_cluster = || {
            let mut c =
                SimCluster::new(2, 1).with_latency(LatencyModel::Constant { micros: 1_000 });
            c.place(ctx(1), ServerId::new(0));
            c.place(ctx(2), ServerId::new(1));
            c
        };
        let local = RequestSpec::new(
            SimTime::ZERO,
            vec![ctx(1)],
            vec![Step::new(ctx(1), SimDuration::from_micros(100))],
        );
        let remote = RequestSpec::new(
            SimTime::ZERO,
            vec![ctx(1)],
            vec![
                Step::new(ctx(1), SimDuration::from_micros(100)),
                Step::new(ctx(2), SimDuration::from_micros(100)),
            ],
        );
        let m_local = Simulator::new().run(&mut make_cluster(), &[local]);
        let m_remote = Simulator::new().run(&mut make_cluster(), &[remote]);
        // The remote variant pays one extra hop (1ms).
        assert!(m_remote.mean_latency_ms() > m_local.mean_latency_ms() + 0.9);
    }

    #[test]
    fn more_servers_increase_throughput_for_partitioned_load() {
        let simulator = Simulator::new();
        let mut results = Vec::new();
        for servers in [1usize, 2, 4, 8] {
            let mut cluster = quiet_cluster(servers);
            let mut requests = Vec::new();
            for room in 0..servers as u64 {
                cluster.place(ctx(room), ServerId::new(room as u32));
                requests.extend(uniform_requests(200, ctx(room), 100, 500));
            }
            let metrics = simulator.run(&mut cluster, &requests);
            results.push(metrics.throughput(None));
        }
        assert!(
            results.windows(2).all(|w| w[1] > w[0] * 1.5),
            "throughput scales: {results:?}"
        );
    }
}
