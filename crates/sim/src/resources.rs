//! Contended resources of the greedy timeline simulation.

use aeon_types::{SimDuration, SimTime};

/// A context's sequencer lock in the timeline model.
///
/// Exclusive holders serialize; read-only holders may overlap each other but
/// not writers.  Requests are granted in the order they are offered to the
/// lock (the engine offers them in arrival order), which mirrors the FIFO
/// activation queues of the runtime.
#[derive(Debug, Clone, Default)]
pub struct LockTimeline {
    /// Time at which the last exclusive holder releases.
    writer_free_at: SimTime,
    /// Latest release time among read-only holders admitted since the last
    /// writer.
    readers_free_at: SimTime,
}

impl LockTimeline {
    /// Creates a free lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest time at or after `now` at which an exclusive acquisition can
    /// start (does not take the lock).
    pub fn next_exclusive_start(&self, now: SimTime) -> SimTime {
        now.max(self.writer_free_at).max(self.readers_free_at)
    }

    /// Earliest time at or after `now` at which a shared acquisition can
    /// start (does not take the lock).
    pub fn next_shared_start(&self, now: SimTime) -> SimTime {
        now.max(self.writer_free_at)
    }

    /// Records that an exclusive holder keeps the lock until `end`.
    pub fn hold_exclusive_until(&mut self, end: SimTime) {
        if end > self.writer_free_at {
            self.writer_free_at = end;
        }
        if end > self.readers_free_at {
            self.readers_free_at = end;
        }
    }

    /// Records that a shared holder keeps the lock until `end`.
    pub fn hold_shared_until(&mut self, end: SimTime) {
        if end > self.readers_free_at {
            self.readers_free_at = end;
        }
    }

    /// Acquires the lock exclusively at or after `now`, holding it for
    /// `hold`.  Returns the acquisition time.
    pub fn acquire_exclusive(&mut self, now: SimTime, hold: SimDuration) -> SimTime {
        let start = self.next_exclusive_start(now);
        self.hold_exclusive_until(start + hold);
        start
    }

    /// Acquires the lock in shared (read-only) mode at or after `now`,
    /// holding it for `hold`.  Readers wait for the last writer but not for
    /// each other.  Returns the acquisition time.
    pub fn acquire_shared(&mut self, now: SimTime, hold: SimDuration) -> SimTime {
        let start = self.next_shared_start(now);
        self.hold_shared_until(start + hold);
        start
    }

    /// Delays the next acquisition until at least `until` (used to model a
    /// context being unavailable during migration).
    pub fn block_until(&mut self, until: SimTime) {
        if until > self.writer_free_at {
            self.writer_free_at = until;
        }
        if until > self.readers_free_at {
            self.readers_free_at = until;
        }
    }

    /// Time at which the lock next becomes free for a writer.
    pub fn free_at(&self) -> SimTime {
        self.writer_free_at.max(self.readers_free_at)
    }
}

/// A server's CPU: `cores` independent execution units, each FIFO.
#[derive(Debug, Clone)]
pub struct CpuTimeline {
    cores: Vec<SimTime>,
    busy: SimDuration,
}

impl CpuTimeline {
    /// Creates a CPU with `cores` cores (at least one).
    pub fn new(cores: usize) -> Self {
        Self {
            cores: vec![SimTime::ZERO; cores.max(1)],
            busy: SimDuration::ZERO,
        }
    }

    /// Runs a job of length `service` starting at or after `now` on the
    /// first core to become free.  Returns the completion time.
    pub fn run(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let (idx, free_at) = self
            .cores
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, t)| *t)
            .expect("at least one core");
        let start = now.max(free_at);
        let end = start + service;
        self.cores[idx] = end;
        self.busy += service;
        end
    }

    /// Total CPU time consumed so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilisation over the interval `[0, horizon]`.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let capacity = horizon.as_secs_f64() * self.cores.len() as f64;
        (self.busy.as_secs_f64() / capacity).min(1.0)
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn exclusive_acquisitions_serialize() {
        let mut lock = LockTimeline::new();
        assert_eq!(lock.acquire_exclusive(at(0), ms(10)), at(0));
        // Second request arriving at t=2 must wait until t=10.
        assert_eq!(lock.acquire_exclusive(at(2), ms(5)), at(10));
        assert_eq!(lock.free_at(), at(15));
    }

    #[test]
    fn readers_overlap_but_respect_writers() {
        let mut lock = LockTimeline::new();
        lock.acquire_exclusive(at(0), ms(10));
        // Two readers arriving during the write both start at t=10.
        assert_eq!(lock.acquire_shared(at(3), ms(5)), at(10));
        assert_eq!(lock.acquire_shared(at(4), ms(7)), at(10));
        // A writer then waits for the slowest reader.
        assert_eq!(lock.acquire_exclusive(at(5), ms(1)), at(17));
    }

    #[test]
    fn block_until_delays_next_acquisition() {
        let mut lock = LockTimeline::new();
        lock.block_until(at(50));
        assert_eq!(lock.acquire_exclusive(at(0), ms(1)), at(50));
    }

    #[test]
    fn multi_core_cpu_runs_jobs_in_parallel() {
        let mut cpu = CpuTimeline::new(2);
        assert_eq!(cpu.run(at(0), ms(10)), at(10));
        assert_eq!(cpu.run(at(0), ms(10)), at(10)); // second core
        assert_eq!(cpu.run(at(0), ms(10)), at(20)); // queues behind first
        assert_eq!(cpu.cores(), 2);
        assert_eq!(cpu.busy_time(), ms(30));
        assert!((cpu.utilisation(at(20)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn single_core_is_fifo() {
        let mut cpu = CpuTimeline::new(1);
        assert_eq!(cpu.run(at(0), ms(5)), at(5));
        assert_eq!(cpu.run(at(1), ms(5)), at(10));
        assert_eq!(cpu.run(at(20), ms(5)), at(25));
    }
}
