//! The simulated cluster: servers, context placement and the network.

use aeon_net::LatencyModel;
use aeon_types::{ContextId, ServerId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

use crate::resources::{CpuTimeline, LockTimeline};

/// A cluster of simulated servers hosting contexts.
#[derive(Debug)]
pub struct SimCluster {
    cpus: Vec<CpuTimeline>,
    placement: HashMap<ContextId, ServerId>,
    locks: HashMap<ContextId, LockTimeline>,
    latency: LatencyModel,
    /// Multiplier applied to every CPU service time (models slower managed
    /// runtimes, e.g. the C# comparators of §6.1).
    cpu_overhead: f64,
    rng: StdRng,
}

impl SimCluster {
    /// Creates a cluster of `servers` servers with `cores` cores each.
    pub fn new(servers: usize, cores: usize) -> Self {
        Self {
            cpus: vec![CpuTimeline::new(cores); servers.max(1)],
            placement: HashMap::new(),
            locks: HashMap::new(),
            latency: LatencyModel::default(),
            cpu_overhead: 1.0,
            rng: StdRng::seed_from_u64(42),
        }
    }

    /// Sets the one-way network latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the CPU overhead multiplier.
    pub fn with_cpu_overhead(mut self, factor: f64) -> Self {
        self.cpu_overhead = factor.max(0.0);
        self
    }

    /// Sets the random seed used for latency sampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.cpus.len()
    }

    /// Adds `count` servers (scale out) and returns the new server count.
    pub fn add_servers(&mut self, count: usize) -> usize {
        let cores = self.cpus[0].cores();
        for _ in 0..count {
            self.cpus.push(CpuTimeline::new(cores));
        }
        self.cpus.len()
    }

    /// Places `context` on `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range (programming error in a workload
    /// generator).
    pub fn place(&mut self, context: ContextId, server: ServerId) {
        assert!(
            (server.raw() as usize) < self.cpus.len(),
            "server {server} out of range ({} servers)",
            self.cpus.len()
        );
        self.placement.insert(context, server);
    }

    /// The server hosting `context` (defaults to server 0 when unplaced).
    pub fn server_of(&self, context: ContextId) -> ServerId {
        self.placement
            .get(&context)
            .copied()
            .unwrap_or(ServerId::new(0))
    }

    /// Draws a one-way network latency sample.
    pub fn sample_latency(&mut self) -> SimDuration {
        self.latency.sample(&mut self.rng)
    }

    /// Scales a CPU service time by the configured overhead factor.
    pub fn scaled_cpu(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.cpu_overhead)
    }

    /// Mutable access to the sequencer/grain lock of `context`.
    pub fn lock_mut(&mut self, context: ContextId) -> &mut LockTimeline {
        self.locks.entry(context).or_default()
    }

    /// Mutable access to the CPU of the server hosting `context`.
    pub fn cpu_of_mut(&mut self, context: ContextId) -> &mut CpuTimeline {
        let server = self.server_of(context);
        &mut self.cpus[server.raw() as usize]
    }

    /// Mutable access to a server CPU by id.
    pub fn cpu_mut(&mut self, server: ServerId) -> &mut CpuTimeline {
        &mut self.cpus[server.raw() as usize]
    }

    /// Blocks every lock of the given contexts until `until` (migration
    /// outage window).
    pub fn block_contexts_until(&mut self, contexts: &[ContextId], until: SimTime) {
        for c in contexts {
            self.locks.entry(*c).or_default().block_until(until);
        }
    }

    /// Average CPU utilisation across servers over `[0, horizon]`.
    pub fn mean_utilisation(&self, horizon: SimTime) -> f64 {
        if self.cpus.is_empty() {
            return 0.0;
        }
        self.cpus
            .iter()
            .map(|c| c.utilisation(horizon))
            .sum::<f64>()
            / self.cpus.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_and_lookup() {
        let mut cluster = SimCluster::new(3, 2);
        cluster.place(ContextId::new(1), ServerId::new(2));
        assert_eq!(cluster.server_of(ContextId::new(1)), ServerId::new(2));
        assert_eq!(cluster.server_of(ContextId::new(9)), ServerId::new(0));
        assert_eq!(cluster.server_count(), 3);
        assert_eq!(cluster.add_servers(2), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn placing_on_unknown_server_panics() {
        let mut cluster = SimCluster::new(1, 1);
        cluster.place(ContextId::new(1), ServerId::new(5));
    }

    #[test]
    fn cpu_overhead_scales_service_times() {
        let cluster = SimCluster::new(1, 1).with_cpu_overhead(2.0);
        assert_eq!(
            cluster.scaled_cpu(SimDuration::from_millis(3)),
            SimDuration::from_millis(6)
        );
    }

    #[test]
    fn latency_sampling_is_deterministic_for_a_seed() {
        let mut a = SimCluster::new(1, 1).with_seed(7);
        let mut b = SimCluster::new(1, 1).with_seed(7);
        for _ in 0..10 {
            assert_eq!(a.sample_latency(), b.sample_latency());
        }
    }

    #[test]
    fn blocking_contexts_delays_their_locks() {
        let mut cluster = SimCluster::new(1, 1);
        let ctx = ContextId::new(4);
        cluster.block_contexts_until(&[ctx], SimTime::from_millis(100));
        let start = cluster
            .lock_mut(ctx)
            .acquire_exclusive(SimTime::ZERO, SimDuration::from_millis(1));
        assert_eq!(start, SimTime::from_millis(100));
    }
}
