//! Migration experiments: impact on overall throughput (Figure 8) and peak
//! eManager migration throughput (Figure 9).

use crate::cluster::SimCluster;
use crate::engine::Simulator;
use crate::metrics::TimeSeries;
use crate::request::{RequestSpec, Step};
use aeon_net::LatencyModel;
use aeon_types::{ContextId, ServerId, SimDuration, SimTime};

/// Configuration of the Figure 8 experiment: a steady game workload on 20
/// single-room servers while a number of Room contexts are migrated
/// simultaneously.
#[derive(Debug, Clone)]
pub struct MigrationImpactConfig {
    /// Number of servers (and rooms, one per server).
    pub rooms: usize,
    /// Duration of the run.
    pub duration: SimDuration,
    /// When the migrations are triggered.
    pub migration_at: SimTime,
    /// Number of rooms migrated simultaneously.
    pub contexts_migrated: usize,
    /// Size of each migrated context in bytes (1 MB in the paper).
    pub context_bytes: u64,
    /// Transfer bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Aggregate request rate (requests per second across all rooms).
    pub request_rate: f64,
    /// CPU time per request.
    pub service: SimDuration,
    /// Time-series bucket width for the reported throughput curve.
    pub bucket: SimDuration,
    /// Requests answered within this bound count towards the reported
    /// throughput (clients of the paper's game observe responses; requests
    /// stalled behind a migration do not contribute to the curve until the
    /// migration completes).
    pub responsive_threshold: SimDuration,
}

impl Default for MigrationImpactConfig {
    fn default() -> Self {
        Self {
            rooms: 20,
            duration: SimDuration::from_secs(400),
            migration_at: SimTime::from_secs(200),
            contexts_migrated: 1,
            context_bytes: 1 << 20,
            bandwidth: 1 << 20,
            request_rate: 180.0,
            service: SimDuration::from_millis(4),
            bucket: SimDuration::from_secs(10),
            responsive_threshold: SimDuration::from_millis(500),
        }
    }
}

/// Runs the Figure 8 experiment and returns the throughput time series.
///
/// While a room is being migrated, requests targeting it are delayed for the
/// duration of the transfer (the paper's observation: "when a context is
/// being migrated, requests to it are delayed for the duration of the
/// migration").
pub fn migration_impact(config: &MigrationImpactConfig) -> TimeSeries {
    let mut cluster = SimCluster::new(config.rooms, 1)
        .with_latency(LatencyModel::BaseplusExp {
            base_micros: 300,
            mean_tail_micros: 100,
        })
        .with_seed(7);
    let rooms: Vec<ContextId> = (0..config.rooms as u64).map(ContextId::new).collect();
    for (i, room) in rooms.iter().enumerate() {
        cluster.place(*room, ServerId::new(i as u32));
    }
    // Migration outage window per migrated room: the migration itself is an
    // exclusive event that holds the room for the transfer duration
    // (step IV of the protocol).
    let transfer = SimDuration::from_micros(
        (config.context_bytes as f64 / config.bandwidth as f64 * 1e6) as u64,
    );
    let migrated: Vec<ContextId> = rooms
        .iter()
        .copied()
        .take(config.contexts_migrated)
        .collect();
    // Requests spread uniformly over rooms and time; the migrated rooms'
    // requests issued during the outage are delayed, which is exactly the
    // dip of Figure 8.
    let total = (config.request_rate * config.duration.as_secs_f64()) as usize;
    let mut requests: Vec<RequestSpec> = (0..total)
        .map(|k| {
            let arrival = SimTime::from_micros((k as f64 / config.request_rate * 1e6) as u64);
            let room = rooms[k % rooms.len()];
            RequestSpec::new(arrival, vec![room], vec![Step::new(room, config.service)])
        })
        .collect();
    for room in migrated {
        requests.push(
            RequestSpec::new(
                config.migration_at,
                vec![room],
                vec![Step::unlocked(room, transfer)],
            )
            .labelled("migration"),
        );
    }
    let metrics = Simulator::new().run(&mut cluster, &requests);
    // Report only responsive completions (and exclude the synthetic
    // migration events themselves, whose latency equals the transfer time).
    let mut responsive = crate::metrics::Metrics::new();
    for c in metrics.completions() {
        if c.latency <= config.responsive_threshold {
            responsive.record(c.completed_at, c.latency, c.readonly);
        }
    }
    responsive.time_series(config.bucket, SimTime::ZERO + config.duration)
}

/// EC2 instance classes used by the Figure 9 micro-benchmark, modelled by
/// their migration-protocol overhead and transfer bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceType {
    /// m1.large
    Large,
    /// m1.medium
    Medium,
    /// m1.small
    Small,
}

impl std::fmt::Display for InstanceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceType::Large => write!(f, "m1.large"),
            InstanceType::Medium => write!(f, "m1.medium"),
            InstanceType::Small => write!(f, "m1.small"),
        }
    }
}

/// Analytic model of eManager migration throughput: each migration pays a
/// fixed protocol cost (the five-step coordination) plus the state transfer
/// time, and migrations are pipelined one at a time by the eManager.
#[derive(Debug, Clone, Copy)]
pub struct EManagerThroughputModel {
    /// Per-migration protocol overhead in seconds.
    pub protocol_overhead_s: f64,
    /// State transfer bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl EManagerThroughputModel {
    /// Model parameters per instance type, calibrated to Figure 9
    /// (≈90/60/40 contexts/s at 1 KB and ≈40/25/20 contexts/s at 1 MB).
    pub fn for_instance(instance: InstanceType) -> Self {
        match instance {
            InstanceType::Large => Self {
                protocol_overhead_s: 1.0 / 90.0,
                bandwidth: 75e6,
            },
            InstanceType::Medium => Self {
                protocol_overhead_s: 1.0 / 60.0,
                bandwidth: 45e6,
            },
            InstanceType::Small => Self {
                protocol_overhead_s: 1.0 / 40.0,
                bandwidth: 42e6,
            },
        }
    }

    /// Maximum contexts migrated per second for contexts of `bytes` bytes.
    pub fn contexts_per_second(&self, bytes: u64) -> f64 {
        1.0 / (self.protocol_overhead_s + bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_dip_grows_with_migrated_contexts() {
        let base = MigrationImpactConfig {
            rooms: 10,
            duration: SimDuration::from_secs(100),
            migration_at: SimTime::from_secs(50),
            bucket: SimDuration::from_secs(5),
            request_rate: 120.0,
            ..MigrationImpactConfig::default()
        };
        let dip = |contexts: usize| {
            let config = MigrationImpactConfig {
                contexts_migrated: contexts,
                ..base.clone()
            };
            let series = migration_impact(&config);
            // Steady-state throughput before the migration vs the bucket
            // containing the migration window.
            let before: f64 = series.points[2..8].iter().map(|p| p.1).sum::<f64>() / 6.0;
            let during = series
                .points
                .iter()
                .find(|p| p.0 >= config.migration_at)
                .map(|p| p.1)
                .unwrap_or(before);
            before - during
        };
        let d1 = dip(1);
        let d5 = dip(5);
        assert!(
            d5 >= d1,
            "more simultaneous migrations dip throughput more: {d1} vs {d5}"
        );
    }

    #[test]
    fn throughput_recovers_after_migration() {
        let config = MigrationImpactConfig {
            rooms: 10,
            duration: SimDuration::from_secs(100),
            migration_at: SimTime::from_secs(50),
            contexts_migrated: 5,
            bucket: SimDuration::from_secs(5),
            request_rate: 120.0,
            ..MigrationImpactConfig::default()
        };
        let series = migration_impact(&config);
        let before: f64 = series.points[4..9].iter().map(|p| p.1).sum::<f64>() / 5.0;
        let after: f64 = series.points[14..19].iter().map(|p| p.1).sum::<f64>() / 5.0;
        assert!(
            (after - before).abs() / before < 0.25,
            "before {before}, after {after}"
        );
    }

    #[test]
    fn emanager_throughput_matches_figure_9_shape() {
        let large = EManagerThroughputModel::for_instance(InstanceType::Large);
        let medium = EManagerThroughputModel::for_instance(InstanceType::Medium);
        let small = EManagerThroughputModel::for_instance(InstanceType::Small);
        let kb = 1 << 10;
        let mb = 1 << 20;
        // Small contexts: ~90 / 60 / 40 per second.
        assert!((large.contexts_per_second(kb) - 90.0).abs() < 5.0);
        assert!((medium.contexts_per_second(kb) - 60.0).abs() < 5.0);
        assert!((small.contexts_per_second(kb) - 40.0).abs() < 5.0);
        // Large contexts: ~40 / 25 / 20 per second.
        assert!((large.contexts_per_second(mb) - 40.0).abs() < 6.0);
        assert!((medium.contexts_per_second(mb) - 25.0).abs() < 6.0);
        assert!((small.contexts_per_second(mb) - 20.0).abs() < 6.0);
        // Bigger instance and smaller context are always at least as fast.
        assert!(large.contexts_per_second(kb) > large.contexts_per_second(mb));
        assert!(large.contexts_per_second(mb) > small.contexts_per_second(mb));
        assert_eq!(InstanceType::Large.to_string(), "m1.large");
    }
}
