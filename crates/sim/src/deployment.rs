//! The deterministic virtual-time deployment backend.
//!
//! [`SimDeployment`] implements the `aeon-api` `Deployment`/`Session`
//! traits over a single-threaded, virtual-time execution engine: events
//! execute inline at submission, one at a time, which makes every run
//! trivially strictly serializable and bit-for-bit reproducible — the
//! property the evaluation harness needs.  Each event is charged virtual
//! time (network hops between the client and the servers it traverses plus
//! a per-method service time), so workload drivers written against the
//! unified API can read the same kind of latency/throughput signals the
//! timeline simulator ([`crate::Simulator`]) produces, while executing the
//! *real* contextclass code.
//!
//! The deterministic engine and the distributed cluster thereby bracket the
//! in-process runtime: same applications, same API, three execution
//! substrates.

use crate::resources::{CpuTimeline, LockTimeline};
use aeon_api::{Deployment, EventHandle, Session};
use aeon_ownership::{ClassGraph, Dominator, DominatorMode, DominatorResolver, OwnershipGraph};
use aeon_runtime::{
    AnalysisMode, ContextFactory, ContextObject, Invocation, InvocationHost, Placement, Snapshot,
    SubEvent,
};
use aeon_types::{
    codec, AccessMode, AeonError, Args, ClientId, ContextId, EventId, IdGenerator, Result,
    ServerId, ServerMetrics, SharedHistorySink, SimDuration, SimTime, Value,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Builder for [`SimDeployment`].
#[derive(Debug)]
pub struct SimDeploymentBuilder {
    servers: usize,
    class_graph: Option<ClassGraph>,
    analysis: AnalysisMode,
    service: SimDuration,
    hop: SimDuration,
    contention_cores: Option<usize>,
    arrival_interval: Option<SimDuration>,
}

impl Default for SimDeploymentBuilder {
    fn default() -> Self {
        Self {
            servers: 1,
            class_graph: None,
            analysis: AnalysisMode::default(),
            service: SimDuration::from_micros(100),
            hop: SimDuration::from_micros(200),
            contention_cores: None,
            arrival_interval: None,
        }
    }
}

impl SimDeploymentBuilder {
    /// Sets the number of virtual servers.
    #[must_use]
    pub fn servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Installs a contextclass constraint graph; the static analysis runs
    /// at build time.
    #[must_use]
    pub fn class_graph(mut self, classes: ClassGraph) -> Self {
        self.class_graph = Some(classes);
        self
    }

    /// Sets how [`SimDeploymentBuilder::build`] treats static-analysis
    /// findings on the class graph: `Off` skips the pipeline, `Warn` prints
    /// diagnostics and proceeds, `Enforce` (the default) refuses to build on
    /// any error-severity diagnostic.
    #[must_use]
    pub fn analysis(mut self, mode: AnalysisMode) -> Self {
        self.analysis = mode;
        self
    }

    /// Sets the virtual CPU time charged per method execution.
    #[must_use]
    pub fn service_time(mut self, service: SimDuration) -> Self {
        self.service = service;
        self
    }

    /// Sets the virtual one-way network latency between servers.
    #[must_use]
    pub fn network_hop(mut self, hop: SimDuration) -> Self {
        self.hop = hop;
        self
    }

    /// Enables the contention timeline: instead of charging every event the
    /// serial `hop + cost + hop`, virtual time flows through the same
    /// [`LockTimeline`]/[`CpuTimeline`] resources as [`crate::Simulator`].
    /// Each event is sequenced at its target's dominator (shared for
    /// read-only events), every context it touches takes its per-context
    /// lock, and CPU service queues on `cores` FIFO cores per server — so
    /// offered load beyond capacity shows up as queueing latency and
    /// throughput saturation, with the *real* contextclass code executing.
    #[must_use]
    pub fn contention(mut self, cores: usize) -> Self {
        self.contention_cores = Some(cores.max(1));
        self
    }

    /// Sets the open-loop inter-arrival gap between submitted events in
    /// contention mode (default: the service time, i.e. offered load equal
    /// to one core's capacity).  Ignored without
    /// [`SimDeploymentBuilder::contention`].
    #[must_use]
    pub fn arrival_interval(mut self, interval: SimDuration) -> Self {
        self.arrival_interval = Some(interval);
        self
    }

    /// Builds the deployment.
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when `servers` is zero.
    /// * [`AeonError::ClassCycleDetected`] when the class graph's ownership
    ///   constraints are cyclic.
    /// * [`AeonError::AnalysisRejected`] when the static analysis pipeline
    ///   reports error diagnostics and the mode is [`AnalysisMode::Enforce`].
    pub fn build(self) -> Result<SimDeployment> {
        if self.servers == 0 {
            return Err(AeonError::Config("at least one server is required".into()));
        }
        if let Some(classes) = &self.class_graph {
            classes.check()?;
            aeon_analyzer::enforce(classes, self.analysis)?;
        }
        let mut servers = BTreeMap::new();
        for raw in 0..self.servers {
            servers.insert(ServerId::new(raw as u32), true);
        }
        let state = SimState {
            graph: OwnershipGraph::new(),
            class_graph: self.class_graph,
            contexts: HashMap::new(),
            placement: HashMap::new(),
            servers,
            next_server: self.servers as u32,
            factories: HashMap::new(),
            ids: IdGenerator::starting_at(1),
            clock: SimTime::ZERO,
            service: self.service,
            hop: self.hop,
            events_completed: 0,
            events_failed: 0,
            total_latency: SimDuration::ZERO,
            latency: aeon_types::LatencyHistogram::new(),
            shutdown: false,
            history: None,
            timeline: self.contention_cores.map(|cores| Timeline {
                cores,
                interval: self.arrival_interval.unwrap_or(self.service),
                next_arrival: SimTime::ZERO,
                locks: HashMap::new(),
                global_lock: LockTimeline::new(),
                cpus: HashMap::new(),
                resolver: DominatorResolver::new(DominatorMode::Closure),
            }),
        };
        Ok(SimDeployment {
            inner: Arc::new(Mutex::new(state)),
        })
    }
}

/// The contended-resource state of the timeline mode: one sequencer/object
/// lock per context, one FIFO multi-core CPU per server, and an open-loop
/// arrival cursor.  Events still execute inline (real state, serial
/// histories); only their virtual-time accounting runs through these
/// resources, mirroring [`crate::Simulator::run`].
struct Timeline {
    cores: usize,
    interval: SimDuration,
    next_arrival: SimTime,
    locks: HashMap<ContextId, LockTimeline>,
    /// Sequencer of events whose dominator is the unnamed global root
    /// (footnote 1, §3): the paper's per-application global sequencer.
    global_lock: LockTimeline,
    cpus: HashMap<ServerId, CpuTimeline>,
    resolver: DominatorResolver,
}

/// A context object behind its own lock, so handlers can borrow the engine
/// state mutably while the object executes.
type SharedObject = Arc<Mutex<Box<dyn ContextObject>>>;

/// A context hosted by the deterministic engine.
struct SimSlot {
    class: String,
    object: SharedObject,
}

/// The whole mutable state of the deterministic deployment, behind one
/// lock: execution is single-threaded by construction, which is what makes
/// it deterministic.
struct SimState {
    graph: OwnershipGraph,
    class_graph: Option<ClassGraph>,
    contexts: HashMap<ContextId, SimSlot>,
    placement: HashMap<ContextId, ServerId>,
    servers: BTreeMap<ServerId, bool>,
    next_server: u32,
    factories: HashMap<String, ContextFactory>,
    ids: IdGenerator,
    clock: SimTime,
    service: SimDuration,
    hop: SimDuration,
    events_completed: u64,
    events_failed: u64,
    total_latency: SimDuration,
    /// Distribution of per-event virtual latencies (same buckets as the
    /// live backends, so metric reports are comparable across engines).
    latency: aeon_types::LatencyHistogram,
    shutdown: bool,
    /// Optional live history sink.  The engine is single-threaded, so the
    /// recorded histories are serial by construction — useful to validate
    /// recording pipelines against a backend that cannot race.
    history: Option<SharedHistorySink>,
    /// Contention timeline (None: legacy serial accounting).
    timeline: Option<Timeline>,
}

impl SimState {
    fn slot(&self, id: ContextId) -> Result<(SharedObject, ServerId)> {
        let slot = self
            .contexts
            .get(&id)
            .ok_or(AeonError::ContextNotFound(id))?;
        let server = self.placement.get(&id).copied().unwrap_or(ServerId::new(0));
        Ok((Arc::clone(&slot.object), server))
    }

    fn online(&self, server: ServerId) -> bool {
        self.servers.get(&server).copied().unwrap_or(false)
    }

    fn pick_server(&self, placement: Placement) -> Result<ServerId> {
        match placement {
            Placement::Server(server) if self.online(server) => Ok(server),
            Placement::Server(server) => Err(AeonError::ServerNotFound(server)),
            Placement::WithContext(other) => {
                let server = self
                    .placement
                    .get(&other)
                    .copied()
                    .ok_or(AeonError::ContextNotFound(other))?;
                // The co-location target may sit on a crashed server; never
                // place new contexts there.
                if self.online(server) {
                    Ok(server)
                } else {
                    Err(AeonError::ServerNotFound(server))
                }
            }
            Placement::Auto => {
                let mut load: BTreeMap<ServerId, usize> = self
                    .servers
                    .iter()
                    .filter(|(_, online)| **online)
                    .map(|(id, _)| (*id, 0))
                    .collect();
                for server in self.placement.values() {
                    if let Some(count) = load.get_mut(server) {
                        *count += 1;
                    }
                }
                load.into_iter()
                    .min_by_key(|(id, count)| (*count, id.raw()))
                    .map(|(id, _)| id)
                    .ok_or_else(|| AeonError::Config("no online servers".into()))
            }
        }
    }

    fn check_constraint(&self, owner: ContextId, owned_class: &str) -> Result<()> {
        if let Some(classes) = &self.class_graph {
            let owner_class = self.graph.class_of(owner)?;
            if !classes.allows(owner_class, owned_class) {
                return Err(AeonError::ownership(owner, ContextId::new(u64::MAX)));
            }
        }
        Ok(())
    }

    /// Drops stale dominator cache entries after an ownership-graph
    /// mutation (new context, new or removed edge).
    fn invalidate_dominators(&mut self) {
        if let Some(timeline) = &mut self.timeline {
            timeline.resolver = DominatorResolver::new(timeline.resolver.mode());
        }
    }

    /// Charges one event's virtual time through the contended resources:
    /// client hop, sequencer acquisition at the target's dominator
    /// (shared for read-only events), then per touched context a server
    /// hop when crossing servers, the per-context lock, and FIFO CPU
    /// service — the same timeline as [`crate::Simulator::run`], driven by
    /// the trace of the *real* execution.  Returns the event latency.
    fn charge_timeline(
        &mut self,
        target: ContextId,
        mode: AccessMode,
        entry_server: ServerId,
        trace: &[(ContextId, ServerId)],
    ) -> SimDuration {
        let hop = self.hop;
        let service = self.service;
        let readonly = mode.is_read_only();
        let timeline = self.timeline.as_mut().expect("timeline mode enabled");
        let arrival = timeline.next_arrival;
        timeline.next_arrival = arrival + timeline.interval;
        let mut now = arrival + hop;
        // Dominator sequencing; an unresolvable dominator (e.g. the target
        // vanished mid-run) falls back to the target's own lock.
        let sequencer = match timeline.resolver.dominator(&self.graph, target) {
            Ok(Dominator::Context(context)) => Some(context),
            Ok(Dominator::GlobalRoot) => None,
            Err(_) => Some(target),
        };
        now = {
            let lock = match sequencer {
                Some(context) => timeline.locks.entry(context).or_default(),
                None => &mut timeline.global_lock,
            };
            if readonly {
                lock.next_shared_start(now)
            } else {
                lock.next_exclusive_start(now)
            }
        };
        let mut current_server = trace.first().map_or(entry_server, |(_, server)| *server);
        for &(context, server) in trace {
            if server != current_server {
                now += hop;
                current_server = server;
            }
            let start = {
                let lock = timeline.locks.entry(context).or_default();
                if readonly {
                    lock.next_shared_start(now)
                } else {
                    lock.next_exclusive_start(now)
                }
            };
            let cores = timeline.cores;
            let end = timeline
                .cpus
                .entry(server)
                .or_insert_with(|| CpuTimeline::new(cores))
                .run(start, service);
            let lock = timeline.locks.entry(context).or_default();
            if readonly {
                lock.hold_shared_until(end);
            } else {
                lock.hold_exclusive_until(end);
            }
            now = end;
        }
        // The sequencer was held for the whole execution.
        {
            let lock = match sequencer {
                Some(context) => timeline.locks.entry(context).or_default(),
                None => &mut timeline.global_lock,
            };
            if readonly {
                lock.hold_shared_until(now);
            } else {
                lock.hold_exclusive_until(now);
            }
        }
        now += hop;
        // The clock tracks the makespan: event completions overlap.
        if now > self.clock {
            self.clock = now;
        }
        now - arrival
    }

    /// Runs one event (plus its deferred `async` calls) and charges its
    /// virtual time; sub-events dispatched from within it run afterwards,
    /// exactly like on the other backends.
    fn run_event(
        &mut self,
        client: Option<ClientId>,
        target: ContextId,
        method: &str,
        args: &Args,
        mode: AccessMode,
    ) -> (EventId, Result<Value>) {
        let event = EventId::new(self.ids.next_raw());
        // Submission and execution coincide in the inline engine, so this
        // is the true invocation point.
        if let Some(sink) = &self.history {
            sink.invoked(event);
        }
        let entry_server = self
            .placement
            .get(&target)
            .copied()
            .unwrap_or(ServerId::new(0));
        let mut execution = SimExecution {
            state: self,
            event,
            client,
            mode,
            call_stack: Vec::new(),
            pending_async: VecDeque::new(),
            sub_events: Vec::new(),
            current_server: entry_server,
            cost: SimDuration::ZERO,
            trace: Vec::new(),
        };
        let mut result = execution.invoke(None, target, method, args);
        while let Some((caller, async_target, async_method, async_args)) =
            execution.pending_async.pop_front()
        {
            let r = execution.invoke(Some(caller), async_target, &async_method, &async_args);
            if result.is_ok() {
                if let Err(e) = r {
                    result = Err(e);
                }
            }
        }
        let sub_events = std::mem::take(&mut execution.sub_events);
        let cost = execution.cost;
        let trace = std::mem::take(&mut execution.trace);
        let latency = if self.timeline.is_some() {
            self.charge_timeline(target, mode, entry_server, &trace)
        } else {
            // Client -> entry server and reply hops bracket the execution.
            let latency = self.hop + cost + self.hop;
            self.clock += latency;
            latency
        };
        self.total_latency += latency;
        self.latency.record(latency.as_micros());
        if result.is_ok() {
            self.events_completed += 1;
        } else {
            self.events_failed += 1;
        }
        // The event terminated; sub-events (below) run after their creator.
        if let Some(sink) = &self.history {
            sink.responded(event);
        }
        if result.is_ok() {
            for sub in sub_events {
                let _ = self.run_event(client, sub.target, &sub.method, &sub.args, sub.mode);
            }
        }
        (event, result)
    }
}

/// The in-flight state of one simulated event; implements the same
/// [`InvocationHost`] contract as the concurrent and distributed engines,
/// so contextclass code cannot tell the backends apart.
struct SimExecution<'a> {
    state: &'a mut SimState,
    event: EventId,
    client: Option<ClientId>,
    mode: AccessMode,
    call_stack: Vec<ContextId>,
    pending_async: VecDeque<(ContextId, ContextId, String, Args)>,
    sub_events: Vec<SubEvent>,
    current_server: ServerId,
    cost: SimDuration,
    /// Contexts entered, in order, with their hosting servers — the step
    /// list the contention timeline replays.
    trace: Vec<(ContextId, ServerId)>,
}

impl SimExecution<'_> {
    fn invoke(
        &mut self,
        caller: Option<ContextId>,
        target: ContextId,
        method: &str,
        args: &Args,
    ) -> Result<Value> {
        if let Some(caller) = caller {
            if !self.state.graph.may_call(caller, target) {
                return Err(AeonError::ownership(caller, target));
            }
        }
        if self.call_stack.contains(&target) {
            return Err(AeonError::internal(format!(
                "re-entrant call into context {target} within event {}",
                self.event
            )));
        }
        let (object, server) = self.state.slot(target)?;
        if server != self.current_server {
            self.cost += self.state.hop;
            self.current_server = server;
        }
        self.cost += self.state.service;
        self.trace.push((target, server));
        self.call_stack.push(target);
        let outcome = {
            let mut object = object.lock();
            if let Some(sink) = &self.state.history {
                sink.accessed(self.event, target, self.mode);
            }
            if self.mode.is_read_only() && !object.is_readonly(method) {
                Err(AeonError::ReadOnlyViolation {
                    context: target,
                    method: method.to_string(),
                })
            } else {
                let mut invocation = Invocation::new(self, target);
                object.handle(method, args, &mut invocation)
            }
        };
        self.call_stack.pop();
        outcome
    }
}

impl InvocationHost for SimExecution<'_> {
    fn event_id(&self) -> EventId {
        self.event
    }

    fn client(&self) -> Option<ClientId> {
        self.client
    }

    fn mode(&self) -> AccessMode {
        self.mode
    }

    fn call(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<Value> {
        self.invoke(Some(caller), target, method, &args)
    }

    fn call_async(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<()> {
        if !self.state.graph.may_call(caller, target) {
            return Err(AeonError::ownership(caller, target));
        }
        self.pending_async
            .push_back((caller, target, method.to_string(), args));
        Ok(())
    }

    fn dispatch_event(
        &mut self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<()> {
        self.sub_events.push(SubEvent {
            target,
            method: method.to_string(),
            args,
            mode,
        });
        Ok(())
    }

    fn create_child(
        &mut self,
        owner: ContextId,
        object: Box<dyn ContextObject>,
    ) -> Result<ContextId> {
        let class = object.class_name().to_string();
        self.state.check_constraint(owner, &class)?;
        let id = ContextId::new(self.state.ids.next_raw());
        self.state.graph.add_context(id, &class)?;
        self.state.graph.add_edge(owner, id)?;
        let server = self
            .state
            .placement
            .get(&owner)
            .copied()
            .unwrap_or(ServerId::new(0));
        self.state.contexts.insert(
            id,
            SimSlot {
                class,
                object: Arc::new(Mutex::new(object)),
            },
        );
        self.state.placement.insert(id, server);
        self.state.invalidate_dominators();
        Ok(id)
    }

    fn add_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        if let Some(classes) = &self.state.class_graph {
            let owner_class = self.state.graph.class_of(owner)?;
            let owned_class = self.state.graph.class_of(owned)?;
            if !classes.allows(owner_class, owned_class) {
                return Err(AeonError::ownership(owner, owned));
            }
        }
        self.state.graph.add_edge(owner, owned)?;
        self.state.invalidate_dominators();
        Ok(())
    }

    fn remove_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.state.graph.remove_edge(owner, owned)?;
        self.state.invalidate_dominators();
        Ok(())
    }

    fn children(&self, parent: ContextId, class: Option<&str>) -> Result<Vec<ContextId>> {
        let children = self.state.graph.children(parent)?;
        let mut out = Vec::with_capacity(children.len());
        for &child in children {
            if class.is_none_or(|cls| {
                self.state
                    .graph
                    .class_of(child)
                    .map(|k| k == cls)
                    .unwrap_or(false)
            }) {
                out.push(child);
            }
        }
        Ok(out)
    }
}

/// The deterministic virtual-time deployment: the third execution backend
/// of the unified API, next to `AeonRuntime` and `Cluster`.
///
/// Cloning the handle is cheap and all clones drive the same deployment.
///
/// # Examples
///
/// ```
/// use aeon_api::{Deployment, Session};
/// use aeon_runtime::KvContext;
/// use aeon_sim::SimDeployment;
/// use aeon_types::{args, Value};
///
/// # fn main() -> aeon_types::Result<()> {
/// let sim = SimDeployment::builder().servers(4).build()?;
/// let item = sim.create_context(Box::new(KvContext::new("Item")), aeon_api::Placement::Auto)?;
/// let session = sim.session();
/// session.call(item, "incr", args!["gold", 3])?;
/// assert_eq!(session.call_readonly(item, "get", args!["gold"])?, Value::from(3i64));
/// assert!(sim.virtual_now() > aeon_types::SimTime::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SimDeployment {
    inner: Arc<Mutex<SimState>>,
}

impl std::fmt::Debug for SimDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock();
        f.debug_struct("SimDeployment")
            .field("contexts", &state.contexts.len())
            .field("clock", &state.clock)
            .finish_non_exhaustive()
    }
}

impl SimDeployment {
    /// Starts building a deterministic deployment.
    pub fn builder() -> SimDeploymentBuilder {
        SimDeploymentBuilder::default()
    }

    /// Opens a session (concrete type; the trait method boxes it).
    pub fn client(&self) -> SimSession {
        let id = ClientId::new(self.inner.lock().ids.next_raw());
        SimSession {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// The current virtual time: the sum of the virtual latencies of every
    /// event executed so far.
    pub fn virtual_now(&self) -> SimTime {
        self.inner.lock().clock
    }

    /// Number of events that completed successfully.
    pub fn events_completed(&self) -> u64 {
        self.inner.lock().events_completed
    }

    /// Number of events that failed.
    pub fn events_failed(&self) -> u64 {
        self.inner.lock().events_failed
    }

    /// Mean virtual latency per event, or zero before the first event.
    pub fn mean_virtual_latency(&self) -> SimDuration {
        let state = self.inner.lock();
        let events = state.events_completed + state.events_failed;
        SimDuration::from_micros(
            state
                .total_latency
                .as_micros()
                .checked_div(events)
                .unwrap_or(0),
        )
    }

    /// Whether the contention timeline is enabled.
    pub fn contention_enabled(&self) -> bool {
        self.inner.lock().timeline.is_some()
    }

    /// Virtual throughput: completed events over the virtual makespan
    /// ([`SimDeployment::virtual_now`]), in events per virtual second.
    pub fn virtual_throughput(&self) -> f64 {
        let state = self.inner.lock();
        let horizon = state.clock.as_secs_f64();
        if horizon == 0.0 {
            return 0.0;
        }
        state.events_completed as f64 / horizon
    }

    /// Rewinds virtual time to zero: clears the clock, event counters,
    /// latency accounting, and (in contention mode) every lock and CPU
    /// timeline plus the arrival cursor.  Drivers call this between the
    /// deployment phase and the measured stream so setup traffic does not
    /// contend with the workload.  Context state and history sinks are
    /// untouched.
    pub fn reset_virtual_time(&self) {
        let mut state = self.inner.lock();
        state.clock = SimTime::ZERO;
        state.events_completed = 0;
        state.events_failed = 0;
        state.total_latency = SimDuration::ZERO;
        state.latency = aeon_types::LatencyHistogram::new();
        if let Some(timeline) = &mut state.timeline {
            timeline.next_arrival = SimTime::ZERO;
            timeline.locks.clear();
            timeline.global_lock = LockTimeline::new();
            timeline.cpus.clear();
        }
    }
}

/// A client session on a [`SimDeployment`]; events execute inline at
/// submission, in submission order.
#[derive(Clone)]
pub struct SimSession {
    inner: Arc<Mutex<SimState>>,
    id: ClientId,
}

impl std::fmt::Debug for SimSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession").field("id", &self.id).finish()
    }
}

impl Session for SimSession {
    fn client_id(&self) -> ClientId {
        self.id
    }

    fn submit_with_mode(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<EventHandle> {
        let mut state = self.inner.lock();
        if state.shutdown {
            return Err(AeonError::RuntimeShutdown);
        }
        if !state.contexts.contains_key(&target) {
            return Err(AeonError::ContextNotFound(target));
        }
        let (event, result) = state.run_event(Some(self.id), target, method, &args, mode);
        Ok(EventHandle::ready(event, result))
    }
}

impl Deployment for SimDeployment {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn create_context(
        &self,
        object: Box<dyn ContextObject>,
        placement: Placement,
    ) -> Result<ContextId> {
        let mut state = self.inner.lock();
        let class = object.class_name().to_string();
        if let Some(classes) = &state.class_graph {
            if !classes.contains(&class) {
                return Err(AeonError::Config(format!(
                    "contextclass {class} is not declared in the class graph"
                )));
            }
        }
        let server = state.pick_server(placement)?;
        let id = ContextId::new(state.ids.next_raw());
        state.graph.add_context(id, &class)?;
        state.contexts.insert(
            id,
            SimSlot {
                class,
                object: Arc::new(Mutex::new(object)),
            },
        );
        state.placement.insert(id, server);
        state.invalidate_dominators();
        Ok(id)
    }

    fn create_owned_context(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
    ) -> Result<ContextId> {
        if owners.is_empty() {
            return Err(AeonError::Config(
                "create_owned_context requires at least one owner".into(),
            ));
        }
        let mut state = self.inner.lock();
        let class = object.class_name().to_string();
        for owner in owners {
            state.check_constraint(*owner, &class)?;
        }
        let server = state.pick_server(Placement::WithContext(owners[0]))?;
        let id = ContextId::new(state.ids.next_raw());
        state.graph.add_context(id, &class)?;
        for owner in owners {
            if let Err(e) = state.graph.add_edge(*owner, id) {
                let _ = state.graph.remove_context(id);
                return Err(e);
            }
        }
        state.contexts.insert(
            id,
            SimSlot {
                class,
                object: Arc::new(Mutex::new(object)),
            },
        );
        state.placement.insert(id, server);
        state.invalidate_dominators();
        Ok(id)
    }

    fn register_class_factory(&self, class: &str, factory: ContextFactory) {
        self.inner
            .lock()
            .factories
            .insert(class.to_string(), factory);
    }

    fn install_history_sink(&self, sink: SharedHistorySink) {
        self.inner.lock().history = Some(sink);
    }

    fn add_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        let mut state = self.inner.lock();
        if let Some(classes) = &state.class_graph {
            let owner_class = state.graph.class_of(owner)?;
            let owned_class = state.graph.class_of(owned)?;
            if !classes.allows(owner_class, owned_class) {
                return Err(AeonError::ownership(owner, owned));
            }
        }
        state.graph.add_edge(owner, owned)?;
        state.invalidate_dominators();
        Ok(())
    }

    fn remove_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        let mut state = self.inner.lock();
        state.graph.remove_edge(owner, owned)?;
        state.invalidate_dominators();
        Ok(())
    }

    fn ownership_graph(&self) -> OwnershipGraph {
        self.inner.lock().graph.clone()
    }

    fn session(&self) -> Box<dyn Session> {
        Box::new(self.client())
    }

    fn migrate_context(&self, context: ContextId, to_server: ServerId) -> Result<u64> {
        let mut state = self.inner.lock();
        if !state.online(to_server) {
            return Err(AeonError::ServerNotFound(to_server));
        }
        let slot = state
            .contexts
            .get(&context)
            .ok_or(AeonError::ContextNotFound(context))?;
        let object = Arc::clone(&slot.object);
        let class = slot.class.clone();
        let moved = {
            let mut object = object.lock();
            let snapshot = object.snapshot();
            let bytes = codec::encode(&snapshot).len() as u64;
            if let Some(factory) = state.factories.get(&class) {
                *object = factory(&snapshot);
            }
            bytes
        };
        state.placement.insert(context, to_server);
        // A migration costs one network round trip of virtual time; in
        // contention mode the context is additionally unavailable for that
        // round trip, so in-flight load queues behind the move.
        let hop = state.hop;
        let blocked_until = state.clock + hop + hop;
        if let Some(timeline) = &mut state.timeline {
            timeline
                .locks
                .entry(context)
                .or_default()
                .block_until(blocked_until);
        }
        state.clock += hop + hop;
        Ok(moved)
    }

    fn add_server(&self) -> ServerId {
        let mut state = self.inner.lock();
        let id = ServerId::new(state.next_server);
        state.next_server += 1;
        state.servers.insert(id, true);
        id
    }

    fn remove_server(&self, server: ServerId) -> Result<()> {
        let mut state = self.inner.lock();
        if !state.online(server) {
            return Err(AeonError::ServerNotFound(server));
        }
        let hosted = state.placement.values().filter(|s| **s == server).count();
        if hosted > 0 {
            return Err(AeonError::Config(format!(
                "server {server} still hosts {hosted} contexts"
            )));
        }
        state.servers.insert(server, false);
        Ok(())
    }

    fn server_metrics(&self) -> Vec<ServerMetrics> {
        // Virtual-time metrics: the latency signal is the mean virtual
        // latency charged to events so far, and the queue depth is zero
        // because the deterministic engine executes events inline.
        let state = self.inner.lock();
        let total_contexts = state.contexts.len();
        let events = state.events_completed + state.events_failed;
        let avg_latency_ms = if events == 0 {
            0.0
        } else {
            state.total_latency.as_micros() as f64 / events as f64 / 1_000.0
        };
        state
            .servers
            .iter()
            .filter(|(_, online)| **online)
            .map(|(&server, _)| {
                let hosted = state.placement.values().filter(|s| **s == server).count();
                ServerMetrics::from_load_with_latency(
                    server,
                    hosted,
                    total_contexts,
                    0,
                    avg_latency_ms,
                    state.latency,
                )
            })
            .collect()
    }

    fn context_count(&self) -> usize {
        self.inner.lock().contexts.len()
    }

    fn crash_server(&self, server: ServerId) -> Result<()> {
        let mut state = self.inner.lock();
        match state.servers.get_mut(&server) {
            Some(online) => *online = false,
            None => return Err(AeonError::ServerNotFound(server)),
        }
        let hosted: Vec<ContextId> = state
            .placement
            .iter()
            .filter(|(_, s)| **s == server)
            .map(|(c, _)| *c)
            .collect();
        for context in hosted {
            state.contexts.remove(&context);
        }
        Ok(())
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner
            .lock()
            .servers
            .iter()
            .filter(|(_, online)| **online)
            .map(|(id, _)| *id)
            .collect()
    }

    fn placement_of(&self, context: ContextId) -> Result<ServerId> {
        self.inner
            .lock()
            .placement
            .get(&context)
            .copied()
            .ok_or(AeonError::ContextNotFound(context))
    }

    fn contexts_on(&self, server: ServerId) -> Vec<ContextId> {
        let state = self.inner.lock();
        let mut out: Vec<ContextId> = state
            .placement
            .iter()
            .filter(|(_, s)| **s == server)
            .map(|(c, _)| *c)
            .collect();
        out.sort();
        out
    }

    fn snapshot_context(&self, root: ContextId) -> Result<Snapshot> {
        let state = self.inner.lock();
        // The engine lock makes any capture a frozen cut; the members are
        // still visited owner-before-owned and recorded as one read set,
        // matching the other backends' snapshot semantics.
        let members = state.graph.subtree_topological(root)?;
        let event = EventId::new(state.ids.next_raw());
        if let Some(sink) = &state.history {
            sink.invoked(event);
        }
        let mut snapshot = Snapshot::new(root);
        let result = (|| -> Result<()> {
            for member in members {
                let slot = state
                    .contexts
                    .get(&member)
                    .ok_or(AeonError::ContextNotFound(member))?;
                let object = slot.object.lock();
                if let Some(sink) = &state.history {
                    sink.accessed(event, member, AccessMode::ReadOnly);
                }
                let captured = object.snapshot();
                if !captured.is_null() {
                    snapshot.insert(member, slot.class.clone(), captured);
                }
            }
            Ok(())
        })();
        if let Some(sink) = &state.history {
            sink.responded(event);
        }
        result.map(|()| snapshot)
    }

    fn restore_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        let state = self.inner.lock();
        for (id, _) in snapshot.entries() {
            // Fail before mutating anything when an entry vanished — the
            // same all-or-nothing contract as the runtime and the cluster.
            if !state.contexts.contains_key(id) {
                return Err(AeonError::ContextNotFound(*id));
            }
        }
        let event = EventId::new(state.ids.next_raw());
        if let Some(sink) = &state.history {
            sink.invoked(event);
        }
        let result = (|| -> Result<()> {
            for (id, entry) in snapshot.entries() {
                let slot = state
                    .contexts
                    .get(id)
                    .ok_or(AeonError::ContextNotFound(*id))?;
                let mut object = slot.object.lock();
                if let Some(sink) = &state.history {
                    sink.accessed(event, *id, AccessMode::Exclusive);
                }
                object.restore(&entry.state);
            }
            Ok(())
        })();
        if let Some(sink) = &state.history {
            sink.responded(event);
        }
        result
    }

    fn restore_context(
        &self,
        context: ContextId,
        state_value: &Value,
        server: ServerId,
    ) -> Result<()> {
        let mut state = self.inner.lock();
        if !state.online(server) {
            return Err(AeonError::ServerNotFound(server));
        }
        let class = state.graph.class_of(context)?.to_string();
        let factory =
            state
                .factories
                .get(&class)
                .cloned()
                .ok_or_else(|| AeonError::MigrationFailed {
                    context,
                    reason: format!("no factory registered for class {class}"),
                })?;
        let object = factory(state_value);
        // A re-host is recorded as a single-write event, like the other
        // backends.
        if let Some(sink) = &state.history {
            let event = EventId::new(state.ids.next_raw());
            sink.invoked(event);
            sink.accessed(event, context, AccessMode::Exclusive);
            sink.responded(event);
        }
        state.contexts.insert(
            context,
            SimSlot {
                class,
                object: Arc::new(Mutex::new(object)),
            },
        );
        state.placement.insert(context, server);
        Ok(())
    }

    fn shutdown(&self) {
        self.inner.lock().shutdown = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::KvContext;
    use aeon_types::args;

    #[test]
    fn events_execute_inline_and_charge_virtual_time() {
        let sim = SimDeployment::builder().servers(2).build().unwrap();
        let item = sim
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let session = sim.client();
        assert_eq!(
            session.call(item, "incr", args!["n", 5]).unwrap(),
            Value::from(5i64)
        );
        assert_eq!(sim.events_completed(), 1);
        let after_one = sim.virtual_now();
        assert!(after_one > SimTime::ZERO);
        session.call(item, "incr", args!["n", 1]).unwrap();
        assert!(sim.virtual_now() > after_one);
        assert!(sim.mean_virtual_latency() > SimDuration::ZERO);
    }

    #[test]
    fn readonly_and_unknown_method_semantics_match_the_runtime() {
        let sim = SimDeployment::builder().build().unwrap();
        let item = sim
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let session = sim.client();
        assert!(matches!(
            session.call_readonly(item, "incr", args!["n", 1]),
            Err(AeonError::ReadOnlyViolation { .. })
        ));
        assert!(matches!(
            session.call(item, "bogus", args![]),
            Err(AeonError::UnknownMethod { .. })
        ));
        assert_eq!(sim.events_failed(), 2);
    }

    #[test]
    fn migration_and_placement_are_tracked() {
        let sim = SimDeployment::builder().servers(3).build().unwrap();
        sim.register_class_factory(
            "Item",
            Arc::new(|state: &Value| {
                let mut item = KvContext::new("Item");
                ContextObject::restore(&mut item, state);
                Box::new(item) as Box<dyn ContextObject>
            }),
        );
        let item = sim
            .create_context(
                Box::new(KvContext::new("Item")),
                Placement::Server(ServerId::new(0)),
            )
            .unwrap();
        let session = sim.client();
        session.call(item, "set", args!["gold", 7]).unwrap();
        let moved = sim.migrate_context(item, ServerId::new(2)).unwrap();
        assert!(moved > 0);
        assert_eq!(sim.placement_of(item).unwrap(), ServerId::new(2));
        assert_eq!(
            session.call_readonly(item, "get", args!["gold"]).unwrap(),
            Value::from(7i64)
        );
    }

    #[test]
    fn contention_mode_saturates_a_single_sequencer() {
        // All events arrive at t=0 against one context on a one-core
        // server: the k-th event queues behind k predecessors, exactly the
        // fig5b saturation shape — but executing real contextclass code.
        let service = SimDuration::from_micros(100);
        let sim = SimDeployment::builder()
            .servers(1)
            .contention(1)
            .arrival_interval(SimDuration::ZERO)
            .service_time(service)
            .network_hop(SimDuration::ZERO)
            .build()
            .unwrap();
        let item = sim
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let session = sim.client();
        let events = 10u64;
        for _ in 0..events {
            session.call(item, "incr", args!["n", 1]).unwrap();
        }
        assert_eq!(sim.events_completed(), events);
        // Makespan: a serialized FIFO chain of `events` service times.
        let micros = |n: u64| SimTime::from_micros(service.as_micros() * n);
        assert_eq!(sim.virtual_now(), micros(events));
        // Mean latency of the chain: (1 + 2 + ... + 10)/10 = 5.5 services.
        assert_eq!(
            sim.mean_virtual_latency().as_micros(),
            service.as_micros() * (events + 1) / 2
        );
        assert!((sim.virtual_throughput() - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn readonly_events_overlap_on_shared_locks_and_spare_cores() {
        let service = SimDuration::from_micros(100);
        let build = |readonly: bool| {
            let sim = SimDeployment::builder()
                .servers(1)
                .contention(4)
                .arrival_interval(SimDuration::ZERO)
                .service_time(service)
                .network_hop(SimDuration::ZERO)
                .build()
                .unwrap();
            let item = sim
                .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                .unwrap();
            let session = sim.client();
            for _ in 0..4 {
                if readonly {
                    session.call_readonly(item, "get", args!["n"]).unwrap();
                } else {
                    session.call(item, "incr", args!["n", 1]).unwrap();
                }
            }
            sim.virtual_now()
        };
        // Four concurrent reads share the sequencer and spread over the
        // four cores; four writes serialize on the exclusive lock.
        assert_eq!(build(true), SimTime::ZERO + service);
        assert_eq!(build(false), SimTime::from_micros(service.as_micros() * 4));
    }

    #[test]
    fn contention_mode_scales_out_across_servers() {
        let service = SimDuration::from_micros(100);
        let makespan = |servers: usize| {
            let sim = SimDeployment::builder()
                .servers(servers)
                .contention(1)
                .arrival_interval(SimDuration::ZERO)
                .service_time(service)
                .network_hop(SimDuration::ZERO)
                .build()
                .unwrap();
            let contexts: Vec<ContextId> = (0..2)
                .map(|_| {
                    sim.create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                        .unwrap()
                })
                .collect();
            let session = sim.client();
            for i in 0..20 {
                session
                    .call(contexts[i % contexts.len()], "incr", args!["n", 1])
                    .unwrap();
            }
            sim.virtual_now()
        };
        // Independent sequencers on independent servers run in parallel:
        // doubling the servers halves the makespan (the fig5a shape).
        assert_eq!(makespan(2), SimTime::from_micros(service.as_micros() * 10));
        assert_eq!(makespan(1), SimTime::from_micros(service.as_micros() * 20));
    }

    #[test]
    fn reset_virtual_time_clears_the_timeline_between_phases() {
        let sim = SimDeployment::builder()
            .servers(1)
            .contention(1)
            .arrival_interval(SimDuration::ZERO)
            .network_hop(SimDuration::ZERO)
            .build()
            .unwrap();
        let item = sim
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let session = sim.client();
        for _ in 0..5 {
            session.call(item, "incr", args!["n", 1]).unwrap();
        }
        assert!(sim.contention_enabled());
        assert!(sim.virtual_now() > SimTime::ZERO);
        sim.reset_virtual_time();
        assert_eq!(sim.virtual_now(), SimTime::ZERO);
        assert_eq!(sim.events_completed(), 0);
        // State survives the reset; only virtual time rewinds.
        session.call(item, "incr", args!["n", 1]).unwrap();
        assert_eq!(
            session.call_readonly(item, "get", args!["n"]).unwrap(),
            Value::from(6i64)
        );
    }

    #[test]
    fn crash_and_restore_round_trip() {
        let sim = SimDeployment::builder().servers(2).build().unwrap();
        sim.register_class_factory(
            "Item",
            Arc::new(|state: &Value| {
                let mut item = KvContext::new("Item");
                ContextObject::restore(&mut item, state);
                Box::new(item) as Box<dyn ContextObject>
            }),
        );
        let item = sim
            .create_context(
                Box::new(KvContext::new("Item")),
                Placement::Server(ServerId::new(1)),
            )
            .unwrap();
        let session = sim.client();
        session.call(item, "set", args!["gold", 3]).unwrap();
        let snapshot = sim.snapshot_context(item).unwrap();
        sim.crash_server(ServerId::new(1)).unwrap();
        assert!(session.call_readonly(item, "get", args!["gold"]).is_err());
        let state = &snapshot.get(item).unwrap().state;
        sim.restore_context(item, state, ServerId::new(0)).unwrap();
        assert_eq!(
            session.call_readonly(item, "get", args!["gold"]).unwrap(),
            Value::from(3i64)
        );
    }
}
