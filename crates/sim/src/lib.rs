//! Deterministic cluster simulator used by the evaluation harness.
//!
//! The paper evaluates AEON against EventWave and Orleans on EC2.  This
//! crate provides the substitute substrate: a virtual-time simulation of a
//! cluster of servers executing multi-context events under different
//! coordination protocols.  It reproduces the *shapes* of the paper's
//! figures (who wins, where bottlenecks saturate, where crossovers fall) —
//! not the absolute EC2 numbers.
//!
//! The model is a greedy timeline simulation: requests are processed in
//! arrival order; every contended resource (a context's sequencer lock, a
//! server CPU core) tracks the virtual time at which it next becomes free.
//! A request's latency is the sum of the queueing delays it experiences at
//! the resources it visits plus its own service and network times.  This
//! captures saturation and contention effects while remaining exact enough
//! for FIFO resources and fully deterministic for a fixed seed.
//!
//! Systems modelled (see [`SystemKind`]):
//!
//! * **AEON** — events are sequenced at their target's dominator; placement
//!   is locality-aware (contexts co-located with their owners).
//! * **AEON_SO** — same runtime, single-ownership application structure.
//! * **EventWave** — every event is additionally ordered at the single tree
//!   root, which becomes the scalability bottleneck.
//! * **Orleans** (strict) — single-threaded grains with a coarse per-room /
//!   per-tree lock to obtain serializability, random placement, and a
//!   constant per-call overhead factor (managed runtime).
//! * **Orleans\*** — the non-serializable variant: no coarse lock, only
//!   per-grain mailbox serialization.

pub mod cluster;
pub mod deployment;
pub mod elastic;
pub mod engine;
pub mod metrics;
pub mod migration;
pub mod request;
pub mod resources;
pub mod system;

pub use cluster::SimCluster;
pub use deployment::{SimDeployment, SimDeploymentBuilder, SimSession};
pub use elastic::{ElasticConfig, ElasticOutcome, ElasticSetup};
pub use engine::Simulator;
pub use metrics::{Metrics, TimeSeries};
pub use migration::{
    migration_impact, EManagerThroughputModel, InstanceType, MigrationImpactConfig,
};
pub use request::{RequestSpec, Step};
pub use resources::{CpuTimeline, LockTimeline};
pub use system::SystemKind;
