//! Request specifications fed to the simulator.

use aeon_types::{ContextId, SimDuration, SimTime};

/// One context access within a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The context being accessed (its placement determines the server).
    pub context: ContextId,
    /// CPU time consumed by the method in this context.
    pub cpu: SimDuration,
    /// Whether this access must also serialize on the context's own
    /// per-context lock (single-threaded grain / shared item).  When
    /// `false`, only the sequencer lock and the CPU are contended.
    pub locked: bool,
}

impl Step {
    /// Creates a locked step (the common case).
    pub fn new(context: ContextId, cpu: SimDuration) -> Self {
        Self {
            context,
            cpu,
            locked: true,
        }
    }

    /// Creates a step that does not take the per-context lock.
    pub fn unlocked(context: ContextId, cpu: SimDuration) -> Self {
        Self {
            context,
            cpu,
            locked: false,
        }
    }
}

/// A client request (an event / transaction) to simulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpec {
    /// Submission time.
    pub arrival: SimTime,
    /// The sequencer contexts whose locks the event must hold for its whole
    /// duration (the dominator under AEON; the root under EventWave adds a
    /// second entry; empty for Orleans*).
    pub sequencers: Vec<ContextId>,
    /// Whether the event is read-only (sequencer locks taken in shared
    /// mode).
    pub readonly: bool,
    /// The context accesses performed by the event, in order.
    pub steps: Vec<Step>,
    /// Label used when reporting per-class metrics (e.g. "new_order").
    pub label: &'static str,
}

impl RequestSpec {
    /// Creates a request.
    pub fn new(arrival: SimTime, sequencers: Vec<ContextId>, steps: Vec<Step>) -> Self {
        Self {
            arrival,
            sequencers,
            readonly: false,
            steps,
            label: "request",
        }
    }

    /// Marks the request read-only.
    pub fn readonly(mut self) -> Self {
        self.readonly = true;
        self
    }

    /// Attaches a label for per-class reporting.
    pub fn labelled(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// Total CPU demand of the request.
    pub fn total_cpu(&self) -> SimDuration {
        self.steps.iter().map(|s| s.cpu).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_totals() {
        let c = ContextId::new(1);
        let r = RequestSpec::new(
            SimTime::from_millis(5),
            vec![c],
            vec![
                Step::new(c, SimDuration::from_millis(2)),
                Step::unlocked(c, SimDuration::from_millis(3)),
            ],
        )
        .readonly()
        .labelled("payment");
        assert!(r.readonly);
        assert_eq!(r.label, "payment");
        assert_eq!(r.total_cpu(), SimDuration::from_millis(5));
        assert!(r.steps[0].locked);
        assert!(!r.steps[1].locked);
    }
}
