//! Elasticity experiment model (Figure 7 and Table 1 of the paper).
//!
//! A game-style workload with a time-varying client population runs against
//! either a fixed-size cluster or an elastic cluster whose size is driven by
//! an SLA policy (scale out when the recent average latency exceeds the SLA,
//! scale in when there is ample headroom).  The simulation proceeds in
//! rounds; each round is simulated with the greedy timeline engine.

use crate::cluster::SimCluster;
use crate::engine::Simulator;
use crate::request::{RequestSpec, Step};
use aeon_net::LatencyModel;
use aeon_types::{ContextId, ServerId, SimDuration, SimTime};

/// Whether the cluster is elastic or statically sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticSetup {
    /// Fixed number of servers.
    Static(usize),
    /// SLA-driven elastic sizing, starting from the given number of servers.
    Elastic { initial: usize },
}

impl std::fmt::Display for ElasticSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElasticSetup::Static(n) => write!(f, "{n}-server"),
            ElasticSetup::Elastic { .. } => write!(f, "Elastic"),
        }
    }
}

/// Parameters of the elasticity experiment.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Round length (the eManager's policy evaluation period).
    pub round: SimDuration,
    /// Number of rounds to simulate.
    pub rounds: usize,
    /// SLA on request latency.
    pub sla: SimDuration,
    /// Number of game rooms (load is spread across rooms).
    pub rooms: usize,
    /// Requests per client per second.
    pub request_rate_per_client: f64,
    /// CPU time per request.
    pub service: SimDuration,
    /// Number of clients active in each round (the ramp of Figure 7).
    pub clients_per_round: Vec<usize>,
    /// Maximum servers the elastic controller may allocate.
    pub max_servers: usize,
    /// Cost (pause) applied to rooms moved during a scale-out round.
    pub migration_pause: SimDuration,
}

impl ElasticConfig {
    /// The configuration used for Figure 7 / Table 1: clients ramp up from 8
    /// to 128 and back down following a bell shape over 600 seconds.
    pub fn paper_default() -> Self {
        let rounds = 60;
        let clients_per_round = (0..rounds)
            .map(|i| {
                // Bell-shaped ramp peaking mid-experiment at 128 clients.
                let x = i as f64 / (rounds - 1) as f64;
                let bell = (-((x - 0.5) * 4.0).powi(2)).exp();
                (8.0 + 120.0 * bell).round() as usize
            })
            .collect();
        Self {
            round: SimDuration::from_secs(10),
            rounds,
            sla: SimDuration::from_millis(10),
            rooms: 64,
            request_rate_per_client: 60.0,
            service: SimDuration::from_micros(2_500),
            clients_per_round,
            max_servers: 40,
            migration_pause: SimDuration::from_millis(250),
        }
    }
}

/// One round of the elasticity experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticRound {
    /// Start time of the round.
    pub time: SimTime,
    /// Active clients during the round.
    pub clients: usize,
    /// Servers in use during the round.
    pub servers: usize,
    /// Average request latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Fraction of the round's requests violating the SLA.
    pub violations: f64,
}

/// The outcome of the elasticity experiment for one setup.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// The setup that was simulated.
    pub setup: ElasticSetup,
    /// Per-round measurements.
    pub rounds: Vec<ElasticRound>,
}

impl ElasticOutcome {
    /// Percentage (0–100) of all requests that violated the SLA
    /// (Table 1, column "% of requests > 10ms" — approximated per round).
    pub fn violation_percent(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        // Weight rounds by the number of clients (proportional to request
        // volume).
        let total: f64 = self.rounds.iter().map(|r| r.clients as f64).sum();
        let violating: f64 = self
            .rounds
            .iter()
            .map(|r| r.violations * r.clients as f64)
            .sum();
        100.0 * violating / total
    }

    /// Average number of servers used (Table 1, column "Avg. servers").
    pub fn average_servers(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.servers as f64).sum::<f64>() / self.rounds.len() as f64
    }
}

/// Runs the elasticity experiment for one setup.
pub fn run_elastic(config: &ElasticConfig, setup: ElasticSetup) -> ElasticOutcome {
    let mut servers = match setup {
        ElasticSetup::Static(n) => n,
        ElasticSetup::Elastic { initial } => initial,
    };
    let simulator = Simulator::new();
    let mut rounds = Vec::with_capacity(config.rounds);
    let mut pending_migration_pause = false;
    for (i, &clients) in config
        .clients_per_round
        .iter()
        .enumerate()
        .take(config.rounds)
    {
        let start = SimTime::from_micros(i as u64 * config.round.as_micros());
        // Build the round's cluster: rooms spread round-robin over servers.
        // One core per server (the experiment runs on m1.small instances).
        let mut cluster = SimCluster::new(servers, 1)
            .with_latency(LatencyModel::BaseplusExp {
                base_micros: 300,
                mean_tail_micros: 120,
            })
            .with_seed(1000 + i as u64);
        let rooms: Vec<ContextId> = (0..config.rooms as u64).map(ContextId::new).collect();
        for (r, room) in rooms.iter().enumerate() {
            cluster.place(*room, ServerId::new((r % servers) as u32));
        }
        if pending_migration_pause {
            // Rooms rebalanced onto the new servers are briefly unavailable.
            let moved: Vec<ContextId> = rooms
                .iter()
                .copied()
                .filter(|r| (r.raw() as usize % servers) >= servers / 2)
                .collect();
            cluster.block_contexts_until(&moved, SimTime::ZERO + config.migration_pause);
            pending_migration_pause = false;
        }
        // Generate the round's requests.
        let rate = clients as f64 * config.request_rate_per_client;
        let total = (rate * config.round.as_secs_f64()) as usize;
        let requests: Vec<RequestSpec> = (0..total)
            .map(|k| {
                let arrival = SimTime::from_micros((k as f64 / rate * 1e6) as u64);
                let room = rooms[k % rooms.len()];
                RequestSpec::new(arrival, vec![room], vec![Step::new(room, config.service)])
            })
            .collect();
        let metrics = simulator.run(&mut cluster, &requests);
        let avg_latency_ms = metrics.mean_latency_ms();
        let violations = metrics.fraction_violating(config.sla);
        rounds.push(ElasticRound {
            time: start,
            clients,
            servers,
            avg_latency_ms,
            violations,
        });
        // Elastic controller: the SLA policy of §6.2.
        if let ElasticSetup::Elastic { .. } = setup {
            if avg_latency_ms > config.sla.as_millis_f64() && servers < config.max_servers {
                servers = (servers + 4).min(config.max_servers);
                pending_migration_pause = true;
            } else if avg_latency_ms < config.sla.as_millis_f64() * 0.4 && servers > 4 {
                servers -= 2;
            }
        }
    }
    ElasticOutcome { setup, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ElasticConfig {
        let mut c = ElasticConfig::paper_default();
        c.rounds = 12;
        c.clients_per_round = (0..12)
            .map(|i| {
                let x = i as f64 / 11.0;
                let bell = (-((x - 0.5) * 4.0).powi(2)).exp();
                (4.0 + 60.0 * bell).round() as usize
            })
            .collect();
        c.rooms = 32;
        c
    }

    #[test]
    fn elastic_setup_meets_sla_better_than_small_static() {
        let config = small_config();
        let elastic = run_elastic(&config, ElasticSetup::Elastic { initial: 4 });
        let static4 = run_elastic(&config, ElasticSetup::Static(4));
        let static32 = run_elastic(&config, ElasticSetup::Static(32));
        assert!(elastic.violation_percent() < static4.violation_percent());
        // The big static fleet meets the SLA but uses more servers on
        // average than the elastic one.
        assert!(static32.violation_percent() <= elastic.violation_percent() + 1.0);
        assert!(elastic.average_servers() < 32.0);
    }

    #[test]
    fn elastic_cluster_grows_under_load_and_shrinks_after() {
        let config = small_config();
        let outcome = run_elastic(&config, ElasticSetup::Elastic { initial: 4 });
        let max_servers = outcome.rounds.iter().map(|r| r.servers).max().unwrap();
        let first = outcome.rounds.first().unwrap().servers;
        let last = outcome.rounds.last().unwrap().servers;
        assert!(max_servers > first, "scaled out under load");
        assert!(last < max_servers, "scaled back in after the peak");
    }

    #[test]
    fn static_setup_never_changes_size() {
        let config = small_config();
        let outcome = run_elastic(&config, ElasticSetup::Static(8));
        assert!(outcome.rounds.iter().all(|r| r.servers == 8));
        assert_eq!(outcome.setup.to_string(), "8-server");
        assert_eq!(ElasticSetup::Elastic { initial: 4 }.to_string(), "Elastic");
    }

    #[test]
    fn paper_default_has_a_bell_shaped_client_ramp() {
        let config = ElasticConfig::paper_default();
        let clients = &config.clients_per_round;
        let peak = *clients.iter().max().unwrap();
        assert_eq!(clients.len(), config.rounds);
        assert!((120..=128).contains(&peak));
        assert!(clients[0] < 20);
        assert!(clients[config.rounds - 1] < 20);
    }
}
