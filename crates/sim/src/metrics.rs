//! Metrics collected by simulation runs.

use aeon_types::{SimDuration, SimTime};

/// A single completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the response reached the client.
    pub completed_at: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Whether the request was read-only.
    pub readonly: bool,
}

/// Throughput / latency time series with fixed-size buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Bucket width.
    pub bucket: SimDuration,
    /// Per-bucket (throughput in requests/s, mean latency in ms).
    pub points: Vec<(SimTime, f64, f64)>,
}

/// Aggregated results of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    completions: Vec<Completion>,
}

impl Metrics {
    /// Creates an empty metrics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, completed_at: SimTime, latency: SimDuration, readonly: bool) {
        self.completions.push(Completion {
            completed_at,
            latency,
            readonly,
        });
    }

    /// Number of completed requests.
    pub fn count(&self) -> usize {
        self.completions.len()
    }

    /// Returns `true` when nothing completed.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// Time at which the last request completed.
    pub fn makespan(&self) -> SimTime {
        self.completions
            .iter()
            .map(|c| c.completed_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Overall throughput in requests per second, measured over the
    /// makespan (or over `horizon` when provided and later).
    pub fn throughput(&self, horizon: Option<SimTime>) -> f64 {
        let end = horizon
            .unwrap_or_else(|| self.makespan())
            .max(self.makespan());
        let secs = end.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / secs
    }

    /// Mean latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions
            .iter()
            .map(|c| c.latency.as_millis_f64())
            .sum::<f64>()
            / self.completions.len() as f64
    }

    /// Latency percentile (e.g. `0.99`) in milliseconds.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let mut latencies: Vec<SimDuration> = self.completions.iter().map(|c| c.latency).collect();
        latencies.sort();
        let idx = ((latencies.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        latencies[idx].as_millis_f64()
    }

    /// Fraction of requests whose latency exceeded `sla`.
    pub fn fraction_violating(&self, sla: SimDuration) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.iter().filter(|c| c.latency > sla).count() as f64
            / self.completions.len() as f64
    }

    /// Builds a throughput / latency time series with the given bucket
    /// width, covering `[0, horizon]`.
    pub fn time_series(&self, bucket: SimDuration, horizon: SimTime) -> TimeSeries {
        let buckets = (horizon.as_micros() / bucket.as_micros().max(1)) as usize + 1;
        let mut counts = vec![0u64; buckets];
        let mut latency_sums = vec![0f64; buckets];
        for c in &self.completions {
            let idx = (c.completed_at.as_micros() / bucket.as_micros().max(1)) as usize;
            if idx < buckets {
                counts[idx] += 1;
                latency_sums[idx] += c.latency.as_millis_f64();
            }
        }
        let points = (0..buckets)
            .map(|i| {
                let t = SimTime::from_micros(i as u64 * bucket.as_micros());
                let tput = counts[i] as f64 / bucket.as_secs_f64();
                let lat = if counts[i] == 0 {
                    0.0
                } else {
                    latency_sums[i] / counts[i] as f64
                };
                (t, tput, lat)
            })
            .collect();
        TimeSeries { bucket, points }
    }

    /// Iterates over raw completions.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Metrics {
        let mut m = Metrics::new();
        for i in 1..=10u64 {
            m.record(
                SimTime::from_millis(i * 100),
                SimDuration::from_millis(i),
                i % 2 == 0,
            );
        }
        m
    }

    #[test]
    fn counts_and_throughput() {
        let m = metrics();
        assert_eq!(m.count(), 10);
        assert_eq!(m.makespan(), SimTime::from_millis(1000));
        assert!((m.throughput(None) - 10.0).abs() < 1e-9);
        assert!((m.throughput(Some(SimTime::from_secs(2))) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn latency_statistics() {
        let m = metrics();
        assert!((m.mean_latency_ms() - 5.5).abs() < 1e-9);
        assert_eq!(m.latency_percentile_ms(0.0), 1.0);
        assert_eq!(m.latency_percentile_ms(1.0), 10.0);
        assert!((m.fraction_violating(SimDuration::from_millis(5)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_series_buckets_completions() {
        let m = metrics();
        let ts = m.time_series(SimDuration::from_millis(500), SimTime::from_secs(1));
        assert_eq!(ts.points.len(), 3);
        // First bucket holds completions at 100..400ms => 4 requests over 0.5s.
        assert!((ts.points[0].1 - 8.0).abs() < 1e-9);
        assert!(ts.points[0].2 > 0.0);
    }

    #[test]
    fn empty_metrics_are_well_behaved() {
        let m = Metrics::new();
        assert!(m.is_empty());
        assert_eq!(m.throughput(None), 0.0);
        assert_eq!(m.mean_latency_ms(), 0.0);
        assert_eq!(m.latency_percentile_ms(0.99), 0.0);
        assert_eq!(m.fraction_violating(SimDuration::from_millis(1)), 0.0);
    }
}
