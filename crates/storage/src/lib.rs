//! Simulated cloud storage substrate.
//!
//! The paper stores the context mapping, the ownership network, ongoing
//! migration records and context snapshots in an external cloud storage
//! service (S3-like) so that the eManager can be stateless and recover from
//! crashes (§5.1, §5.3).  This crate provides that substrate: a versioned
//! key/value store with compare-and-swap, implemented in memory.
//!
//! # Examples
//!
//! ```
//! use aeon_storage::{CloudStore, InMemoryStore};
//! use aeon_types::Value;
//!
//! let store = InMemoryStore::new();
//! let v1 = store.put("mapping/ctx-1", Value::from("srv-0")).unwrap();
//! // CAS succeeds only with the current version.
//! assert!(store.compare_and_swap("mapping/ctx-1", Some(v1), Value::from("srv-2")).is_ok());
//! assert!(store.compare_and_swap("mapping/ctx-1", Some(v1), Value::from("srv-3")).is_err());
//! ```

use aeon_types::{AeonError, Result, Value};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version number attached to every stored record; increases on every write
/// of that key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Version(pub u64);

/// A stored record: its value and the version it was written at.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The stored value.
    pub value: Value,
    /// Version of this write.
    pub version: Version,
}

/// The interface the rest of the system programs against.
///
/// All operations are linearizable; `compare_and_swap` is the primitive the
/// eManager uses to guarantee that at most one migration record exists per
/// context and that a recovering eManager observes a consistent prefix of
/// the migration steps.
pub trait CloudStore: Send + Sync + std::fmt::Debug {
    /// Reads the record stored under `key`.
    fn get(&self, key: &str) -> Option<Record>;

    /// Unconditionally writes `value` under `key`, returning the new
    /// version.
    ///
    /// # Errors
    ///
    /// Implementations may fail with [`AeonError::Storage`] (e.g. simulated
    /// outage).
    fn put(&self, key: &str, value: Value) -> Result<Version>;

    /// Writes `value` under `key` only if the current version matches
    /// `expected` (`None` = the key must not exist).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Storage`] describing the conflict when the
    /// precondition does not hold.
    fn compare_and_swap(
        &self,
        key: &str,
        expected: Option<Version>,
        value: Value,
    ) -> Result<Version>;

    /// Deletes `key`.  Deleting an absent key is a no-op.
    fn delete(&self, key: &str) -> Result<()>;

    /// Lists all keys starting with `prefix`, in lexicographic order.
    fn list_prefix(&self, prefix: &str) -> Vec<String>;
}

/// In-memory [`CloudStore`] implementation.
///
/// Clones share the same underlying storage, so a clone can be handed to
/// every server plus the eManager, mimicking a shared external service.
#[derive(Debug, Clone, Default)]
pub struct InMemoryStore {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: Mutex<BTreeMap<String, (Version, Value)>>,
    version_counter: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of read operations served (diagnostics).
    pub fn reads(&self) -> u64 {
        self.inner.reads.load(Ordering::Relaxed)
    }

    /// Number of write operations served (diagnostics).
    pub fn writes(&self) -> u64 {
        self.inner.writes.load(Ordering::Relaxed)
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.inner.map.lock().len()
    }

    /// Returns `true` when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn next_version(&self) -> Version {
        Version(self.inner.version_counter.fetch_add(1, Ordering::Relaxed) + 1)
    }
}

impl CloudStore for InMemoryStore {
    fn get(&self, key: &str) -> Option<Record> {
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .map
            .lock()
            .get(key)
            .map(|(version, value)| Record {
                value: value.clone(),
                version: *version,
            })
    }

    fn put(&self, key: &str, value: Value) -> Result<Version> {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        let version = self.next_version();
        self.inner
            .map
            .lock()
            .insert(key.to_string(), (version, value));
        Ok(version)
    }

    fn compare_and_swap(
        &self,
        key: &str,
        expected: Option<Version>,
        value: Value,
    ) -> Result<Version> {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.map.lock();
        let current = map.get(key).map(|(v, _)| *v);
        if current != expected {
            return Err(AeonError::Storage(format!(
                "cas conflict on {key}: expected {expected:?}, found {current:?}"
            )));
        }
        let version = self.next_version();
        map.insert(key.to_string(), (version, value));
        Ok(version)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.map.lock().remove(key);
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .map
            .lock()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

/// Well-known key prefixes used by the framework.  Applications may use any
/// other prefix.
pub mod keys {
    /// Context → server mapping entries (`mapping/<context id>`).
    pub const MAPPING_PREFIX: &str = "mapping/";
    /// Serialized ownership network.
    pub const OWNERSHIP_KEY: &str = "ownership/graph";
    /// In-flight migration records (`migration/<context id>`).
    pub const MIGRATION_PREFIX: &str = "migration/";
    /// Snapshot data (`snapshot/<snapshot id>/<context id>`).
    pub const SNAPSHOT_PREFIX: &str = "snapshot/";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_delete_cycle() {
        let store = InMemoryStore::new();
        assert!(store.get("k").is_none());
        let v1 = store.put("k", Value::from(1i64)).unwrap();
        let rec = store.get("k").unwrap();
        assert_eq!(rec.value, Value::from(1i64));
        assert_eq!(rec.version, v1);
        store.delete("k").unwrap();
        assert!(store.get("k").is_none());
        // Deleting again is a no-op.
        store.delete("k").unwrap();
    }

    #[test]
    fn versions_increase_per_write() {
        let store = InMemoryStore::new();
        let v1 = store.put("a", Value::Null).unwrap();
        let v2 = store.put("a", Value::Null).unwrap();
        let v3 = store.put("b", Value::Null).unwrap();
        assert!(v1 < v2);
        assert!(v2 < v3);
    }

    #[test]
    fn cas_enforces_expected_version() {
        let store = InMemoryStore::new();
        // Create-if-absent.
        let v1 = store
            .compare_and_swap("k", None, Value::from(1i64))
            .unwrap();
        // A second create-if-absent fails.
        assert!(store
            .compare_and_swap("k", None, Value::from(2i64))
            .is_err());
        // Update with correct version succeeds; stale version fails.
        let v2 = store
            .compare_and_swap("k", Some(v1), Value::from(3i64))
            .unwrap();
        assert!(store
            .compare_and_swap("k", Some(v1), Value::from(4i64))
            .is_err());
        assert_eq!(store.get("k").unwrap().version, v2);
        assert_eq!(store.get("k").unwrap().value, Value::from(3i64));
        // The error is classified as transient so callers may retry.
        let err = store
            .compare_and_swap("k", Some(v1), Value::Null)
            .unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn list_prefix_is_sorted_and_filtered() {
        let store = InMemoryStore::new();
        store.put("mapping/ctx-2", Value::Null).unwrap();
        store.put("mapping/ctx-1", Value::Null).unwrap();
        store.put("migration/ctx-1", Value::Null).unwrap();
        let keys = store.list_prefix("mapping/");
        assert_eq!(
            keys,
            vec!["mapping/ctx-1".to_string(), "mapping/ctx-2".to_string()]
        );
        assert_eq!(store.list_prefix("nope/").len(), 0);
    }

    #[test]
    fn clones_share_state() {
        let store = InMemoryStore::new();
        let clone = store.clone();
        store.put("k", Value::from(9i64)).unwrap();
        assert_eq!(clone.get("k").unwrap().value, Value::from(9i64));
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn concurrent_cas_admits_exactly_one_winner() {
        let store = InMemoryStore::new();
        let base = store.put("counter", Value::from(0i64)).unwrap();
        let winners: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let store = store.clone();
                    scope.spawn(move || {
                        store
                            .compare_and_swap("counter", Some(base), Value::from(i as i64))
                            .is_ok()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.iter().filter(|w| **w).count(), 1);
    }

    #[test]
    fn read_write_counters() {
        let store = InMemoryStore::new();
        store.put("a", Value::Null).unwrap();
        store.get("a");
        store.get("b");
        store.list_prefix("a");
        assert_eq!(store.writes(), 1);
        assert_eq!(store.reads(), 3);
    }
}
