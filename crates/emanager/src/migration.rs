//! The five-step migration protocol (§5.2) with persisted progress.
//!
//! Every step of an ongoing migration is recorded in cloud storage under
//! `migration/<context>`, so that if the eManager crashes mid-way, a newly
//! elected eManager can read the record and finish the migration
//! ([`crate::EManager::recover`]).

use aeon_storage::CloudStore;
use aeon_types::{AeonError, ContextId, Result, ServerId, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The steps of the migration protocol, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MigrationStep {
    /// Step I: the destination server has been told to prepare a queue for
    /// the context.
    Prepared,
    /// Step II: the source server stopped accepting events for the context.
    SourceStopped,
    /// Step III: the context mapping now points at the destination.
    MappingUpdated,
    /// Step IV: the migrate event has been enqueued/executed and the state
    /// transferred.
    StateMoved,
    /// Step V: the destination resumed execution; the migration is complete.
    Completed,
}

impl MigrationStep {
    fn as_i64(self) -> i64 {
        match self {
            MigrationStep::Prepared => 1,
            MigrationStep::SourceStopped => 2,
            MigrationStep::MappingUpdated => 3,
            MigrationStep::StateMoved => 4,
            MigrationStep::Completed => 5,
        }
    }

    fn from_i64(raw: i64) -> Option<Self> {
        Some(match raw {
            1 => MigrationStep::Prepared,
            2 => MigrationStep::SourceStopped,
            3 => MigrationStep::MappingUpdated,
            4 => MigrationStep::StateMoved,
            5 => MigrationStep::Completed,
            _ => return None,
        })
    }
}

/// A persisted migration record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The context being migrated.
    pub context: ContextId,
    /// Source server.
    pub from: ServerId,
    /// Destination server.
    pub to: ServerId,
    /// Last completed step.
    pub step: MigrationStep,
}

impl MigrationRecord {
    /// Storage key of the record.
    pub fn key(context: ContextId) -> String {
        format!("{}{}", aeon_storage::keys::MIGRATION_PREFIX, context.raw())
    }

    /// Serialises the record.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("context", Value::from(self.context)),
            ("from", Value::from(i64::from(self.from.raw()))),
            ("to", Value::from(i64::from(self.to.raw()))),
            ("step", Value::from(self.step.as_i64())),
        ])
    }

    /// Deserialises a record.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Codec`] when the value is malformed.
    pub fn from_value(value: &Value) -> Result<Self> {
        let context = value
            .get("context")
            .and_then(Value::as_context)
            .ok_or_else(|| AeonError::Codec("migration record: missing context".into()))?;
        let from = value
            .get("from")
            .and_then(Value::as_i64)
            .ok_or_else(|| AeonError::Codec("migration record: missing from".into()))?;
        let to = value
            .get("to")
            .and_then(Value::as_i64)
            .ok_or_else(|| AeonError::Codec("migration record: missing to".into()))?;
        let step = value
            .get("step")
            .and_then(Value::as_i64)
            .and_then(MigrationStep::from_i64)
            .ok_or_else(|| AeonError::Codec("migration record: bad step".into()))?;
        Ok(Self {
            context,
            from: ServerId::new(from as u32),
            to: ServerId::new(to as u32),
            step,
        })
    }

    /// Persists the record (overwriting any previous step).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn persist(&self, store: &Arc<dyn CloudStore>) -> Result<()> {
        store.put(&Self::key(self.context), self.to_value())?;
        Ok(())
    }

    /// Loads the record for `context`, if a migration is in flight.
    pub fn load(store: &Arc<dyn CloudStore>, context: ContextId) -> Option<Self> {
        store
            .get(&Self::key(context))
            .and_then(|rec| Self::from_value(&rec.value).ok())
    }

    /// Loads every in-flight migration record.
    pub fn load_all(store: &Arc<dyn CloudStore>) -> Vec<Self> {
        store
            .list_prefix(aeon_storage::keys::MIGRATION_PREFIX)
            .into_iter()
            .filter_map(|key| store.get(&key))
            .filter_map(|rec| Self::from_value(&rec.value).ok())
            .collect()
    }

    /// Deletes the record (after step V).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn clear(store: &Arc<dyn CloudStore>, context: ContextId) -> Result<()> {
        store.delete(&Self::key(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_storage::InMemoryStore;

    fn record() -> MigrationRecord {
        MigrationRecord {
            context: ContextId::new(9),
            from: ServerId::new(0),
            to: ServerId::new(2),
            step: MigrationStep::SourceStopped,
        }
    }

    #[test]
    fn value_round_trip() {
        let r = record();
        let v = r.to_value();
        assert_eq!(MigrationRecord::from_value(&v).unwrap(), r);
        assert!(MigrationRecord::from_value(&Value::Null).is_err());
    }

    #[test]
    fn steps_are_ordered_and_round_trip() {
        let steps = [
            MigrationStep::Prepared,
            MigrationStep::SourceStopped,
            MigrationStep::MappingUpdated,
            MigrationStep::StateMoved,
            MigrationStep::Completed,
        ];
        for w in steps.windows(2) {
            assert!(w[0] < w[1]);
        }
        for s in steps {
            assert_eq!(MigrationStep::from_i64(s.as_i64()), Some(s));
        }
        assert_eq!(MigrationStep::from_i64(99), None);
    }

    #[test]
    fn persistence_cycle() {
        let store: Arc<dyn CloudStore> = Arc::new(InMemoryStore::new());
        let mut r = record();
        r.persist(&store).unwrap();
        assert_eq!(MigrationRecord::load(&store, r.context), Some(r.clone()));
        r.step = MigrationStep::Completed;
        r.persist(&store).unwrap();
        assert_eq!(
            MigrationRecord::load(&store, r.context).unwrap().step,
            MigrationStep::Completed
        );
        assert_eq!(MigrationRecord::load_all(&store).len(), 1);
        MigrationRecord::clear(&store, r.context).unwrap();
        assert!(MigrationRecord::load(&store, r.context).is_none());
        assert!(MigrationRecord::load_all(&store).is_empty());
    }
}
