//! The eManager service itself.

use crate::mapping::ContextMapping;
use crate::migration::{MigrationRecord, MigrationStep};
use crate::policy::{ElasticityAction, ElasticityPolicy, ServerMetrics};
use aeon_api::{Deployment, Snapshot};
use aeon_storage::CloudStore;
use aeon_types::{AeonError, ContextId, Result, ServerId, Value};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// The elasticity manager: maintains the context mapping, evaluates
/// elasticity policies, performs migrations, and exposes snapshots.
///
/// The manager is written entirely against the `aeon-api`
/// [`Deployment`] trait, so the same elasticity policies drive the
/// in-process runtime, the distributed cluster, and the deterministic
/// simulator — pass whichever backend `aeon::deploy` built.
///
/// The eManager itself is stateless in the sense of the paper: everything it
/// needs to recover (mapping, ownership network, in-flight migrations) lives
/// in the cloud storage substrate, so [`EManager::recover`] can finish the
/// work of a crashed predecessor.
pub struct EManager {
    deployment: Arc<dyn Deployment>,
    store: Arc<dyn CloudStore>,
    mapping: ContextMapping,
    policies: RwLock<Vec<Box<dyn ElasticityPolicy>>>,
    /// User-provided constraints: contexts that must never be migrated
    /// (the paper's constraint API, e.g. pinned contexts).
    pinned: Mutex<Vec<ContextId>>,
    /// Maximum number of servers the manager may allocate (cost constraint).
    max_servers: Mutex<Option<usize>>,
}

impl std::fmt::Debug for EManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EManager")
            .field("backend", &self.deployment.backend_name())
            .field("policies", &self.policies.read().len())
            .finish_non_exhaustive()
    }
}

impl EManager {
    /// Creates an eManager for `deployment`, persisting into `store`.
    pub fn new(deployment: Arc<dyn Deployment>, store: impl CloudStore + 'static) -> Self {
        let store: Arc<dyn CloudStore> = Arc::new(store);
        Self {
            deployment,
            mapping: ContextMapping::new(store.clone()),
            store,
            policies: RwLock::new(Vec::new()),
            pinned: Mutex::new(Vec::new()),
            max_servers: Mutex::new(None),
        }
    }

    /// The deployment this manager drives.
    pub fn deployment(&self) -> &Arc<dyn Deployment> {
        &self.deployment
    }

    /// Registers an elasticity policy.  Policies are evaluated in
    /// registration order on every [`EManager::tick`].
    pub fn add_policy(&self, policy: Box<dyn ElasticityPolicy>) {
        self.policies.write().push(policy);
    }

    /// Pins a context: elasticity decisions will never migrate it.
    pub fn pin_context(&self, context: ContextId) {
        self.pinned.lock().push(context);
    }

    /// Caps the number of servers the eManager may allocate (a cost
    /// constraint in the sense of §5.2).
    pub fn set_max_servers(&self, max: usize) {
        *self.max_servers.lock() = Some(max);
    }

    /// The context mapping view backed by cloud storage.
    pub fn mapping(&self) -> &ContextMapping {
        &self.mapping
    }

    /// Collects the current per-server metrics from the deployment (the
    /// periodic utilisation reports of §5.2; each backend derives them from
    /// what it can observe).
    pub fn collect_metrics(&self) -> Vec<ServerMetrics> {
        self.deployment.server_metrics()
    }

    /// Evaluates every registered policy against `metrics` and applies the
    /// resulting actions (scale out, rebalance, scale in).  Returns the
    /// actions that were applied.
    ///
    /// # Errors
    ///
    /// Propagates migration and storage failures; successfully applied
    /// actions are not rolled back.
    pub fn tick(&self, metrics: &[ServerMetrics]) -> Result<Vec<ElasticityAction>> {
        let mut applied = Vec::new();
        let decisions: Vec<ElasticityAction> = self
            .policies
            .read()
            .iter()
            .flat_map(|p| p.evaluate(metrics))
            .collect();
        for action in decisions {
            match &action {
                ElasticityAction::ScaleOut { count } => {
                    let limit = self.max_servers.lock().unwrap_or(usize::MAX);
                    let current = self.deployment.servers().len();
                    let allowed = limit.saturating_sub(current).min(*count);
                    for _ in 0..allowed {
                        self.deployment.add_server();
                    }
                    if allowed > 0 {
                        applied.push(ElasticityAction::ScaleOut { count: allowed });
                    }
                }
                ElasticityAction::Rebalance { from } => {
                    self.rebalance_from(*from)?;
                    applied.push(action);
                }
                ElasticityAction::ScaleIn { server } => {
                    if self.deployment.servers().len() > 1 {
                        self.drain_server(*server)?;
                        self.deployment.remove_server(*server)?;
                        applied.push(action);
                    }
                }
            }
        }
        Ok(applied)
    }

    /// Moves contexts from `from` to the least-loaded other servers until
    /// `from` holds no more than the fleet average.
    ///
    /// # Errors
    ///
    /// Propagates migration failures.
    pub fn rebalance_from(&self, from: ServerId) -> Result<()> {
        let servers = self.deployment.servers();
        if servers.len() < 2 {
            return Ok(());
        }
        let hosted = self.deployment.contexts_on(from);
        let average = self.deployment.context_count().div_ceil(servers.len());
        let excess = hosted.len().saturating_sub(average.max(1));
        if excess == 0 {
            return Ok(());
        }
        let pinned = self.pinned.lock().clone();
        let movable: Vec<ContextId> = hosted
            .into_iter()
            .filter(|c| !pinned.contains(c))
            .take(excess)
            .collect();
        for context in movable {
            // Pick the least loaded destination other than `from`.
            let dest = servers
                .iter()
                .filter(|s| **s != from)
                .min_by_key(|s| self.deployment.contexts_on(**s).len())
                .copied()
                .ok_or_else(|| AeonError::Config("no destination server".into()))?;
            self.migrate(context, dest)?;
        }
        Ok(())
    }

    /// Migrates every context off `server` (used before scaling in).
    ///
    /// # Errors
    ///
    /// Propagates migration failures.
    pub fn drain_server(&self, server: ServerId) -> Result<()> {
        let others: Vec<ServerId> = self
            .deployment
            .servers()
            .into_iter()
            .filter(|s| *s != server)
            .collect();
        if others.is_empty() {
            return Err(AeonError::Config("cannot drain the last server".into()));
        }
        for (i, context) in self.deployment.contexts_on(server).into_iter().enumerate() {
            self.migrate(context, others[i % others.len()])?;
        }
        Ok(())
    }

    /// Runs the five-step migration protocol for one context, persisting
    /// each step so a replacement eManager can finish it after a crash.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] / [`AeonError::ServerNotFound`] for
    ///   unknown ids.
    /// * Storage failures while persisting progress.
    pub fn migrate(&self, context: ContextId, to: ServerId) -> Result<()> {
        let from = self.deployment.placement_of(context)?;
        if from == to {
            return Ok(());
        }
        // Step I: destination prepares a queue for the context.
        let mut record = MigrationRecord {
            context,
            from,
            to,
            step: MigrationStep::Prepared,
        };
        record.persist(&self.store)?;
        // Step II: source stops accepting events targeting the context (each
        // backend realises the stop window its own way: the runtime parks
        // queued events on the context lock, the cluster buffers and
        // forwards).
        record.step = MigrationStep::SourceStopped;
        record.persist(&self.store)?;
        // Step III: the mapping now names the destination.
        self.mapping.record(context, to)?;
        record.step = MigrationStep::MappingUpdated;
        record.persist(&self.store)?;
        // Step IV: the migrate event drains the queue and moves the state.
        self.deployment.migrate_context(context, to)?;
        record.step = MigrationStep::StateMoved;
        record.persist(&self.store)?;
        // Step V: destination resumes execution; the record is cleared.
        record.step = MigrationStep::Completed;
        record.persist(&self.store)?;
        MigrationRecord::clear(&self.store, context)?;
        Ok(())
    }

    /// Completes migrations left unfinished by a crashed eManager and
    /// refreshes the mapping from the deployment's placement.
    ///
    /// Returns the number of migrations that were completed.
    ///
    /// # Errors
    ///
    /// Propagates migration and storage failures.
    pub fn recover(&self) -> Result<usize> {
        let mut finished = 0;
        for record in MigrationRecord::load_all(&self.store) {
            // Re-drive the migration from wherever it stopped; every step is
            // idempotent.
            if record.step < MigrationStep::Completed {
                self.mapping.record(record.context, record.to)?;
                self.deployment.migrate_context(record.context, record.to)?;
                finished += 1;
            }
            MigrationRecord::clear(&self.store, record.context)?;
        }
        // Refresh mapping entries for any context the storage does not know
        // about yet (e.g. contexts created while the old eManager was down).
        for server in self.deployment.servers() {
            for context in self.deployment.contexts_on(server) {
                self.mapping.record(context, server)?;
            }
        }
        Ok(finished)
    }

    /// Persists the current ownership network next to the mapping (§5.1).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn persist_ownership(&self) -> Result<()> {
        let graph = self.deployment.ownership_graph();
        self.store
            .put(aeon_storage::keys::OWNERSHIP_KEY, graph.to_value())?;
        Ok(())
    }

    /// Takes a consistent snapshot of `root` and its descendants and writes
    /// it to cloud storage under `snapshot/<name>` (§5.3).  Returns the
    /// number of contexts captured.
    ///
    /// Every backend captures the subtree as one frozen cut (the cluster
    /// runs the dominator-sequenced `FreezeReq`/`FreezeAck`/`ThawReq`
    /// protocol), so a checkpoint taken under load is crash-consistent: it
    /// restores to a state some serial execution of the workload could
    /// have produced, never a torn mix of member states.
    ///
    /// # Errors
    ///
    /// Propagates snapshot and storage failures (including
    /// [`aeon_types::AeonError::SnapshotFailed`] when a member's server
    /// crashes mid-freeze — the deployment thaws the surviving members
    /// before returning, so the checkpoint can simply be retried).
    pub fn checkpoint(&self, name: &str, root: ContextId) -> Result<usize> {
        let snapshot = self.deployment.snapshot_context(root)?;
        let key = format!("{}{}", aeon_storage::keys::SNAPSHOT_PREFIX, name);
        self.store.put(&key, snapshot.to_value())?;
        Ok(snapshot.len())
    }

    /// Restores a checkpoint previously written with [`EManager::checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Storage`] when the checkpoint does not exist,
    /// plus snapshot restore failures.
    pub fn restore_checkpoint(&self, name: &str) -> Result<()> {
        let key = format!("{}{}", aeon_storage::keys::SNAPSHOT_PREFIX, name);
        let record = self
            .store
            .get(&key)
            .ok_or_else(|| AeonError::Storage(format!("no checkpoint named {name}")))?;
        let snapshot = Snapshot::from_value(&record.value)?;
        self.deployment.restore_snapshot(&snapshot)
    }

    /// Access to the persisted ownership network, if any.
    pub fn load_ownership(&self) -> Option<Value> {
        self.store
            .get(aeon_storage::keys::OWNERSHIP_KEY)
            .map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ServerContentionPolicy, SlaPolicy};
    use aeon::prelude::{args, KvContext, Placement};
    use aeon::{Backend, DeployConfig};
    use aeon_storage::InMemoryStore;

    /// Builds a deployment through the facade's config-driven entry point;
    /// the manager only ever sees `dyn Deployment`.
    fn deploy(backend: Backend, servers: usize) -> Arc<dyn Deployment> {
        aeon::deploy_shared(DeployConfig::new(backend).servers(servers)).unwrap()
    }

    fn with_contexts(
        backend: Backend,
        servers: usize,
        contexts: usize,
    ) -> (Arc<dyn Deployment>, Vec<ContextId>) {
        let deployment = deploy(backend, servers);
        let ids = (0..contexts)
            .map(|_| {
                deployment
                    .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                    .unwrap()
            })
            .collect();
        (deployment, ids)
    }

    #[test]
    fn contention_policy_scales_out_and_rebalances() {
        let (deployment, _) = with_contexts(Backend::Runtime, 1, 6);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(2)));
        let actions = manager.tick(&manager.collect_metrics()).unwrap();
        assert!(actions
            .iter()
            .any(|a| matches!(a, ElasticityAction::ScaleOut { .. })));
        assert!(deployment.servers().len() > 1);
        // After a couple of ticks every server is under the limit.
        manager.tick(&manager.collect_metrics()).unwrap();
        for server in deployment.servers() {
            assert!(deployment.contexts_on(server).len() <= 3);
        }
        deployment.shutdown();
    }

    #[test]
    fn the_same_policy_drives_the_simulator_backend() {
        // The point of the refactor: identical manager code, different
        // execution substrate.
        let (deployment, _) = with_contexts(Backend::Sim, 1, 6);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(2)));
        manager.tick(&manager.collect_metrics()).unwrap();
        manager.tick(&manager.collect_metrics()).unwrap();
        assert!(deployment.servers().len() > 1);
        for server in deployment.servers() {
            assert!(deployment.contexts_on(server).len() <= 3);
        }
        deployment.shutdown();
    }

    #[test]
    fn max_servers_cap_is_respected() {
        let (deployment, _) = with_contexts(Backend::Runtime, 1, 12);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(1)));
        manager.set_max_servers(3);
        manager.tick(&manager.collect_metrics()).unwrap();
        manager.tick(&manager.collect_metrics()).unwrap();
        assert!(deployment.servers().len() <= 3);
        deployment.shutdown();
    }

    #[test]
    fn migrate_updates_mapping_and_clears_record() {
        let (deployment, ids) = with_contexts(Backend::Runtime, 2, 2);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        let ctx = ids[0];
        let from = deployment.placement_of(ctx).unwrap();
        let to = deployment
            .servers()
            .into_iter()
            .find(|s| *s != from)
            .unwrap();
        manager.migrate(ctx, to).unwrap();
        assert_eq!(deployment.placement_of(ctx).unwrap(), to);
        assert_eq!(manager.mapping().lookup(ctx).unwrap(), to);
        // Migrating to the current location is a no-op.
        manager.migrate(ctx, to).unwrap();
        deployment.shutdown();
    }

    #[test]
    fn pinned_contexts_are_not_rebalanced() {
        let (deployment, ids) = with_contexts(Backend::Runtime, 1, 4);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        for id in &ids {
            manager.pin_context(*id);
        }
        deployment.add_server();
        manager.rebalance_from(deployment.servers()[0]).unwrap();
        // Everything stayed put because every context is pinned.
        assert_eq!(deployment.contexts_on(deployment.servers()[0]).len(), 4);
        deployment.shutdown();
    }

    #[test]
    fn drain_and_scale_in() {
        let (deployment, _) = with_contexts(Backend::Runtime, 2, 4);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        let victim = deployment.servers()[1];
        manager.drain_server(victim).unwrap();
        assert!(deployment.contexts_on(victim).is_empty());
        deployment.remove_server(victim).unwrap();
        assert_eq!(deployment.servers().len(), 1);
        deployment.shutdown();
    }

    #[test]
    fn recovery_finishes_interrupted_migrations() {
        let (deployment, ids) = with_contexts(Backend::Runtime, 2, 1);
        let store = InMemoryStore::new();
        let ctx = ids[0];
        let from = deployment.placement_of(ctx).unwrap();
        let to = deployment
            .servers()
            .into_iter()
            .find(|s| *s != from)
            .unwrap();
        // Simulate an eManager that crashed after persisting step II.
        {
            let arc_store: Arc<dyn CloudStore> = Arc::new(store.clone());
            MigrationRecord {
                context: ctx,
                from,
                to,
                step: MigrationStep::SourceStopped,
            }
            .persist(&arc_store)
            .unwrap();
        }
        let manager = EManager::new(deployment.clone(), store);
        let finished = manager.recover().unwrap();
        assert_eq!(finished, 1);
        assert_eq!(deployment.placement_of(ctx).unwrap(), to);
        assert_eq!(manager.mapping().lookup(ctx).unwrap(), to);
        deployment.shutdown();
    }

    #[test]
    fn checkpoint_and_restore_via_storage() {
        let deployment = deploy(Backend::Runtime, 1);
        let room = deployment
            .create_context(Box::new(KvContext::new("Room")), Placement::Auto)
            .unwrap();
        let session = deployment.session();
        session.call(room, "set", args!["name", "castle"]).unwrap();
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        assert_eq!(manager.checkpoint("daily", room).unwrap(), 1);
        session.call(room, "set", args!["name", "ruins"]).unwrap();
        manager.restore_checkpoint("daily").unwrap();
        assert_eq!(
            session.call_readonly(room, "get", args!["name"]).unwrap(),
            aeon_types::Value::from("castle")
        );
        assert!(manager.restore_checkpoint("missing").is_err());
        deployment.shutdown();
    }

    #[test]
    fn checkpoint_under_cluster_load_is_a_frozen_cut() {
        use aeon_apps::bank::{bank_class_graph, deploy_bank, BankWorldConfig};
        use std::sync::atomic::{AtomicBool, Ordering};

        let deployment = aeon::deploy_shared(
            aeon::DeployConfig::new(Backend::Cluster)
                .servers(2)
                .class_graph(bank_class_graph()),
        )
        .unwrap();
        aeon_apps::bank::register_bank_factories(&*deployment);
        let config = BankWorldConfig::default();
        let world = deploy_bank(&*deployment, &config).unwrap();
        let expected = world.expected_total(&config);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());

        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let session = deployment.session();
            let world = world.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let accounts = &world.accounts_of[i % world.branches.len()];
                    let _ = session.call(
                        world.branches[i % world.branches.len()],
                        "transfer",
                        aeon_types::args![accounts[i % accounts.len()], accounts[0], 2i64],
                    );
                    i += 1;
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        let captured = manager.checkpoint("under-load", world.bank).unwrap();
        assert!(captured >= world.accounts.len());
        stop.store(true, Ordering::SeqCst);
        writer.join().unwrap();

        // The checkpointed cut conserves the total: restoring it mid-history
        // yields a state a serial execution could have produced.
        manager.restore_checkpoint("under-load").unwrap();
        let session = deployment.session();
        assert_eq!(
            session
                .call_readonly(world.bank, "audit", aeon_types::args![])
                .unwrap(),
            aeon_types::Value::from(expected)
        );
        deployment.shutdown();
    }

    #[test]
    fn ownership_network_is_persisted() {
        let (deployment, _) = with_contexts(Backend::Runtime, 1, 3);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        manager.persist_ownership().unwrap();
        let value = manager.load_ownership().expect("persisted graph");
        let graph = aeon_ownership::OwnershipGraph::from_value(&value).unwrap();
        assert_eq!(graph.len(), 3);
        deployment.shutdown();
    }

    #[test]
    fn sla_policy_drives_scale_out_via_tick() {
        let (deployment, _) = with_contexts(Backend::Runtime, 1, 2);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(SlaPolicy::new(10.0).with_step(3)));
        // Fake metrics reporting an SLA violation.
        let metrics = vec![ServerMetrics {
            server: deployment.servers()[0],
            cpu: 0.9,
            memory: 0.5,
            io: 0.2,
            context_count: 2,
            queue_depth: 0,
            avg_latency_ms: 50.0,
            latency: aeon_types::LatencyHistogram::new(),
        }];
        manager.tick(&metrics).unwrap();
        assert_eq!(deployment.servers().len(), 4);
        deployment.shutdown();
    }
}
