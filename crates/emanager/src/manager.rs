//! The eManager service itself.

use crate::mapping::ContextMapping;
use crate::migration::{MigrationRecord, MigrationStep};
use crate::policy::{ElasticityAction, ElasticityPolicy, ServerMetrics};
use aeon_runtime::AeonRuntime;
use aeon_storage::CloudStore;
use aeon_types::{AeonError, ContextId, Result, ServerId, Value};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// The elasticity manager: maintains the context mapping, evaluates
/// elasticity policies, performs migrations, and exposes snapshots.
///
/// The eManager itself is stateless in the sense of the paper: everything it
/// needs to recover (mapping, ownership network, in-flight migrations) lives
/// in the cloud storage substrate, so [`EManager::recover`] can finish the
/// work of a crashed predecessor.
pub struct EManager {
    runtime: AeonRuntime,
    store: Arc<dyn CloudStore>,
    mapping: ContextMapping,
    policies: RwLock<Vec<Box<dyn ElasticityPolicy>>>,
    /// User-provided constraints: contexts that must never be migrated
    /// (the paper's constraint API, e.g. pinned contexts).
    pinned: Mutex<Vec<ContextId>>,
    /// Maximum number of servers the manager may allocate (cost constraint).
    max_servers: Mutex<Option<usize>>,
}

impl std::fmt::Debug for EManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EManager")
            .field("policies", &self.policies.read().len())
            .finish_non_exhaustive()
    }
}

impl EManager {
    /// Creates an eManager for `runtime`, persisting into `store`.
    pub fn new(runtime: AeonRuntime, store: impl CloudStore + 'static) -> Self {
        let store: Arc<dyn CloudStore> = Arc::new(store);
        Self {
            runtime,
            mapping: ContextMapping::new(store.clone()),
            store,
            policies: RwLock::new(Vec::new()),
            pinned: Mutex::new(Vec::new()),
            max_servers: Mutex::new(None),
        }
    }

    /// Registers an elasticity policy.  Policies are evaluated in
    /// registration order on every [`EManager::tick`].
    pub fn add_policy(&self, policy: Box<dyn ElasticityPolicy>) {
        self.policies.write().push(policy);
    }

    /// Pins a context: elasticity decisions will never migrate it.
    pub fn pin_context(&self, context: ContextId) {
        self.pinned.lock().push(context);
    }

    /// Caps the number of servers the eManager may allocate (a cost
    /// constraint in the sense of §5.2).
    pub fn set_max_servers(&self, max: usize) {
        *self.max_servers.lock() = Some(max);
    }

    /// The context mapping view backed by cloud storage.
    pub fn mapping(&self) -> &ContextMapping {
        &self.mapping
    }

    /// Collects current metrics from the runtime (context counts and
    /// latency; CPU/memory are approximated from relative load since the
    /// logical servers share the host machine).
    pub fn collect_metrics(&self) -> Vec<ServerMetrics> {
        let servers = self.runtime.servers();
        let total_contexts: usize = self.runtime.context_count();
        let latency = self.runtime.stats().latency_summary();
        servers
            .iter()
            .map(|&server| {
                let hosted = self.runtime.contexts_on(server).len();
                let share = if total_contexts == 0 {
                    0.0
                } else {
                    hosted as f64 / total_contexts as f64
                };
                ServerMetrics {
                    server,
                    cpu: share,
                    memory: share,
                    io: share * 0.5,
                    context_count: hosted,
                    avg_latency_ms: latency.mean_micros / 1_000.0,
                }
            })
            .collect()
    }

    /// Evaluates every registered policy against `metrics` and applies the
    /// resulting actions (scale out, rebalance, scale in).  Returns the
    /// actions that were applied.
    ///
    /// # Errors
    ///
    /// Propagates migration and storage failures; successfully applied
    /// actions are not rolled back.
    pub fn tick(&self, metrics: &[ServerMetrics]) -> Result<Vec<ElasticityAction>> {
        let mut applied = Vec::new();
        let decisions: Vec<ElasticityAction> = self
            .policies
            .read()
            .iter()
            .flat_map(|p| p.evaluate(metrics))
            .collect();
        for action in decisions {
            match &action {
                ElasticityAction::ScaleOut { count } => {
                    let limit = self.max_servers.lock().unwrap_or(usize::MAX);
                    let current = self.runtime.servers().len();
                    let allowed = limit.saturating_sub(current).min(*count);
                    for _ in 0..allowed {
                        self.runtime.add_server();
                    }
                    if allowed > 0 {
                        applied.push(ElasticityAction::ScaleOut { count: allowed });
                    }
                }
                ElasticityAction::Rebalance { from } => {
                    self.rebalance_from(*from)?;
                    applied.push(action);
                }
                ElasticityAction::ScaleIn { server } => {
                    if self.runtime.servers().len() > 1 {
                        self.drain_server(*server)?;
                        self.runtime.remove_server(*server)?;
                        applied.push(action);
                    }
                }
            }
        }
        Ok(applied)
    }

    /// Moves contexts from `from` to the least-loaded other servers until
    /// `from` holds no more than the fleet average.
    ///
    /// # Errors
    ///
    /// Propagates migration failures.
    pub fn rebalance_from(&self, from: ServerId) -> Result<()> {
        let servers = self.runtime.servers();
        if servers.len() < 2 {
            return Ok(());
        }
        let hosted = self.runtime.contexts_on(from);
        let average = self.runtime.context_count().div_ceil(servers.len());
        let excess = hosted.len().saturating_sub(average.max(1));
        if excess == 0 {
            return Ok(());
        }
        let pinned = self.pinned.lock().clone();
        let movable: Vec<ContextId> = hosted
            .into_iter()
            .filter(|c| !pinned.contains(c))
            .take(excess)
            .collect();
        for context in movable {
            // Pick the least loaded destination other than `from`.
            let dest = servers
                .iter()
                .filter(|s| **s != from)
                .min_by_key(|s| self.runtime.contexts_on(**s).len())
                .copied()
                .ok_or_else(|| AeonError::Config("no destination server".into()))?;
            self.migrate(context, dest)?;
        }
        Ok(())
    }

    /// Migrates every context off `server` (used before scaling in).
    ///
    /// # Errors
    ///
    /// Propagates migration failures.
    pub fn drain_server(&self, server: ServerId) -> Result<()> {
        let others: Vec<ServerId> = self
            .runtime
            .servers()
            .into_iter()
            .filter(|s| *s != server)
            .collect();
        if others.is_empty() {
            return Err(AeonError::Config("cannot drain the last server".into()));
        }
        for (i, context) in self.runtime.contexts_on(server).into_iter().enumerate() {
            self.migrate(context, others[i % others.len()])?;
        }
        Ok(())
    }

    /// Runs the five-step migration protocol for one context, persisting
    /// each step so a replacement eManager can finish it after a crash.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] / [`AeonError::ServerNotFound`] for
    ///   unknown ids.
    /// * Storage failures while persisting progress.
    pub fn migrate(&self, context: ContextId, to: ServerId) -> Result<()> {
        let from = self.runtime.placement_of(context)?;
        if from == to {
            return Ok(());
        }
        // Step I: destination prepares a queue for the context.
        let mut record = MigrationRecord {
            context,
            from,
            to,
            step: MigrationStep::Prepared,
        };
        record.persist(&self.store)?;
        // Step II: source stops accepting events targeting the context (in
        // this runtime, queued events simply wait on the context lock).
        record.step = MigrationStep::SourceStopped;
        record.persist(&self.store)?;
        // Step III: the mapping now names the destination.
        self.mapping.record(context, to)?;
        record.step = MigrationStep::MappingUpdated;
        record.persist(&self.store)?;
        // Step IV: the migrate event drains the queue and moves the state.
        self.runtime.migrate_context(context, to)?;
        record.step = MigrationStep::StateMoved;
        record.persist(&self.store)?;
        // Step V: destination resumes execution; the record is cleared.
        record.step = MigrationStep::Completed;
        record.persist(&self.store)?;
        MigrationRecord::clear(&self.store, context)?;
        Ok(())
    }

    /// Completes migrations left unfinished by a crashed eManager and
    /// refreshes the mapping from the runtime's placement.
    ///
    /// Returns the number of migrations that were completed.
    ///
    /// # Errors
    ///
    /// Propagates migration and storage failures.
    pub fn recover(&self) -> Result<usize> {
        let mut finished = 0;
        for record in MigrationRecord::load_all(&self.store) {
            // Re-drive the migration from wherever it stopped; every step is
            // idempotent.
            if record.step < MigrationStep::Completed {
                self.mapping.record(record.context, record.to)?;
                self.runtime.migrate_context(record.context, record.to)?;
                finished += 1;
            }
            MigrationRecord::clear(&self.store, record.context)?;
        }
        // Refresh mapping entries for any context the storage does not know
        // about yet (e.g. contexts created while the old eManager was down).
        for server in self.runtime.servers() {
            for context in self.runtime.contexts_on(server) {
                self.mapping.record(context, server)?;
            }
        }
        Ok(finished)
    }

    /// Persists the current ownership network next to the mapping (§5.1).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn persist_ownership(&self) -> Result<()> {
        let graph = self.runtime.ownership_graph();
        self.store
            .put(aeon_storage::keys::OWNERSHIP_KEY, graph.to_value())?;
        Ok(())
    }

    /// Takes a consistent snapshot of `root` and its descendants and writes
    /// it to cloud storage under `snapshot/<name>` (§5.3).  Returns the
    /// number of contexts captured.
    ///
    /// # Errors
    ///
    /// Propagates snapshot and storage failures.
    pub fn checkpoint(&self, name: &str, root: ContextId) -> Result<usize> {
        let snapshot = self.runtime.snapshot_context(root)?;
        let key = format!("{}{}", aeon_storage::keys::SNAPSHOT_PREFIX, name);
        self.store.put(&key, snapshot.to_value())?;
        Ok(snapshot.len())
    }

    /// Restores a checkpoint previously written with [`EManager::checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Storage`] when the checkpoint does not exist,
    /// plus snapshot restore failures.
    pub fn restore_checkpoint(&self, name: &str) -> Result<()> {
        let key = format!("{}{}", aeon_storage::keys::SNAPSHOT_PREFIX, name);
        let record = self
            .store
            .get(&key)
            .ok_or_else(|| AeonError::Storage(format!("no checkpoint named {name}")))?;
        let snapshot = aeon_runtime::Snapshot::from_value(&record.value)?;
        self.runtime.restore_snapshot(&snapshot)
    }

    /// Access to the persisted ownership network, if any.
    pub fn load_ownership(&self) -> Option<Value> {
        self.store
            .get(aeon_storage::keys::OWNERSHIP_KEY)
            .map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ServerContentionPolicy, SlaPolicy};
    use aeon_api::Session;
    use aeon_runtime::{KvContext, Placement};
    use aeon_storage::InMemoryStore;
    use aeon_types::args;

    fn runtime_with_contexts(servers: usize, contexts: usize) -> (AeonRuntime, Vec<ContextId>) {
        let runtime = AeonRuntime::builder().servers(servers).build().unwrap();
        let ids = (0..contexts)
            .map(|_| {
                runtime
                    .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                    .unwrap()
            })
            .collect();
        (runtime, ids)
    }

    #[test]
    fn contention_policy_scales_out_and_rebalances() {
        let (runtime, _) = runtime_with_contexts(1, 6);
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(2)));
        let actions = manager.tick(&manager.collect_metrics()).unwrap();
        assert!(actions
            .iter()
            .any(|a| matches!(a, ElasticityAction::ScaleOut { .. })));
        assert!(runtime.servers().len() > 1);
        // After a couple of ticks every server is under the limit.
        manager.tick(&manager.collect_metrics()).unwrap();
        for server in runtime.servers() {
            assert!(runtime.contexts_on(server).len() <= 3);
        }
        runtime.shutdown();
    }

    #[test]
    fn max_servers_cap_is_respected() {
        let (runtime, _) = runtime_with_contexts(1, 12);
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(1)));
        manager.set_max_servers(3);
        manager.tick(&manager.collect_metrics()).unwrap();
        manager.tick(&manager.collect_metrics()).unwrap();
        assert!(runtime.servers().len() <= 3);
        runtime.shutdown();
    }

    #[test]
    fn migrate_updates_mapping_and_clears_record() {
        let (runtime, ids) = runtime_with_contexts(2, 2);
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        let ctx = ids[0];
        let from = runtime.placement_of(ctx).unwrap();
        let to = runtime.servers().into_iter().find(|s| *s != from).unwrap();
        manager.migrate(ctx, to).unwrap();
        assert_eq!(runtime.placement_of(ctx).unwrap(), to);
        assert_eq!(manager.mapping().lookup(ctx).unwrap(), to);
        // Migrating to the current location is a no-op.
        manager.migrate(ctx, to).unwrap();
        runtime.shutdown();
    }

    #[test]
    fn pinned_contexts_are_not_rebalanced() {
        let (runtime, ids) = runtime_with_contexts(1, 4);
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        for id in &ids {
            manager.pin_context(*id);
        }
        runtime.add_server();
        manager.rebalance_from(runtime.servers()[0]).unwrap();
        // Everything stayed put because every context is pinned.
        assert_eq!(runtime.contexts_on(runtime.servers()[0]).len(), 4);
        runtime.shutdown();
    }

    #[test]
    fn drain_and_scale_in() {
        let (runtime, _) = runtime_with_contexts(2, 4);
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        let victim = runtime.servers()[1];
        manager.drain_server(victim).unwrap();
        assert!(runtime.contexts_on(victim).is_empty());
        runtime.remove_server(victim).unwrap();
        assert_eq!(runtime.servers().len(), 1);
        runtime.shutdown();
    }

    #[test]
    fn recovery_finishes_interrupted_migrations() {
        let (runtime, ids) = runtime_with_contexts(2, 1);
        let store = InMemoryStore::new();
        let ctx = ids[0];
        let from = runtime.placement_of(ctx).unwrap();
        let to = runtime.servers().into_iter().find(|s| *s != from).unwrap();
        // Simulate an eManager that crashed after persisting step II.
        {
            let arc_store: Arc<dyn CloudStore> = Arc::new(store.clone());
            MigrationRecord {
                context: ctx,
                from,
                to,
                step: MigrationStep::SourceStopped,
            }
            .persist(&arc_store)
            .unwrap();
        }
        let manager = EManager::new(runtime.clone(), store);
        let finished = manager.recover().unwrap();
        assert_eq!(finished, 1);
        assert_eq!(runtime.placement_of(ctx).unwrap(), to);
        assert_eq!(manager.mapping().lookup(ctx).unwrap(), to);
        runtime.shutdown();
    }

    #[test]
    fn checkpoint_and_restore_via_storage() {
        let runtime = AeonRuntime::builder().servers(1).build().unwrap();
        let room = runtime
            .create_context(Box::new(KvContext::new("Room")), Placement::Auto)
            .unwrap();
        let client = runtime.client();
        client.call(room, "set", args!["name", "castle"]).unwrap();
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        assert_eq!(manager.checkpoint("daily", room).unwrap(), 1);
        client.call(room, "set", args!["name", "ruins"]).unwrap();
        manager.restore_checkpoint("daily").unwrap();
        assert_eq!(
            client.call_readonly(room, "get", args!["name"]).unwrap(),
            aeon_types::Value::from("castle")
        );
        assert!(manager.restore_checkpoint("missing").is_err());
        runtime.shutdown();
    }

    #[test]
    fn ownership_network_is_persisted() {
        let (runtime, _) = runtime_with_contexts(1, 3);
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        manager.persist_ownership().unwrap();
        let value = manager.load_ownership().expect("persisted graph");
        let graph = aeon_ownership::OwnershipGraph::from_value(&value).unwrap();
        assert_eq!(graph.len(), 3);
        runtime.shutdown();
    }

    #[test]
    fn sla_policy_drives_scale_out_via_tick() {
        let (runtime, _) = runtime_with_contexts(1, 2);
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(SlaPolicy::new(10.0).with_step(3)));
        // Fake metrics reporting an SLA violation.
        let metrics = vec![ServerMetrics {
            server: runtime.servers()[0],
            cpu: 0.9,
            memory: 0.5,
            io: 0.2,
            context_count: 2,
            avg_latency_ms: 50.0,
        }];
        manager.tick(&metrics).unwrap();
        assert_eq!(runtime.servers().len(), 4);
        runtime.shutdown();
    }
}
