//! The global context → server mapping (§5.1).
//!
//! The authoritative copy of the mapping lives in cloud storage; servers and
//! clients cache entries and refresh them lazily.  The mapping here is a
//! write-through cache over an [`aeon_storage::CloudStore`].

use aeon_storage::CloudStore;
use aeon_types::{AeonError, ContextId, Result, ServerId, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Write-through, cached view of the context mapping.
#[derive(Debug)]
pub struct ContextMapping {
    store: Arc<dyn CloudStore>,
    cache: RwLock<HashMap<ContextId, ServerId>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

fn key_of(context: ContextId) -> String {
    format!("{}{}", aeon_storage::keys::MAPPING_PREFIX, context.raw())
}

impl ContextMapping {
    /// Creates a mapping backed by `store`.
    pub fn new(store: Arc<dyn CloudStore>) -> Self {
        Self {
            store,
            cache: RwLock::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Records that `context` now lives on `server` (write-through).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn record(&self, context: ContextId, server: ServerId) -> Result<()> {
        self.store
            .put(&key_of(context), Value::from(i64::from(server.raw())))?;
        self.cache.write().insert(context, server);
        Ok(())
    }

    /// Looks a context up, consulting the cache first and falling back to
    /// storage on a miss (and repopulating the cache).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when no mapping exists.
    pub fn lookup(&self, context: ContextId) -> Result<ServerId> {
        if let Some(server) = self.cache.read().get(&context) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*server);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let record = self
            .store
            .get(&key_of(context))
            .ok_or(AeonError::ContextNotFound(context))?;
        let server = record
            .value
            .as_i64()
            .map(|raw| ServerId::new(raw as u32))
            .ok_or_else(|| AeonError::Codec("mapping entry is not a server id".into()))?;
        self.cache.write().insert(context, server);
        Ok(server)
    }

    /// Invalidates the cached entry for `context` (e.g. after being told by
    /// a server that the cached location was stale).
    pub fn invalidate(&self, context: ContextId) {
        self.cache.write().remove(&context);
    }

    /// Removes the mapping entirely (context deleted).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn remove(&self, context: ContextId) -> Result<()> {
        self.store.delete(&key_of(context))?;
        self.cache.write().remove(&context);
        Ok(())
    }

    /// Reads the full mapping from storage (used by a recovering eManager).
    pub fn load_all(&self) -> Vec<(ContextId, ServerId)> {
        let mut out = Vec::new();
        for key in self.store.list_prefix(aeon_storage::keys::MAPPING_PREFIX) {
            let raw: u64 = match key[aeon_storage::keys::MAPPING_PREFIX.len()..].parse() {
                Ok(raw) => raw,
                Err(_) => continue,
            };
            if let Some(record) = self.store.get(&key) {
                if let Some(server) = record.value.as_i64() {
                    out.push((ContextId::new(raw), ServerId::new(server as u32)));
                }
            }
        }
        out
    }

    /// Number of cache hits (diagnostics).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (diagnostics).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_storage::InMemoryStore;

    fn mapping() -> (ContextMapping, Arc<InMemoryStore>) {
        let store = Arc::new(InMemoryStore::new());
        (ContextMapping::new(store.clone()), store)
    }

    #[test]
    fn record_and_lookup() {
        let (m, _) = mapping();
        let ctx = ContextId::new(1);
        m.record(ctx, ServerId::new(3)).unwrap();
        assert_eq!(m.lookup(ctx).unwrap(), ServerId::new(3));
        assert_eq!(m.cache_hits(), 1);
    }

    #[test]
    fn lookup_falls_back_to_storage() {
        let (m, store) = mapping();
        let ctx = ContextId::new(7);
        m.record(ctx, ServerId::new(1)).unwrap();
        // A different eManager (fresh cache) still finds it.
        let fresh = ContextMapping::new(store);
        assert_eq!(fresh.lookup(ctx).unwrap(), ServerId::new(1));
        assert_eq!(fresh.cache_misses(), 1);
        assert_eq!(fresh.cache_hits(), 0);
    }

    #[test]
    fn missing_context_is_reported() {
        let (m, _) = mapping();
        assert!(matches!(
            m.lookup(ContextId::new(9)),
            Err(AeonError::ContextNotFound(_))
        ));
    }

    #[test]
    fn invalidate_and_remove() {
        let (m, _) = mapping();
        let ctx = ContextId::new(2);
        m.record(ctx, ServerId::new(0)).unwrap();
        m.invalidate(ctx);
        // Still in storage.
        assert_eq!(m.lookup(ctx).unwrap(), ServerId::new(0));
        m.remove(ctx).unwrap();
        assert!(m.lookup(ctx).is_err());
    }

    #[test]
    fn load_all_reads_every_entry() {
        let (m, _) = mapping();
        for i in 0..5u64 {
            m.record(ContextId::new(i), ServerId::new((i % 2) as u32))
                .unwrap();
        }
        let mut all = m.load_all();
        all.sort();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], (ContextId::new(0), ServerId::new(0)));
        assert_eq!(all[1], (ContextId::new(1), ServerId::new(1)));
    }
}
