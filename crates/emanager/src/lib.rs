//! The elasticity manager (eManager) of AEON (§5 of the paper).
//!
//! The eManager is a stateless service that
//!
//! * maintains the global context → server mapping and the ownership
//!   network in cloud storage (so a crashed eManager can be replaced without
//!   losing state),
//! * evaluates *elasticity policies* (resource utilisation, server
//!   contention, SLA) against periodic server metrics and decides when to
//!   scale out/in and which contexts to migrate,
//! * drives the five-step migration protocol, persisting every step so an
//!   interrupted migration can be completed by a newly elected eManager,
//! * exposes the snapshot/checkpoint API (§5.3).
//!
//! The manager is backend-agnostic: [`EManager::new`] takes an
//! `Arc<dyn Deployment>` (see `aeon-api`), so the same policies elastically
//! scale the in-process runtime, the distributed cluster, and the
//! deterministic simulator.  Metric collection, scale out/in, and the
//! migration protocol all go through the `Deployment` control-plane surface
//! (`server_metrics`, `add_server`/`remove_server`, `migrate_context`,
//! `snapshot_context`).
//!
//! # Examples
//!
//! ```
//! use aeon::prelude::*;
//! use aeon::DeployConfig;
//! use aeon_emanager::{EManager, ServerContentionPolicy};
//! use aeon_storage::InMemoryStore;
//!
//! # fn main() -> aeon_types::Result<()> {
//! // Any backend works: `DeployConfig::runtime()` / `::cluster()` /
//! // `::sim()` all hand the manager the same `dyn Deployment`.
//! let deployment = aeon::deploy_shared(DeployConfig::sim().servers(1))?;
//! let manager = EManager::new(deployment.clone(), InMemoryStore::new());
//! manager.add_policy(Box::new(ServerContentionPolicy::new(2)));
//! for _ in 0..6 {
//!     deployment.create_context(Box::new(KvContext::new("Item")), Placement::Auto)?;
//! }
//! // The contention policy notices >2 contexts per server and scales out,
//! // rebalancing contexts onto the new servers.
//! let actions = manager.tick(&manager.collect_metrics())?;
//! assert!(!actions.is_empty());
//! assert!(deployment.servers().len() > 1);
//! deployment.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod manager;
pub mod mapping;
pub mod migration;
pub mod policy;

pub use manager::EManager;
pub use mapping::ContextMapping;
pub use migration::{MigrationRecord, MigrationStep};
pub use policy::{
    ElasticityAction, ElasticityPolicy, ResourceUtilizationPolicy, ServerContentionPolicy,
    ServerMetrics, SlaPolicy,
};
