//! Elasticity policies (§5.2).
//!
//! Servers periodically report their resource utilisation to the eManager;
//! policies turn those reports into scaling / migration decisions.  The
//! three built-in policies correspond to the ones described in the paper:
//! resource utilisation bounds, server contention (maximum contexts per
//! server), and a latency SLA (used in the §6.2 elasticity experiment).

use aeon_types::ServerId;

// The report type itself lives in `aeon-types` so every deployment backend
// can produce it without depending on this crate; re-exported here because
// policies are its natural home for consumers.
pub use aeon_types::ServerMetrics;

/// A decision produced by a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElasticityAction {
    /// Allocate `count` additional servers and rebalance onto them.
    ScaleOut { count: usize },
    /// Drain and release one server.
    ScaleIn { server: ServerId },
    /// Move contexts away from an overloaded server.
    Rebalance { from: ServerId },
}

/// A pluggable elasticity policy.
///
/// Policies are consulted by [`crate::EManager::tick`] with the latest
/// metrics of every online server and return zero or more actions.
/// Programmers can implement their own policies, as the paper's API allows.
pub trait ElasticityPolicy: Send + Sync {
    /// Human-readable policy name (diagnostics).
    fn name(&self) -> &str;

    /// Evaluates the metrics and returns the actions to take.
    fn evaluate(&self, metrics: &[ServerMetrics]) -> Vec<ElasticityAction>;
}

/// Scale out when a resource utilisation exceeds `upper + threshold`, scale
/// in when every server is below `lower` (and more than one server is
/// online).
#[derive(Debug, Clone)]
pub struct ResourceUtilizationPolicy {
    lower: f64,
    upper: f64,
    threshold: f64,
}

impl ResourceUtilizationPolicy {
    /// Creates the policy with a lower bound, upper bound and activation
    /// threshold, all in `[0, 1]`.
    pub fn new(lower: f64, upper: f64, threshold: f64) -> Self {
        Self {
            lower,
            upper,
            threshold,
        }
    }

    fn max_utilisation(m: &ServerMetrics) -> f64 {
        m.cpu.max(m.memory).max(m.io)
    }
}

impl ElasticityPolicy for ResourceUtilizationPolicy {
    fn name(&self) -> &str {
        "resource-utilization"
    }

    fn evaluate(&self, metrics: &[ServerMetrics]) -> Vec<ElasticityAction> {
        let mut actions = Vec::new();
        let overloaded: Vec<&ServerMetrics> = metrics
            .iter()
            .filter(|m| Self::max_utilisation(m) > self.upper + self.threshold)
            .collect();
        if !overloaded.is_empty() {
            actions.push(ElasticityAction::ScaleOut {
                count: overloaded.len(),
            });
            for m in overloaded {
                actions.push(ElasticityAction::Rebalance { from: m.server });
            }
            return actions;
        }
        if metrics.len() > 1
            && metrics
                .iter()
                .all(|m| Self::max_utilisation(m) < self.lower)
        {
            // Release the least loaded server.  `total_cmp`, not
            // `partial_cmp().unwrap()`: a backend reporting a NaN
            // utilisation (e.g. a latency average over zero samples
            // upstream) must not panic the eManager tick thread.
            if let Some(least) = metrics
                .iter()
                .min_by(|a, b| Self::max_utilisation(a).total_cmp(&Self::max_utilisation(b)))
            {
                actions.push(ElasticityAction::ScaleIn {
                    server: least.server,
                });
            }
        }
        actions
    }
}

/// Scale out when a server hosts more than `max_contexts` contexts.
#[derive(Debug, Clone)]
pub struct ServerContentionPolicy {
    max_contexts: usize,
}

impl ServerContentionPolicy {
    /// Creates the policy with the acceptable number of contexts per server.
    pub fn new(max_contexts: usize) -> Self {
        Self {
            max_contexts: max_contexts.max(1),
        }
    }
}

impl ElasticityPolicy for ServerContentionPolicy {
    fn name(&self) -> &str {
        "server-contention"
    }

    fn evaluate(&self, metrics: &[ServerMetrics]) -> Vec<ElasticityAction> {
        let mut actions = Vec::new();
        let contended: Vec<&ServerMetrics> = metrics
            .iter()
            .filter(|m| m.context_count > self.max_contexts)
            .collect();
        if contended.is_empty() {
            return actions;
        }
        // Enough new servers to bring everyone under the limit.
        let excess: usize = contended
            .iter()
            .map(|m| m.context_count - self.max_contexts)
            .sum::<usize>();
        let needed = excess.div_ceil(self.max_contexts).max(1);
        actions.push(ElasticityAction::ScaleOut { count: needed });
        for m in contended {
            actions.push(ElasticityAction::Rebalance { from: m.server });
        }
        actions
    }
}

/// Scale out whenever the average request latency exceeds the SLA; scale in
/// when the fleet has headroom (latency far below the SLA).
///
/// This is the policy used for the elasticity experiment of §6.2 (SLA of
/// 10 ms on client requests).
#[derive(Debug, Clone)]
pub struct SlaPolicy {
    target_ms: f64,
    /// Scale in only when latency is below `scale_in_fraction * target`.
    scale_in_fraction: f64,
    /// Servers added per violation tick.
    step: usize,
}

impl SlaPolicy {
    /// Creates an SLA policy with the given latency target in milliseconds.
    pub fn new(target_ms: f64) -> Self {
        Self {
            target_ms,
            scale_in_fraction: 0.3,
            step: 2,
        }
    }

    /// Sets how many servers are added per violating tick.
    pub fn with_step(mut self, step: usize) -> Self {
        self.step = step.max(1);
        self
    }

    /// The latency target in milliseconds.
    pub fn target_ms(&self) -> f64 {
        self.target_ms
    }
}

impl ElasticityPolicy for SlaPolicy {
    fn name(&self) -> &str {
        "sla"
    }

    fn evaluate(&self, metrics: &[ServerMetrics]) -> Vec<ElasticityAction> {
        if metrics.is_empty() {
            return Vec::new();
        }
        let avg: f64 = metrics.iter().map(|m| m.avg_latency_ms).sum::<f64>() / metrics.len() as f64;
        let worst = metrics
            .iter()
            .map(|m| m.avg_latency_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut actions = Vec::new();
        if worst > self.target_ms {
            actions.push(ElasticityAction::ScaleOut { count: self.step });
            // Rebalance away from the slowest server.  `total_cmp` keeps a
            // NaN latency report (division by a zero sample count upstream)
            // from panicking the eManager tick thread.
            if let Some(slowest) = metrics
                .iter()
                .max_by(|a, b| a.avg_latency_ms.total_cmp(&b.avg_latency_ms))
            {
                actions.push(ElasticityAction::Rebalance {
                    from: slowest.server,
                });
            }
        } else if metrics.len() > 1 && avg < self.target_ms * self.scale_in_fraction {
            if let Some(least) = metrics
                .iter()
                .min_by(|a, b| a.context_count.cmp(&b.context_count))
            {
                actions.push(ElasticityAction::ScaleIn {
                    server: least.server,
                });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(server: u32, cpu: f64, contexts: usize, latency: f64) -> ServerMetrics {
        ServerMetrics {
            server: ServerId::new(server),
            cpu,
            memory: cpu * 0.5,
            io: cpu * 0.3,
            context_count: contexts,
            queue_depth: 0,
            avg_latency_ms: latency,
            latency: aeon_types::LatencyHistogram::new(),
        }
    }

    #[test]
    fn resource_policy_scales_out_on_overload() {
        let p = ResourceUtilizationPolicy::new(0.2, 0.8, 0.05);
        let actions = p.evaluate(&[m(0, 0.95, 10, 5.0), m(1, 0.4, 10, 5.0)]);
        assert!(actions.contains(&ElasticityAction::ScaleOut { count: 1 }));
        assert!(actions.contains(&ElasticityAction::Rebalance {
            from: ServerId::new(0)
        }));
    }

    #[test]
    fn resource_policy_scales_in_when_idle() {
        let p = ResourceUtilizationPolicy::new(0.2, 0.8, 0.05);
        let actions = p.evaluate(&[m(0, 0.05, 2, 1.0), m(1, 0.1, 2, 1.0)]);
        assert_eq!(
            actions,
            vec![ElasticityAction::ScaleIn {
                server: ServerId::new(0)
            }]
        );
        // A single remaining server is never released.
        assert!(p.evaluate(&[m(0, 0.01, 1, 1.0)]).is_empty());
    }

    #[test]
    fn resource_policy_is_quiet_in_the_comfortable_band() {
        let p = ResourceUtilizationPolicy::new(0.2, 0.8, 0.05);
        assert!(p
            .evaluate(&[m(0, 0.5, 3, 2.0), m(1, 0.6, 3, 2.0)])
            .is_empty());
    }

    #[test]
    fn contention_policy_counts_needed_servers() {
        let p = ServerContentionPolicy::new(4);
        let actions = p.evaluate(&[m(0, 0.5, 12, 1.0), m(1, 0.5, 2, 1.0)]);
        // 8 excess contexts over a limit of 4 => 2 new servers.
        assert!(actions.contains(&ElasticityAction::ScaleOut { count: 2 }));
        assert!(actions.contains(&ElasticityAction::Rebalance {
            from: ServerId::new(0)
        }));
        assert!(p.evaluate(&[m(0, 0.5, 4, 1.0)]).is_empty());
    }

    #[test]
    fn sla_policy_scales_out_on_violation_and_in_on_headroom() {
        let p = SlaPolicy::new(10.0).with_step(2);
        let out = p.evaluate(&[m(0, 0.5, 5, 22.0), m(1, 0.5, 5, 6.0)]);
        assert!(out.contains(&ElasticityAction::ScaleOut { count: 2 }));
        assert!(out.contains(&ElasticityAction::Rebalance {
            from: ServerId::new(0)
        }));
        let idle = p.evaluate(&[m(0, 0.1, 5, 1.0), m(1, 0.1, 3, 1.0)]);
        assert_eq!(
            idle,
            vec![ElasticityAction::ScaleIn {
                server: ServerId::new(1)
            }]
        );
        // Within the SLA but not enough headroom: no action.
        assert!(p
            .evaluate(&[m(0, 0.5, 5, 8.0), m(1, 0.5, 5, 7.0)])
            .is_empty());
        assert_eq!(p.target_ms(), 10.0);
    }

    #[test]
    fn sla_policy_survives_nan_latency_reports() {
        // Regression test: comparing with `partial_cmp().unwrap()` used to
        // panic the eManager tick when any server reported a NaN average
        // latency (a 0/0 division upstream on an idle server).  The policy
        // must still act on the servers with real reports.
        let p = SlaPolicy::new(10.0).with_step(1);
        let actions = p.evaluate(&[m(0, 0.5, 5, f64::NAN), m(1, 0.5, 5, 22.0)]);
        assert!(actions.contains(&ElasticityAction::ScaleOut { count: 1 }));
        // With total_cmp, NaN sorts above every number; the rebalance
        // target is deterministic, not a panic.
        assert!(actions
            .iter()
            .any(|a| matches!(a, ElasticityAction::Rebalance { .. })));
        // All-NaN reports: no violation detected (NaN > target is false),
        // and still no panic.
        assert!(p.evaluate(&[m(0, 0.5, 5, f64::NAN)]).is_empty());
    }

    #[test]
    fn resource_policy_survives_nan_utilisation_reports() {
        // Same regression for the scale-in arm's min_by comparator.  One
        // server reports NaN CPU while the fleet is idle; with total_cmp
        // NaN sorts above every real utilisation, so the idle check fails
        // closed (NaN < lower is false) and nothing is released — but
        // nothing panics either.
        let p = ResourceUtilizationPolicy::new(0.2, 0.8, 0.05);
        assert!(p
            .evaluate(&[m(0, f64::NAN, 2, 1.0), m(1, 0.1, 2, 1.0)])
            .is_empty());
        assert!(p.evaluate(&[m(0, f64::NAN, 2, 1.0)]).is_empty());
    }

    #[test]
    fn policies_have_names() {
        assert_eq!(
            ResourceUtilizationPolicy::new(0.1, 0.9, 0.0).name(),
            "resource-utilization"
        );
        assert_eq!(ServerContentionPolicy::new(1).name(), "server-contention");
        assert_eq!(SlaPolicy::new(10.0).name(), "sla");
    }
}
