//! Foundational types shared by every crate of the AEON reproduction.
//!
//! The crate is intentionally dependency-light: identifiers, access modes,
//! the dynamic [`Value`]/[`Args`] representation used for method dispatch,
//! a small self-contained binary codec used for snapshots and migration
//! payloads, error types, and virtual-time primitives used by the
//! discrete-event simulator.
//!
//! # Examples
//!
//! ```
//! use aeon_types::{ContextId, Value, Args};
//!
//! let ctx = ContextId::new(7);
//! let args = Args::new(vec![Value::from(50i64), Value::from("gold")]);
//! assert_eq!(args.get_i64(0).unwrap(), 50);
//! assert_eq!(ctx.raw(), 7);
//! ```

pub mod access;
pub mod codec;
pub mod error;
pub mod history;
pub mod ids;
pub mod metrics;
pub mod promtext;
pub mod time;
pub mod value;

pub use access::AccessMode;
pub use error::{AeonError, Result};
pub use history::{HistorySink, SharedHistorySink};
pub use ids::{
    ClassName, ClientId, ContextId, EventId, IdGenerator, MethodName, SequenceNo, ServerId,
};
pub use metrics::{LatencyHistogram, NetworkStatsSnapshot, ServerMetrics};
pub use time::{SimDuration, SimTime};
pub use value::{Args, Value};
