//! A small, self-contained binary codec for [`Value`]s.
//!
//! Context snapshots (fault tolerance, §5.3) and migration payloads (§5.2)
//! need a stable byte representation.  Rather than pulling in a full
//! serialisation framework we encode the [`Value`] data model directly with
//! a tag-length-value scheme.  The format is versioned with a single leading
//! byte so it can evolve.

use crate::error::{AeonError, Result};
use crate::ids::ContextId;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// Current encoding version.
const VERSION: u8 = 1;

/// Type tags.
mod tag {
    pub const NULL: u8 = 0;
    pub const BOOL_FALSE: u8 = 1;
    pub const BOOL_TRUE: u8 = 2;
    pub const INT: u8 = 3;
    pub const FLOAT: u8 = 4;
    pub const STR: u8 = 5;
    pub const BYTES: u8 = 6;
    pub const CONTEXT_REF: u8 = 7;
    pub const LIST: u8 = 8;
    pub const MAP: u8 = 9;
}

/// Encodes a [`Value`] into a byte buffer.
///
/// # Examples
///
/// ```
/// use aeon_types::{codec, Value};
/// let v = Value::from(vec![1i64, 2, 3]);
/// let bytes = codec::encode(&v);
/// assert_eq!(codec::decode(&bytes).unwrap(), v);
/// ```
pub fn encode(value: &Value) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(VERSION);
    encode_into(value, &mut buf);
    buf.freeze()
}

/// Decodes a [`Value`] previously produced by [`encode`].
///
/// # Errors
///
/// Returns [`AeonError::Codec`] when the buffer is truncated, has an unknown
/// version, or contains an unknown tag.
pub fn decode(bytes: &[u8]) -> Result<Value> {
    let mut buf = bytes;
    if buf.remaining() < 1 {
        return Err(AeonError::Codec("empty buffer".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(AeonError::Codec(format!("unknown codec version {version}")));
    }
    let value = decode_one(&mut buf)?;
    if buf.has_remaining() {
        return Err(AeonError::Codec(format!(
            "{} trailing bytes after value",
            buf.remaining()
        )));
    }
    Ok(value)
}

/// Computes the exact size in bytes that [`encode`] would produce, without
/// allocating or encoding.
///
/// The channel transport uses this to report honest byte counters for
/// messages that never actually cross a wire.
///
/// # Examples
///
/// ```
/// use aeon_types::{codec, Value};
/// let v = Value::from(vec![1i64, 2, 3]);
/// assert_eq!(codec::encoded_len(&v), codec::encode(&v).len());
/// ```
pub fn encoded_len(value: &Value) -> usize {
    1 + body_len(value)
}

/// Size of one encoded value, excluding the version byte.
fn body_len(value: &Value) -> usize {
    match value {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) | Value::ContextRef(_) => 1 + 8,
        Value::Str(s) => 1 + 4 + s.len(),
        Value::Bytes(b) => 1 + 4 + b.len(),
        Value::List(items) => 1 + 4 + items.iter().map(body_len).sum::<usize>(),
        Value::Map(map) => {
            1 + 4
                + map
                    .iter()
                    .map(|(k, v)| 4 + k.len() + body_len(v))
                    .sum::<usize>()
        }
    }
}

fn encode_into(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Null => buf.put_u8(tag::NULL),
        Value::Bool(false) => buf.put_u8(tag::BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(tag::BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(tag::INT);
            buf.put_i64(*i);
        }
        Value::Float(x) => {
            buf.put_u8(tag::FLOAT);
            buf.put_f64(*x);
        }
        Value::Str(s) => {
            buf.put_u8(tag::STR);
            put_len(buf, s.len());
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(tag::BYTES);
            put_len(buf, b.len());
            buf.put_slice(b);
        }
        Value::ContextRef(c) => {
            buf.put_u8(tag::CONTEXT_REF);
            buf.put_u64(c.raw());
        }
        Value::List(items) => {
            buf.put_u8(tag::LIST);
            put_len(buf, items.len());
            for item in items {
                encode_into(item, buf);
            }
        }
        Value::Map(map) => {
            buf.put_u8(tag::MAP);
            put_len(buf, map.len());
            for (k, v) in map {
                put_len(buf, k.len());
                buf.put_slice(k.as_bytes());
                encode_into(v, buf);
            }
        }
    }
}

fn decode_one(buf: &mut &[u8]) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(AeonError::Codec("unexpected end of buffer".into()));
    }
    let tag = buf.get_u8();
    let value = match tag {
        tag::NULL => Value::Null,
        tag::BOOL_FALSE => Value::Bool(false),
        tag::BOOL_TRUE => Value::Bool(true),
        tag::INT => {
            ensure(buf, 8)?;
            Value::Int(buf.get_i64())
        }
        tag::FLOAT => {
            ensure(buf, 8)?;
            Value::Float(buf.get_f64())
        }
        tag::STR => {
            let len = get_len(buf)?;
            ensure(buf, len)?;
            let raw = buf[..len].to_vec();
            buf.advance(len);
            Value::Str(String::from_utf8(raw).map_err(|e| AeonError::Codec(e.to_string()))?)
        }
        tag::BYTES => {
            let len = get_len(buf)?;
            ensure(buf, len)?;
            let raw = buf[..len].to_vec();
            buf.advance(len);
            Value::Bytes(raw)
        }
        tag::CONTEXT_REF => {
            ensure(buf, 8)?;
            Value::ContextRef(ContextId::new(buf.get_u64()))
        }
        tag::LIST => {
            let len = get_len(buf)?;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(decode_one(buf)?);
            }
            Value::List(items)
        }
        tag::MAP => {
            let len = get_len(buf)?;
            let mut map = BTreeMap::new();
            for _ in 0..len {
                let klen = get_len(buf)?;
                ensure(buf, klen)?;
                let kraw = buf[..klen].to_vec();
                buf.advance(klen);
                let key = String::from_utf8(kraw).map_err(|e| AeonError::Codec(e.to_string()))?;
                let v = decode_one(buf)?;
                map.insert(key, v);
            }
            Value::Map(map)
        }
        other => return Err(AeonError::Codec(format!("unknown tag {other}"))),
    };
    Ok(value)
}

fn put_len(buf: &mut BytesMut, len: usize) {
    buf.put_u32(len as u32);
}

fn get_len(buf: &mut &[u8]) -> Result<usize> {
    ensure(buf, 4)?;
    Ok(buf.get_u32() as usize)
}

fn ensure(buf: &&[u8], needed: usize) -> Result<()> {
    if buf.remaining() < needed {
        Err(AeonError::Codec(format!(
            "need {needed} bytes, only {} remaining",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) {
        let bytes = encode(v);
        let decoded = decode(&bytes).expect("decode");
        assert_eq!(&decoded, v);
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::Int(-12345));
        roundtrip(&Value::Int(i64::MAX));
        roundtrip(&Value::Float(3.25));
        roundtrip(&Value::Str("hello world".into()));
        roundtrip(&Value::Bytes(vec![0, 1, 2, 255]));
        roundtrip(&Value::ContextRef(ContextId::new(u64::MAX)));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::map([
            (
                "players",
                Value::from(vec![ContextId::new(1), ContextId::new(2)]),
            ),
            ("gold", Value::from(100i64)),
            (
                "inventory",
                Value::List(vec![
                    Value::map([("sword", Value::Bool(true))]),
                    Value::Null,
                ]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn empty_buffer_is_rejected() {
        assert!(matches!(decode(&[]), Err(AeonError::Codec(_))));
    }

    #[test]
    fn unknown_version_is_rejected() {
        assert!(matches!(decode(&[9, tag::NULL]), Err(AeonError::Codec(_))));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = encode(&Value::Int(7));
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Value::Int(7)).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn empty_containers_round_trip() {
        roundtrip(&Value::List(Vec::new()));
        roundtrip(&Value::Map(BTreeMap::new()));
        roundtrip(&Value::Str(String::new()));
        roundtrip(&Value::Bytes(Vec::new()));
        roundtrip(&Value::map([("empty", Value::List(Vec::new()))]));
    }

    #[test]
    fn non_utf8_byte_payloads_round_trip() {
        // Invalid UTF-8 sequences must survive as Bytes (and must NOT be
        // decodable as Str).
        let payload = vec![0xff, 0xfe, 0x80, 0xc0, 0x00, 0xf5];
        assert!(String::from_utf8(payload.clone()).is_err());
        roundtrip(&Value::Bytes(payload.clone()));

        // A Str frame whose body is not UTF-8 is rejected, not mangled.
        let mut forged = encode(&Value::Bytes(payload)).to_vec();
        forged[1] = tag::STR;
        assert!(matches!(decode(&forged), Err(AeonError::Codec(_))));
    }

    #[test]
    fn deeply_nested_values_round_trip() {
        let mut v = Value::Int(0);
        for depth in 0..256 {
            v = if depth % 2 == 0 {
                Value::List(vec![v])
            } else {
                Value::map([("d", v)])
            };
        }
        roundtrip(&v);
    }

    #[test]
    fn encoded_len_matches_encode_for_edge_cases() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Str("ünïcode".into()),
            Value::Bytes(vec![0xff; 17]),
            Value::ContextRef(ContextId::new(0)),
            Value::List(Vec::new()),
            Value::Map(BTreeMap::new()),
            Value::map([("k", Value::from(vec![Value::Null, Value::Bool(false)]))]),
        ] {
            assert_eq!(encoded_len(&v), encode(&v).len(), "value: {v:?}");
        }
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>()
                .prop_filter("finite", |f| f.is_finite())
                .prop_map(Value::Float),
            "[a-z]{0,16}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
            any::<u64>().prop_map(|r| Value::ContextRef(ContextId::new(r))),
        ];
        leaf.prop_recursive(3, 64, 8, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::List),
                proptest::collection::btree_map("[a-z]{1,8}", inner, 0..8).prop_map(Value::Map),
            ]
        })
    }

    proptest! {
        #[test]
        fn any_value_round_trips(v in arb_value()) {
            let bytes = encode(&v);
            let decoded = decode(&bytes).unwrap();
            prop_assert_eq!(decoded, v);
        }

        #[test]
        fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn encoded_len_matches_encode(v in arb_value()) {
            prop_assert_eq!(encoded_len(&v), encode(&v).len());
        }
    }
}
