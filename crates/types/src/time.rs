//! Virtual time primitives used by the discrete-event simulator and by the
//! metric collectors.
//!
//! Time is represented in integer microseconds so that simulations are
//! deterministic and hashable.  [`SimTime`] is a point in time,
//! [`SimDuration`] a distance between two points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds (rounded down to the
    /// microsecond).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0) as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by a scalar factor.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration(((self.0 as f64) * factor.max(0.0)) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(5).as_millis_f64(), 5.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // subtraction saturates
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(2),
            SimDuration::ZERO
        );
        let mut acc = SimTime::ZERO;
        acc += SimDuration::from_secs(1);
        assert_eq!(acc, SimTime::from_secs(1));
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = [SimDuration::from_millis(1), SimDuration::from_millis(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::from_millis(3));
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(0.5),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
    }
}
