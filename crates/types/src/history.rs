//! The live history-recording surface.
//!
//! A [`HistorySink`] observes an execution as it happens: every backend
//! (the in-process runtime, the distributed cluster, and the deterministic
//! simulator) feeds an installed sink with the three ingredients a
//! serializability checker needs:
//!
//! * **invocation points** — [`HistorySink::invoked`] is called after an
//!   event id is assigned but *before* the event can start executing, so
//!   the recorded invocation timestamp is never later than the true one;
//! * **response points** — [`HistorySink::responded`] is called once the
//!   event has terminated (all its locks released), no later than the
//!   moment a client could observe the completion;
//! * **context accesses** — [`HistorySink::accessed`] is called while the
//!   access is serialized by the context's activation/object lock, so the
//!   per-context call order equals the order in which the context actually
//!   observed the accesses.
//!
//! These conventions make recorded event spans *over*-approximate the true
//! spans, which keeps a checker built on them sound: the derived real-time
//! precedence is a subset of the true one, so a reported violation is
//! always a real violation.
//!
//! The trait lives in `aeon-types` (rather than next to the recorder in
//! `aeon-checker`) so the execution backends can depend on it without a
//! dependency cycle; `aeon_checker::HistoryRecorder` implements it.

use crate::access::AccessMode;
use crate::ids::{ContextId, EventId};
use std::sync::Arc;

/// An observer of the live execution history of a deployment.
///
/// Implementations must be cheap and non-blocking: the hooks run on the
/// backends' hot paths (submission, context access, completion), in some
/// cases while holding a context's object lock.
pub trait HistorySink: Send + Sync {
    /// An event was accepted for execution.  Called after the backend
    /// assigned `event` its id but before the event could start executing.
    fn invoked(&self, event: EventId);

    /// The event terminated and its completion became observable.  Called
    /// after the event released its locks and no later than the moment a
    /// client could see the result.
    fn responded(&self, event: EventId);

    /// `event` accessed `context` under the context's serialization point.
    /// Read-only accesses are reads; exclusive accesses are treated as
    /// writes (an over-approximation that is sound for conflict analysis).
    fn accessed(&self, event: EventId, context: ContextId, mode: AccessMode);
}

/// A shareable history sink, as installed on a deployment.
pub type SharedHistorySink = Arc<dyn HistorySink>;
