//! Per-server load metrics reported by every deployment backend.
//!
//! The elasticity manager (§5.2 of the paper) decides when to scale out/in
//! and what to migrate from periodic utilisation reports of every server.
//! [`ServerMetrics`] is that report, shared by all execution backends so
//! elasticity policies are written once and drive the in-process runtime,
//! the distributed cluster, and the deterministic simulator alike.

use crate::ids::ServerId;
use serde::{Deserialize, Serialize};

/// A periodic utilisation report for one server.
///
/// The resource utilisations are proxies derived from what each backend can
/// actually observe (relative context load, executor queue depth, event
/// latency); on a real cloud deployment they would come from the host OS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServerMetrics {
    /// The reporting server.
    pub server: ServerId,
    /// CPU utilisation in `[0, 1]`.
    pub cpu: f64,
    /// Memory utilisation in `[0, 1]`.
    pub memory: f64,
    /// IO utilisation in `[0, 1]`.
    pub io: f64,
    /// Number of contexts currently hosted.
    pub context_count: usize,
    /// Events queued for execution on the server's worker pool (zero on
    /// backends that execute inline, like the deterministic simulator).
    pub queue_depth: usize,
    /// Average latency of recent client requests, in milliseconds.
    pub avg_latency_ms: f64,
}

impl ServerMetrics {
    /// Builds a report from what every backend can observe: the share of
    /// the fleet's contexts hosted on `server` stands in for resource
    /// utilisation (`cpu = memory = share`, `io = share / 2`).  All three
    /// backends derive their reports through this constructor so the proxy
    /// formula cannot drift between them.
    pub fn from_load(
        server: ServerId,
        context_count: usize,
        total_contexts: usize,
        queue_depth: usize,
        avg_latency_ms: f64,
    ) -> Self {
        let share = if total_contexts == 0 {
            0.0
        } else {
            context_count as f64 / total_contexts as f64
        };
        Self {
            server,
            cpu: share,
            memory: share,
            io: share * 0.5,
            context_count,
            queue_depth,
            avg_latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_zeroed() {
        let m = ServerMetrics::default();
        assert_eq!(m.context_count, 0);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.avg_latency_ms, 0.0);
    }

    #[test]
    fn from_load_derives_utilisation_from_context_share() {
        let m = ServerMetrics::from_load(ServerId::new(1), 3, 4, 7, 2.5);
        assert_eq!(m.cpu, 0.75);
        assert_eq!(m.memory, 0.75);
        assert_eq!(m.io, 0.375);
        assert_eq!(m.context_count, 3);
        assert_eq!(m.queue_depth, 7);
        assert_eq!(m.avg_latency_ms, 2.5);
        // An empty fleet reports zero utilisation, not NaN.
        assert_eq!(
            ServerMetrics::from_load(ServerId::new(0), 0, 0, 0, 0.0).cpu,
            0.0
        );
    }
}
