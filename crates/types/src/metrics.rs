//! Per-server load metrics reported by every deployment backend.
//!
//! The elasticity manager (§5.2 of the paper) decides when to scale out/in
//! and what to migrate from periodic utilisation reports of every server.
//! [`ServerMetrics`] is that report, shared by all execution backends so
//! elasticity policies are written once and drive the in-process runtime,
//! the distributed cluster, and the deterministic simulator alike.
//!
//! Latency is reported as a fixed-bucket [`LatencyHistogram`] rather than a
//! single running average: the bench harness and elasticity policies need
//! tail percentiles (p50/p99), and averages hide exactly the tail the paper's
//! figures plot.

use crate::ids::ServerId;
use serde::{Deserialize, Serialize};

/// Number of logarithmic buckets in a [`LatencyHistogram`].  Bucket `i`
/// covers `[2^i, 2^(i+1))` microseconds, so 40 buckets span sub-microsecond
/// to ~13 days — far beyond any plausible event latency.
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed-size log2-bucketed latency histogram (microsecond samples).
///
/// The type is `Copy` (a small fixed array) so metric reports stay plain
/// value types that can cross the cluster wire and be aggregated without
/// allocation.  Buckets are powers of two: recording `micros` increments
/// bucket `floor(log2(max(micros, 1)))`, and percentiles report the upper
/// edge of the bucket holding the requested rank — a deliberate
/// overestimate, so reported tails are conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded samples, in microseconds.
    pub total_micros: u64,
    /// Smallest recorded sample, in microseconds (0 when empty).
    pub min_micros: u64,
    /// Largest recorded sample, in microseconds (0 when empty).
    pub max_micros: u64,
    /// Log2 buckets; bucket `i` counts samples in `[2^i, 2^(i+1))` µs.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            count: 0,
            total_micros: 0,
            min_micros: 0,
            max_micros: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `micros` microseconds.
    pub fn record(&mut self, micros: u64) {
        let clamped = micros.max(1);
        let bucket = (64 - clamped.leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.total_micros += micros;
        if self.count == 0 {
            self.min_micros = micros;
            self.max_micros = micros;
        } else {
            self.min_micros = self.min_micros.min(micros);
            self.max_micros = self.max_micros.max(micros);
        }
        self.count += 1;
    }

    /// Folds another histogram into this one (for cross-server aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.min_micros = self.min_micros.min(other.min_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0 < q <= 1`) in microseconds, reported as the
    /// upper edge of the bucket containing the ranked sample (0 when
    /// empty).  The final bucket reports the observed maximum instead of
    /// its (astronomical) upper edge.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i + 1 >= LATENCY_BUCKETS {
                    return self.max_micros;
                }
                return (1u64 << (i + 1)).min(self.max_micros.max(1));
            }
        }
        self.max_micros
    }

    /// Median (p50) in microseconds.
    pub fn p50_micros(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile in microseconds.
    pub fn p99_micros(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// A point-in-time copy of a transport's traffic counters.
///
/// The live counters (`aeon_net::NetworkStats`) are atomics owned by the
/// networking substrate; this plain value type is what crosses API
/// boundaries — notably `Deployment::network_stats` and the `aeond`
/// Prometheus exposition — without dragging a dependency on the net crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkStatsSnapshot {
    /// Messages delivered on the sending server.
    pub local_messages: u64,
    /// Messages delivered across servers.
    pub remote_messages: u64,
    /// Messages dropped by fault injection or severed links.
    pub dropped_messages: u64,
    /// Encoded frames dropped by the transport itself (bounded send queue
    /// overflow, writer retirement mid-reconnect).
    pub frames_dropped: u64,
    /// Total encoded bytes handed to the transport for delivery.
    pub bytes_sent: u64,
    /// Total encoded bytes received from the transport.
    pub bytes_received: u64,
}

/// A periodic utilisation report for one server.
///
/// The resource utilisations are proxies derived from what each backend can
/// actually observe (relative context load, executor queue depth, event
/// latency); on a real cloud deployment they would come from the host OS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServerMetrics {
    /// The reporting server.
    pub server: ServerId,
    /// CPU utilisation in `[0, 1]`.
    pub cpu: f64,
    /// Memory utilisation in `[0, 1]`.
    pub memory: f64,
    /// IO utilisation in `[0, 1]`.
    pub io: f64,
    /// Number of contexts currently hosted.
    pub context_count: usize,
    /// Events queued for execution on the server's worker pool (zero on
    /// backends that execute inline, like the deterministic simulator).
    pub queue_depth: usize,
    /// Average latency of recent client requests, in milliseconds.
    pub avg_latency_ms: f64,
    /// Distribution of recent client-request latencies (microsecond
    /// buckets); empty on backends that have executed no events yet.
    pub latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Builds a report from what every backend can observe: the share of
    /// the fleet's contexts hosted on `server` stands in for resource
    /// utilisation (`cpu = memory = share`, `io = share / 2`).  All three
    /// backends derive their reports through this constructor so the proxy
    /// formula cannot drift between them.
    pub fn from_load(
        server: ServerId,
        context_count: usize,
        total_contexts: usize,
        queue_depth: usize,
        avg_latency_ms: f64,
    ) -> Self {
        let share = if total_contexts == 0 {
            0.0
        } else {
            context_count as f64 / total_contexts as f64
        };
        Self {
            server,
            cpu: share,
            memory: share,
            io: share * 0.5,
            context_count,
            queue_depth,
            avg_latency_ms,
            latency: LatencyHistogram::new(),
        }
    }

    /// Same as [`from_load`](Self::from_load) but carrying the full latency
    /// distribution alongside the derived average.
    pub fn from_load_with_latency(
        server: ServerId,
        context_count: usize,
        total_contexts: usize,
        queue_depth: usize,
        avg_latency_ms: f64,
        latency: LatencyHistogram,
    ) -> Self {
        let mut metrics = Self::from_load(
            server,
            context_count,
            total_contexts,
            queue_depth,
            avg_latency_ms,
        );
        metrics.latency = latency;
        metrics
    }

    /// Median request latency in milliseconds, from the histogram.
    pub fn p50_ms(&self) -> f64 {
        self.latency.p50_micros() as f64 / 1000.0
    }

    /// 99th-percentile request latency in milliseconds, from the histogram.
    pub fn p99_ms(&self) -> f64 {
        self.latency.p99_micros() as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_zeroed() {
        let m = ServerMetrics::default();
        assert_eq!(m.context_count, 0);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.avg_latency_ms, 0.0);
        assert_eq!(m.latency.count, 0);
        assert_eq!(m.p50_ms(), 0.0);
        assert_eq!(m.p99_ms(), 0.0);
    }

    #[test]
    fn from_load_derives_utilisation_from_context_share() {
        let m = ServerMetrics::from_load(ServerId::new(1), 3, 4, 7, 2.5);
        assert_eq!(m.cpu, 0.75);
        assert_eq!(m.memory, 0.75);
        assert_eq!(m.io, 0.375);
        assert_eq!(m.context_count, 3);
        assert_eq!(m.queue_depth, 7);
        assert_eq!(m.avg_latency_ms, 2.5);
        // An empty fleet reports zero utilisation, not NaN.
        assert_eq!(
            ServerMetrics::from_load(ServerId::new(0), 0, 0, 0, 0.0).cpu,
            0.0
        );
    }

    #[test]
    fn histogram_records_buckets_and_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(0); // clamps into bucket 0
        h.record(1);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count, 4);
        assert_eq!(h.min_micros, 0);
        assert_eq!(h.max_micros, 1000);
        assert_eq!(h.mean_micros(), 1004 / 4);
        assert_eq!(h.buckets[0], 2); // 0 (clamped) and 1
        assert_eq!(h.buckets[1], 1); // 3 in [2, 4)
        assert_eq!(h.buckets[9], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn percentiles_report_conservative_bucket_edges() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 128)
        }
        h.record(10_000); // bucket [8192, 16384)
        assert_eq!(h.p50_micros(), 128);
        assert_eq!(h.p99_micros(), 128);
        assert_eq!(h.percentile(1.0), 10_000);
        // Empty histogram reports zero, not NaN/garbage.
        assert_eq!(LatencyHistogram::new().p99_micros(), 0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        a.record(20);
        let mut b = LatencyHistogram::new();
        b.record(5);
        b.record(40_000);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.min_micros, 5);
        assert_eq!(a.max_micros, 40_000);
        assert_eq!(a.total_micros, 40_035);
        // Merging into an empty histogram copies the source.
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        // Merging an empty histogram is a no-op.
        let before = a;
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }
}
