//! Strongly-typed identifiers used throughout the system.
//!
//! Every entity in AEON — contexts, events, servers, clients — is referred
//! to by a newtype identifier ([`ContextId`], [`EventId`], [`ServerId`],
//! [`ClientId`]) so the different id spaces cannot be confused
//! (C-NEWTYPE).  All ids are cheap `Copy` wrappers over integers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a context (an instance of a `contextclass`).
///
/// Contexts are the unit of data encapsulation and migration in AEON.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ContextId(u64);

/// Identifier of an event (an atomic, strictly-serializable client request).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EventId(u64);

/// Identifier of a (possibly simulated) server / virtual machine hosting
/// contexts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServerId(u32);

/// Identifier of a client issuing events against the application.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(u64);

/// Sequence number assigned by a dominator context when an event is
/// activated.  Events that conflict are ordered by `(dominator, SequenceNo)`
/// which is what makes top-down lock acquisition deadlock free (§4 of the
/// paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SequenceNo(u64);

/// The name of a `contextclass` (e.g. `"Room"`, `"Player"`).
pub type ClassName = String;

/// The name of an exported context method (e.g. `"get_gold"`).
pub type MethodName = String;

macro_rules! impl_id {
    ($ty:ident, $raw:ty, $letter:expr) => {
        impl $ty {
            /// Creates an identifier from its raw integer representation.
            pub const fn new(raw: $raw) -> Self {
                Self(raw)
            }

            /// Returns the raw integer representation.
            pub const fn raw(self) -> $raw {
                self.0
            }
        }

        impl From<$raw> for $ty {
            fn from(raw: $raw) -> Self {
                Self(raw)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $letter, self.0)
            }
        }
    };
}

impl_id!(ContextId, u64, "ctx-");
impl_id!(EventId, u64, "ev-");
impl_id!(ServerId, u32, "srv-");
impl_id!(ClientId, u64, "cli-");
impl_id!(SequenceNo, u64, "seq-");

impl SequenceNo {
    /// Returns the next sequence number.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

/// A process-wide generator of unique identifiers.
///
/// Both the runtime and the simulator use one `IdGenerator` per id space so
/// that identifiers are never reused within a run.
#[derive(Debug, Default)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Creates a generator whose first issued id is `0`.
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// Creates a generator whose first issued id is `start`.
    pub fn starting_at(start: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
        }
    }

    /// Issues the next raw identifier.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Issues a fresh [`ContextId`].
    pub fn next_context(&self) -> ContextId {
        ContextId::new(self.next_raw())
    }

    /// Issues a fresh [`EventId`].
    pub fn next_event(&self) -> EventId {
        EventId::new(self.next_raw())
    }

    /// Issues a fresh [`ClientId`].
    pub fn next_client(&self) -> ClientId {
        ClientId::new(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_raw() {
        assert_eq!(ContextId::new(42).raw(), 42);
        assert_eq!(EventId::new(7).raw(), 7);
        assert_eq!(ServerId::new(3).raw(), 3);
        assert_eq!(ClientId::new(9).raw(), 9);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ContextId::new(1).to_string(), "ctx-1");
        assert_eq!(EventId::new(2).to_string(), "ev-2");
        assert_eq!(ServerId::new(3).to_string(), "srv-3");
        assert_eq!(ClientId::new(4).to_string(), "cli-4");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ContextId::new(1) < ContextId::new(2));
        assert!(SequenceNo::new(5) < SequenceNo::new(6));
    }

    #[test]
    fn sequence_number_next_increments() {
        assert_eq!(SequenceNo::new(0).next(), SequenceNo::new(1));
        assert_eq!(SequenceNo::new(41).next(), SequenceNo::new(42));
    }

    #[test]
    fn generator_issues_unique_ids() {
        let gen = IdGenerator::new();
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(gen.next_raw()));
        }
    }

    #[test]
    fn generator_is_usable_from_many_threads() {
        let gen = std::sync::Arc::new(IdGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gen = gen.clone();
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| gen.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id issued across threads");
            }
        }
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn ids_implement_serialize() {
        // The ids are persisted in the cloud-storage substrate, so the serde
        // derives must exist; this is a compile-time check expressed as a
        // generic bound.
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<ContextId>();
        assert_serde::<EventId>();
        assert_serde::<ServerId>();
        assert_serde::<ClientId>();
        assert_serde::<SequenceNo>();
    }
}
