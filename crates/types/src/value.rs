//! Dynamic values used for method arguments, return values, and context
//! snapshots.
//!
//! The paper extends C++ with a `contextclass` keyword and compiles method
//! calls to typed RPCs.  As a library we instead dispatch methods
//! dynamically: arguments and results are [`Value`]s.  The representation is
//! deliberately small but expressive enough for the two paper applications
//! (game, TPC-C) and for serialising context state during migration and
//! checkpointing.

use crate::error::{AeonError, Result};
use crate::ids::ContextId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically-typed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absent / unit value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Reference to another context (how `contextclass`-typed fields are
    /// expressed at runtime).
    ContextRef(ContextId),
    /// Ordered list of values.
    List(Vec<Value>),
    /// String-keyed map of values (used for struct-like state snapshots).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as an integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a float (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a context reference, if it is one.
    pub fn as_context(&self) -> Option<ContextId> {
        match self {
            Value::ContextRef(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the value as a list, if it is one.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the value as a map, if it is one.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Collects every [`ContextId`] referenced (transitively) by this value.
    ///
    /// The runtime uses this to derive the directly-owned relation from a
    /// context's state: per §3 of the paper, a context `C` is directly owned
    /// by `C'` when any field of `C'` references `C`.
    pub fn referenced_contexts(&self) -> Vec<ContextId> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut Vec<ContextId>) {
        match self {
            Value::ContextRef(c) => out.push(*c),
            Value::List(items) => items.iter().for_each(|v| v.collect_refs(out)),
            Value::Map(map) => map.values().for_each(|v| v.collect_refs(out)),
            _ => {}
        }
    }

    /// Builds a map value from `(key, value)` pairs.
    pub fn map<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::ContextRef(c) => write!(f, "&{c}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<ContextId> for Value {
    fn from(v: ContextId) -> Self {
        Value::ContextRef(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}
impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Null
    }
}

/// Positional arguments of a method call or event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Args(Vec<Value>);

impl Args {
    /// Creates an argument list from values.
    pub fn new(values: Vec<Value>) -> Self {
        Args(values)
    }

    /// The empty argument list.
    pub fn empty() -> Self {
        Args(Vec::new())
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when there are no arguments.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the argument at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Returns the argument at `idx` as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::BadArguments`] if the argument is missing or has
    /// the wrong type.
    pub fn get_i64(&self, idx: usize) -> Result<i64> {
        self.get(idx)
            .and_then(Value::as_i64)
            .ok_or_else(|| bad_arg(idx, "int"))
    }

    /// Returns the argument at `idx` as a float.
    pub fn get_f64(&self, idx: usize) -> Result<f64> {
        self.get(idx)
            .and_then(Value::as_f64)
            .ok_or_else(|| bad_arg(idx, "float"))
    }

    /// Returns the argument at `idx` as a boolean.
    pub fn get_bool(&self, idx: usize) -> Result<bool> {
        self.get(idx)
            .and_then(Value::as_bool)
            .ok_or_else(|| bad_arg(idx, "bool"))
    }

    /// Returns the argument at `idx` as a string slice.
    pub fn get_str(&self, idx: usize) -> Result<&str> {
        self.get(idx)
            .and_then(Value::as_str)
            .ok_or_else(|| bad_arg(idx, "string"))
    }

    /// Returns the argument at `idx` as a context reference.
    pub fn get_context(&self, idx: usize) -> Result<ContextId> {
        self.get(idx)
            .and_then(Value::as_context)
            .ok_or_else(|| bad_arg(idx, "context reference"))
    }

    /// Iterates over the arguments.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Consumes the argument list and returns the underlying values.
    pub fn into_inner(self) -> Vec<Value> {
        self.0
    }
}

impl From<Vec<Value>> for Args {
    fn from(values: Vec<Value>) -> Self {
        Args(values)
    }
}

impl FromIterator<Value> for Args {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Args(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Args {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

fn bad_arg(idx: usize, expected: &str) -> AeonError {
    AeonError::BadArguments {
        method: String::new(),
        reason: format!("argument {idx} missing or not a {expected}"),
    }
}

/// Builds an [`Args`] list from a comma-separated list of expressions, each
/// convertible into a [`Value`].
///
/// ```
/// use aeon_types::{args, Value};
/// let a = args![1i64, "gold", true];
/// assert_eq!(a.len(), 3);
/// assert_eq!(a.get_str(1).unwrap(), "gold");
/// ```
#[macro_export]
macro_rules! args {
    () => { $crate::Args::empty() };
    ($($e:expr),+ $(,)?) => {
        $crate::Args::new(vec![$($crate::Value::from($e)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(
            Value::from(ContextId::new(3)),
            Value::ContextRef(ContextId::new(3))
        );
        assert_eq!(Value::from(()), Value::Null);
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Bool(true).as_i64(), None);
        assert_eq!(Value::Null.as_str(), None);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
    }

    #[test]
    fn referenced_contexts_walks_nested_structures() {
        let v = Value::map([
            (
                "items",
                Value::from(vec![ContextId::new(1), ContextId::new(2)]),
            ),
            ("owner", Value::from(ContextId::new(3))),
            ("name", Value::from("castle")),
        ]);
        let mut refs = v.referenced_contexts();
        refs.sort();
        assert_eq!(
            refs,
            vec![ContextId::new(1), ContextId::new(2), ContextId::new(3)]
        );
    }

    #[test]
    fn args_typed_accessors() {
        let a = args![42i64, "sword", true, ContextId::new(9), 1.5f64];
        assert_eq!(a.get_i64(0).unwrap(), 42);
        assert_eq!(a.get_str(1).unwrap(), "sword");
        assert!(a.get_bool(2).unwrap());
        assert_eq!(a.get_context(3).unwrap(), ContextId::new(9));
        assert_eq!(a.get_f64(4).unwrap(), 1.5);
        assert!(a.get_i64(5).is_err());
        assert!(a.get_str(0).is_err());
    }

    #[test]
    fn empty_args_macro() {
        let a = args![];
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn map_lookup() {
        let v = Value::map([("gold", Value::from(10i64))]);
        assert_eq!(v.get("gold").and_then(Value::as_i64), Some(10));
        assert!(v.get("silver").is_none());
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Str(String::new()),
            Value::List(vec![]),
            Value::Map(BTreeMap::new()),
            Value::Bytes(vec![]),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
