//! Error handling for the AEON reproduction.

use crate::ids::{ContextId, EventId, ServerId};
use std::fmt;

/// Convenient result alias used by every public API of the workspace.
pub type Result<T, E = AeonError> = std::result::Result<T, E>;

/// Errors produced by the AEON runtime, ownership network, elasticity
/// manager, and simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AeonError {
    /// A context id was used that the ownership network / runtime does not
    /// know about.
    ContextNotFound(ContextId),
    /// A server id was used that the cluster does not know about.
    ServerNotFound(ServerId),
    /// An event id was used that the runtime does not know about.
    EventNotFound(EventId),
    /// Adding an ownership edge would create a cycle in the context DAG.
    CycleDetected { from: ContextId, to: ContextId },
    /// The static contextclass analysis rejected the program: the class-level
    /// ownership constraints contain a non-reflexive cycle.
    ClassCycleDetected { description: String },
    /// A method call targeted a context that the calling context does not
    /// (transitively) own.
    OwnershipViolation {
        caller: ContextId,
        callee: ContextId,
        /// Optional class-level explanation (the offending classes and the
        /// missing constraint), filled in when the violation is detected by
        /// the static analysis rather than the runtime hot path.
        detail: Option<String>,
    },
    /// The static analysis pipeline rejected the program: one or more
    /// error-severity diagnostics (see `aeon-analyzer`) were reported for
    /// the contextclass graph.
    AnalysisRejected {
        /// Number of error-severity diagnostics.
        errors: usize,
        /// Rendered diagnostics, one per line (`AEONnnn ...`).
        report: String,
    },
    /// A `readonly` method attempted to modify state or call a non-readonly
    /// method.
    ReadOnlyViolation { context: ContextId, method: String },
    /// The named method does not exist on the target contextclass.
    UnknownMethod { class: String, method: String },
    /// A method was invoked with arguments of the wrong arity or type.
    BadArguments { method: String, reason: String },
    /// The application code returned an error.
    Application(String),
    /// A contextclass method panicked while handling the event.  The
    /// executor catches the unwind, releases the event's locks, and
    /// resolves the client handle with this error instead of a
    /// disconnect.
    Panicked { reason: String },
    /// The context is currently being migrated and cannot accept the
    /// operation (transient; callers may retry).
    MigrationInProgress(ContextId),
    /// A migration step failed.
    MigrationFailed { context: ContextId, reason: String },
    /// A coordinated snapshot (or snapshot restore) of a context subtree
    /// failed; any members frozen before the failure have been thawed.
    SnapshotFailed { context: ContextId, reason: String },
    /// The runtime has been shut down.
    RuntimeShutdown,
    /// A storage operation failed (e.g. compare-and-swap conflict).
    Storage(String),
    /// The event was aborted (e.g. the hosting server was removed).
    EventAborted { event: EventId, reason: String },
    /// The transport's bounded outbound queue for `peer` is at capacity:
    /// the message was NOT sent (transient backpressure; callers may
    /// retry, shed load, or escalate — the frame is counted in the
    /// transport's `frames_dropped` statistic).
    SendQueueFull { peer: ServerId },
    /// Codec (encode/decode) failure for snapshots or migration payloads.
    Codec(String),
    /// Configuration error (invalid parameters to a builder).
    Config(String),
    /// Internal invariant violation; indicates a bug in the framework.
    Internal(String),
}

impl fmt::Display for AeonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AeonError::ContextNotFound(c) => write!(f, "context {c} not found"),
            AeonError::ServerNotFound(s) => write!(f, "server {s} not found"),
            AeonError::EventNotFound(e) => write!(f, "event {e} not found"),
            AeonError::CycleDetected { from, to } => {
                write!(
                    f,
                    "adding ownership edge {from} -> {to} would create a cycle"
                )
            }
            AeonError::ClassCycleDetected { description } => {
                write!(
                    f,
                    "contextclass ownership constraints are cyclic: {description}"
                )
            }
            AeonError::OwnershipViolation {
                caller,
                callee,
                detail,
            } => {
                write!(f, "context {caller} does not own {callee}")?;
                if let Some(detail) = detail {
                    write!(f, " ({detail})")?;
                }
                Ok(())
            }
            AeonError::AnalysisRejected { errors, report } => {
                write!(
                    f,
                    "static analysis rejected the contextclass graph with {errors} error(s):\n{report}"
                )
            }
            AeonError::ReadOnlyViolation { context, method } => {
                write!(
                    f,
                    "readonly method {method} attempted an update in context {context}"
                )
            }
            AeonError::UnknownMethod { class, method } => {
                write!(f, "contextclass {class} has no method {method}")
            }
            AeonError::BadArguments { method, reason } => {
                write!(f, "bad arguments for method {method}: {reason}")
            }
            AeonError::Application(msg) => write!(f, "application error: {msg}"),
            AeonError::Panicked { reason } => {
                write!(f, "context method panicked: {reason}")
            }
            AeonError::MigrationInProgress(c) => {
                write!(f, "context {c} is currently migrating")
            }
            AeonError::MigrationFailed { context, reason } => {
                write!(f, "migration of context {context} failed: {reason}")
            }
            AeonError::SnapshotFailed { context, reason } => {
                write!(f, "snapshot rooted at context {context} failed: {reason}")
            }
            AeonError::RuntimeShutdown => write!(f, "the runtime has been shut down"),
            AeonError::Storage(msg) => write!(f, "storage error: {msg}"),
            AeonError::EventAborted { event, reason } => {
                write!(f, "event {event} aborted: {reason}")
            }
            AeonError::SendQueueFull { peer } => {
                write!(f, "outbound send queue for server {peer} is full")
            }
            AeonError::Codec(msg) => write!(f, "codec error: {msg}"),
            AeonError::Config(msg) => write!(f, "configuration error: {msg}"),
            AeonError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for AeonError {}

impl AeonError {
    /// Returns `true` when the operation may be retried (transient errors
    /// such as an in-flight migration or a CAS conflict).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            AeonError::MigrationInProgress(_)
                | AeonError::Storage(_)
                | AeonError::SendQueueFull { .. }
        )
    }

    /// Creates an [`AeonError::Application`] from any displayable value.
    pub fn app(msg: impl fmt::Display) -> Self {
        AeonError::Application(msg.to_string())
    }

    /// Creates an [`AeonError::Internal`] from any displayable value.
    pub fn internal(msg: impl fmt::Display) -> Self {
        AeonError::Internal(msg.to_string())
    }

    /// Creates an [`AeonError::OwnershipViolation`] with no class-level
    /// detail (the runtime hot path, which only knows the context ids).
    pub fn ownership(caller: ContextId, callee: ContextId) -> Self {
        AeonError::OwnershipViolation {
            caller,
            callee,
            detail: None,
        }
    }

    /// Converts a caught panic payload (from `std::panic::catch_unwind`)
    /// into an [`AeonError::Panicked`], extracting the message when the
    /// payload is a string.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let reason = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        AeonError::Panicked { reason }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<AeonError>();
    }

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = AeonError::ContextNotFound(ContextId::new(3));
        assert_eq!(err.to_string(), "context ctx-3 not found");
        let err = AeonError::CycleDetected {
            from: ContextId::new(1),
            to: ContextId::new(2),
        };
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn ownership_violation_detail_is_appended_when_present() {
        let bare = AeonError::ownership(ContextId::new(1), ContextId::new(2));
        assert_eq!(bare.to_string(), "context ctx-1 does not own ctx-2");
        let rich = AeonError::OwnershipViolation {
            caller: ContextId::new(1),
            callee: ContextId::new(2),
            detail: Some("class Item may not own class Player".into()),
        };
        assert!(rich.to_string().contains("class Item"));
    }

    #[test]
    fn analysis_rejected_reports_count_and_diagnostics() {
        let err = AeonError::AnalysisRejected {
            errors: 2,
            report: "AEON002 ...\nAEON003 ...".into(),
        };
        let text = err.to_string();
        assert!(text.contains("2 error(s)"));
        assert!(text.contains("AEON003"));
        assert!(!err.is_transient());
    }

    #[test]
    fn transient_classification() {
        assert!(AeonError::MigrationInProgress(ContextId::new(1)).is_transient());
        assert!(AeonError::Storage("cas conflict".into()).is_transient());
        assert!(!AeonError::RuntimeShutdown.is_transient());
        assert!(!AeonError::app("boom").is_transient());
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(AeonError::app("x"), AeonError::Application(_)));
        assert!(matches!(AeonError::internal("x"), AeonError::Internal(_)));
    }

    #[test]
    fn panic_payloads_become_panicked_errors() {
        let err = AeonError::from_panic(Box::new("boom"));
        assert_eq!(
            err,
            AeonError::Panicked {
                reason: "boom".into()
            }
        );
        let err = AeonError::from_panic(Box::new(String::from("owned boom")));
        assert!(err.to_string().contains("owned boom"));
        let err = AeonError::from_panic(Box::new(42usize));
        assert!(matches!(err, AeonError::Panicked { .. }));
        assert!(!err.is_transient());
    }
}
