//! Access modes of events and methods.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an event (or method call) may modify context state.
///
/// Read-only events take a *shared* lock on the contexts they traverse, so
/// several of them may be active in the same context concurrently; exclusive
/// events serialize with everything else (Algorithm 2, line 11 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AccessMode {
    /// The event may update state; it requires exclusive access
    /// (the paper's `EX`).
    #[default]
    Exclusive,
    /// The event was declared `readonly` (`ro`); it only requires shared
    /// access (the paper's `RO`).
    ReadOnly,
}

impl AccessMode {
    /// Returns `true` for [`AccessMode::ReadOnly`].
    pub const fn is_read_only(self) -> bool {
        matches!(self, AccessMode::ReadOnly)
    }

    /// Returns `true` for [`AccessMode::Exclusive`].
    pub const fn is_exclusive(self) -> bool {
        matches!(self, AccessMode::Exclusive)
    }

    /// Returns whether an event with access mode `self` may be activated in
    /// a context whose currently-activated events have the modes given by
    /// `active`.
    ///
    /// This encodes the read/write-lock compatibility matrix: any number of
    /// read-only events may share a context, while an exclusive event
    /// requires the context to be free.
    pub fn compatible_with<'a, I>(self, active: I) -> bool
    where
        I: IntoIterator<Item = &'a AccessMode>,
    {
        let mut iter = active.into_iter().peekable();
        match self {
            AccessMode::Exclusive => iter.peek().is_none(),
            AccessMode::ReadOnly => iter.all(|m| m.is_read_only()),
        }
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessMode::Exclusive => write!(f, "EX"),
            AccessMode::ReadOnly => write!(f, "RO"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_requires_empty_context() {
        assert!(AccessMode::Exclusive.compatible_with([]));
        assert!(!AccessMode::Exclusive.compatible_with([&AccessMode::ReadOnly]));
        assert!(!AccessMode::Exclusive.compatible_with([&AccessMode::Exclusive]));
    }

    #[test]
    fn read_only_shares_with_read_only() {
        assert!(AccessMode::ReadOnly.compatible_with([]));
        assert!(
            AccessMode::ReadOnly.compatible_with([&AccessMode::ReadOnly, &AccessMode::ReadOnly])
        );
        assert!(!AccessMode::ReadOnly.compatible_with([&AccessMode::Exclusive]));
    }

    #[test]
    fn display_matches_paper_terminology() {
        assert_eq!(AccessMode::Exclusive.to_string(), "EX");
        assert_eq!(AccessMode::ReadOnly.to_string(), "RO");
    }

    #[test]
    fn default_is_exclusive() {
        assert_eq!(AccessMode::default(), AccessMode::Exclusive);
    }
}
