//! Prometheus text exposition (format 0.0.4) of the metric types.
//!
//! The `aeond` service binary exposes its runtime state on `/metrics`;
//! this module renders [`ServerMetrics`] (per-server gauges plus the
//! [`LatencyHistogram`] as a native Prometheus histogram) and
//! [`NetworkStatsSnapshot`] counters into that format.  The rendering
//! lives next to the metric types so every consumer — the service binary,
//! tests, future push gateways — agrees on metric names and label
//! conventions.
//!
//! Conventions (matching Prometheus best practice):
//!
//! * every metric is prefixed `aeon_`;
//! * counters end in `_total`, histograms expose `_bucket`/`_sum`/`_count`
//!   with cumulative `le` upper bounds;
//! * per-server series carry a `server="<id>"` label;
//! * each metric family is preceded by `# HELP` and `# TYPE` lines.

use crate::metrics::{NetworkStatsSnapshot, ServerMetrics, LATENCY_BUCKETS};

/// Incrementally builds one exposition document.
///
/// The writer only guarantees syntactic conventions (HELP/TYPE headers,
/// label escaping, sample lines); callers decide the metric families.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// A writer with an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` header of a metric family.
    /// `kind` is one of `gauge`, `counter`, `histogram`.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Writes one sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (key, val)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(key);
                self.out.push_str("=\"");
                for c in val.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        // Prometheus accepts integer-valued floats without a fraction;
        // render whole numbers compactly so counters stay exact.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.out.push_str(&format!("{}", value as i64));
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
    }

    /// The document rendered so far.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders the per-server control-plane metrics: utilisation gauges,
/// context/queue gauges, and the event-latency histogram (one Prometheus
/// histogram per server, microsecond buckets at power-of-two bounds).
pub fn render_server_metrics(w: &mut PromWriter, metrics: &[ServerMetrics]) {
    let label = |m: &ServerMetrics| vec![("server", m.server.raw().to_string())];

    w.family(
        "aeon_server_contexts",
        "Contexts currently hosted by the server.",
        "gauge",
    );
    for m in metrics {
        w.sample("aeon_server_contexts", &label(m), m.context_count as f64);
    }

    w.family(
        "aeon_server_queue_depth",
        "Events queued for execution on the server's worker pool.",
        "gauge",
    );
    for m in metrics {
        w.sample("aeon_server_queue_depth", &label(m), m.queue_depth as f64);
    }

    for (name, help, get) in [
        (
            "aeon_server_cpu_utilization",
            "CPU utilisation proxy in [0, 1].",
            (|m: &ServerMetrics| m.cpu) as fn(&ServerMetrics) -> f64,
        ),
        (
            "aeon_server_memory_utilization",
            "Memory utilisation proxy in [0, 1].",
            |m| m.memory,
        ),
        (
            "aeon_server_io_utilization",
            "IO utilisation proxy in [0, 1].",
            |m| m.io,
        ),
        (
            "aeon_server_avg_latency_ms",
            "Average latency of recent client requests in milliseconds.",
            |m| m.avg_latency_ms,
        ),
    ] {
        w.family(name, help, "gauge");
        for m in metrics {
            let v = get(m);
            // A metrics bug upstream must not corrupt the exposition:
            // NaN is not representable in the text format.
            w.sample(name, &label(m), if v.is_finite() { v } else { 0.0 });
        }
    }

    w.family(
        "aeon_event_latency_micros",
        "Distribution of recent client-request latencies in microseconds.",
        "histogram",
    );
    for m in metrics {
        let server = m.server.raw().to_string();
        let mut cumulative = 0u64;
        for (i, &count) in m.latency.buckets.iter().enumerate() {
            cumulative += count;
            // Skip empty tail buckets beyond the observed maximum, but
            // always render a bucket that carries counts so the
            // cumulative distribution is complete.
            if count == 0 && (1u64 << i) > m.latency.max_micros {
                continue;
            }
            let le = 1u64 << (i + 1).min(LATENCY_BUCKETS);
            w.sample(
                "aeon_event_latency_micros_bucket",
                &[("server", server.clone()), ("le", le.to_string())],
                cumulative as f64,
            );
        }
        w.sample(
            "aeon_event_latency_micros_bucket",
            &[("server", server.clone()), ("le", "+Inf".to_string())],
            m.latency.count as f64,
        );
        w.sample(
            "aeon_event_latency_micros_sum",
            &[("server", server.clone())],
            m.latency.total_micros as f64,
        );
        w.sample(
            "aeon_event_latency_micros_count",
            &[("server", server)],
            m.latency.count as f64,
        );
    }
}

/// Renders the transport traffic counters.
pub fn render_network_stats(w: &mut PromWriter, net: &NetworkStatsSnapshot) {
    w.family(
        "aeon_network_messages_total",
        "Messages delivered by the transport, by scope.",
        "counter",
    );
    w.sample(
        "aeon_network_messages_total",
        &[("scope", "local".into())],
        net.local_messages as f64,
    );
    w.sample(
        "aeon_network_messages_total",
        &[("scope", "remote".into())],
        net.remote_messages as f64,
    );
    w.family(
        "aeon_network_dropped_messages_total",
        "Messages dropped by fault injection or severed links.",
        "counter",
    );
    w.sample(
        "aeon_network_dropped_messages_total",
        &[],
        net.dropped_messages as f64,
    );
    w.family(
        "aeon_network_frames_dropped_total",
        "Encoded frames dropped by the transport (send-queue overflow, writer retirement).",
        "counter",
    );
    w.sample(
        "aeon_network_frames_dropped_total",
        &[],
        net.frames_dropped as f64,
    );
    w.family(
        "aeon_network_bytes_total",
        "Encoded bytes crossing the transport, by direction.",
        "counter",
    );
    w.sample(
        "aeon_network_bytes_total",
        &[("direction", "sent".into())],
        net.bytes_sent as f64,
    );
    w.sample(
        "aeon_network_bytes_total",
        &[("direction", "received".into())],
        net.bytes_received as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;
    use crate::metrics::LatencyHistogram;

    fn sample_metrics() -> Vec<ServerMetrics> {
        let mut latency = LatencyHistogram::new();
        latency.record(3); // bucket [2, 4)
        latency.record(100); // bucket [64, 128)
        latency.record(100);
        vec![
            ServerMetrics::from_load_with_latency(ServerId::new(0), 3, 4, 7, 2.5, latency),
            ServerMetrics::from_load(ServerId::new(1), 1, 4, 0, 0.5),
        ]
    }

    #[test]
    fn renders_gauges_with_server_labels() {
        let mut w = PromWriter::new();
        render_server_metrics(&mut w, &sample_metrics());
        let text = w.finish();
        assert!(text.contains("# TYPE aeon_server_contexts gauge"));
        assert!(text.contains("aeon_server_contexts{server=\"0\"} 3"));
        assert!(text.contains("aeon_server_contexts{server=\"1\"} 1"));
        assert!(text.contains("aeon_server_queue_depth{server=\"0\"} 7"));
        assert!(text.contains("aeon_server_avg_latency_ms{server=\"0\"} 2.5"));
    }

    #[test]
    fn renders_cumulative_histogram_buckets() {
        let mut w = PromWriter::new();
        render_server_metrics(&mut w, &sample_metrics());
        let text = w.finish();
        assert!(text.contains("# TYPE aeon_event_latency_micros histogram"));
        // 3 lands in [2,4) => le=4 cumulative 1; both 100s in [64,128) =>
        // le=128 cumulative 3.
        assert!(text.contains("aeon_event_latency_micros_bucket{server=\"0\",le=\"4\"} 1"));
        assert!(text.contains("aeon_event_latency_micros_bucket{server=\"0\",le=\"128\"} 3"));
        assert!(text.contains("aeon_event_latency_micros_bucket{server=\"0\",le=\"+Inf\"} 3"));
        assert!(text.contains("aeon_event_latency_micros_sum{server=\"0\"} 203"));
        assert!(text.contains("aeon_event_latency_micros_count{server=\"0\"} 3"));
        // The idle server still exposes a complete (empty) histogram.
        assert!(text.contains("aeon_event_latency_micros_bucket{server=\"1\",le=\"+Inf\"} 0"));
        assert!(text.contains("aeon_event_latency_micros_count{server=\"1\"} 0"));
    }

    #[test]
    fn renders_network_counters() {
        let mut w = PromWriter::new();
        render_network_stats(
            &mut w,
            &NetworkStatsSnapshot {
                local_messages: 5,
                remote_messages: 7,
                dropped_messages: 1,
                frames_dropped: 2,
                bytes_sent: 1000,
                bytes_received: 900,
            },
        );
        let text = w.finish();
        assert!(text.contains("aeon_network_messages_total{scope=\"local\"} 5"));
        assert!(text.contains("aeon_network_messages_total{scope=\"remote\"} 7"));
        assert!(text.contains("aeon_network_frames_dropped_total 2"));
        assert!(text.contains("aeon_network_bytes_total{direction=\"sent\"} 1000"));
        assert!(text.contains("aeon_network_bytes_total{direction=\"received\"} 900"));
    }

    #[test]
    fn nan_values_render_as_zero_not_nan() {
        let mut metrics = sample_metrics();
        metrics[0].avg_latency_ms = f64::NAN;
        let mut w = PromWriter::new();
        render_server_metrics(&mut w, &metrics);
        let text = w.finish();
        assert!(!text.contains("NaN"), "{text}");
        assert!(text.contains("aeon_server_avg_latency_ms{server=\"0\"} 0"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.family("x", "help", "gauge");
        w.sample("x", &[("l", "a\"b\\c\nd".into())], 1.0);
        assert!(w.finish().contains("x{l=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
