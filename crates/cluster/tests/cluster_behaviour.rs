//! Integration tests of the distributed deployment: event routing across
//! servers, remote method calls, migration under load, fault injection, and
//! strict serializability of concurrent executions (checked with
//! `aeon-checker`).

use aeon_api::Session;
use aeon_checker::bank::{bank_class_graph, Bank, BranchWithDirectory};
use aeon_checker::{check_strict_serializability, HistoryRecorder, RecordingRegister};
use aeon_cluster::Cluster;
use aeon_runtime::{ContextObject, Invocation, KvContext, Placement};
use aeon_types::{args, AeonError, Args, ContextId, Result, Value};
use std::sync::Arc;
use std::time::Duration;

/// A parent context that aggregates over its children — used to force
/// cross-server synchronous calls.
#[derive(Debug, Default)]
struct Aggregator;

impl ContextObject for Aggregator {
    fn class_name(&self) -> &str {
        "Aggregator"
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            // Sums the "count" key of every child, via synchronous calls.
            "sum" => {
                let mut total = 0i64;
                for child in inv.children(None)? {
                    total += inv
                        .call(child, "get", args!["count"])?
                        .as_i64()
                        .unwrap_or(0);
                }
                Ok(Value::from(total))
            }
            // Increments the "count" key of every child, asynchronously.
            "bump_all" => {
                for child in inv.children(None)? {
                    inv.call_async(child, "incr", args!["count", 1i64])?;
                }
                Ok(Value::Null)
            }
            // Increments one child synchronously and dispatches a follow-up
            // event targeting another child.
            "bump_and_followup" => {
                let first = args.get_context(0)?;
                let second = args.get_context(1)?;
                inv.call(first, "incr", args!["count", 1i64])?;
                inv.dispatch_event(second, "incr", args!["count", 10i64])?;
                Ok(Value::Null)
            }
            _ => Err(AeonError::UnknownMethod {
                class: "Aggregator".into(),
                method: method.into(),
            }),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "sum"
    }
}

fn kv_factory() -> aeon_runtime::ContextFactory {
    Arc::new(|state: &Value| {
        let mut kv = KvContext::new("Item");
        kv.restore(state);
        Box::new(kv) as Box<dyn ContextObject>
    })
}

#[test]
fn events_execute_on_the_hosting_server() {
    let cluster = Cluster::builder().servers(3).build().unwrap();
    let servers = cluster.servers();
    let mut rooms = Vec::new();
    for server in &servers {
        rooms.push(
            cluster
                .create_context(Box::new(KvContext::new("Room")), Placement::Server(*server))
                .unwrap(),
        );
    }
    let client = cluster.client();
    for (i, room) in rooms.iter().enumerate() {
        client
            .call(*room, "set", args!["name", format!("room-{i}")])
            .unwrap();
    }
    for (i, room) in rooms.iter().enumerate() {
        assert_eq!(
            client.call_readonly(*room, "get", args!["name"]).unwrap(),
            Value::from(format!("room-{i}"))
        );
    }
    // Every server executed at least one event (its own room's writes).
    let executed = cluster.events_executed();
    for server in &servers {
        assert!(executed[server] > 0, "server {server} executed no events");
    }
    cluster.shutdown();
}

#[test]
fn synchronous_calls_cross_servers() {
    let cluster = Cluster::builder().servers(2).build().unwrap();
    let servers = cluster.servers();
    // Parent on server 0; children explicitly on server 1 so the calls are
    // remote.
    let parent = cluster
        .create_context(Box::new(Aggregator), Placement::Server(servers[0]))
        .unwrap();
    let mut children = Vec::new();
    for _ in 0..3 {
        let child = cluster
            .create_context(
                Box::new(KvContext::new("Item")),
                Placement::Server(servers[1]),
            )
            .unwrap();
        cluster.add_ownership(parent, child).unwrap();
        children.push(child);
    }
    let client = cluster.client();
    for child in &children {
        client.call(*child, "set", args!["count", 5i64]).unwrap();
    }
    let before = cluster.network_stats().remote_messages();
    assert_eq!(
        client.call_readonly(parent, "sum", args![]).unwrap(),
        Value::from(15i64)
    );
    let after = cluster.network_stats().remote_messages();
    assert!(after > before, "aggregation crossed servers");
    cluster.shutdown();
}

#[test]
fn async_calls_and_sub_events_work_across_servers() {
    let cluster = Cluster::builder().servers(2).build().unwrap();
    let servers = cluster.servers();
    let parent = cluster
        .create_context(Box::new(Aggregator), Placement::Server(servers[0]))
        .unwrap();
    let a = cluster
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(servers[1]),
        )
        .unwrap();
    let b = cluster
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(servers[0]),
        )
        .unwrap();
    cluster.add_ownership(parent, a).unwrap();
    cluster.add_ownership(parent, b).unwrap();
    let client = cluster.client();

    // Async fan-out: both children incremented within one event.
    client.call(parent, "bump_all", args![]).unwrap();
    assert_eq!(
        client.call_readonly(parent, "sum", args![]).unwrap(),
        Value::from(2i64)
    );

    // Sub-event: the follow-up executes after the creator event terminates.
    client
        .call(parent, "bump_and_followup", args![a, b])
        .unwrap();
    // Wait for the dispatched sub-event to land (it is asynchronous).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let total = client
            .call_readonly(parent, "sum", args![])
            .unwrap()
            .as_i64()
            .unwrap();
        if total == 13 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sub-event never executed, total={total}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown();
}

#[test]
fn read_only_events_reject_updates() {
    let cluster = Cluster::builder().servers(1).build().unwrap();
    let item = cluster
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let client = cluster.client();
    let err = client
        .call_readonly(item, "set", args!["k", 1i64])
        .unwrap_err();
    assert!(matches!(err, AeonError::ReadOnlyViolation { .. }));
    cluster.shutdown();
}

#[test]
fn unknown_targets_and_offline_servers_are_reported() {
    let cluster = Cluster::builder().servers(1).build().unwrap();
    let client = cluster.client();
    assert!(matches!(
        client.call(ContextId::new(999), "get", args!["k"]),
        Err(AeonError::ContextNotFound(_))
    ));
    assert!(matches!(
        cluster.create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(aeon_types::ServerId::new(77))
        ),
        Err(AeonError::ServerNotFound(_))
    ));
    cluster.shutdown();
}

#[test]
fn migration_under_concurrent_load_loses_no_updates() {
    let cluster = Cluster::builder().servers(3).build().unwrap();
    cluster.register_class_factory("Item", kv_factory());
    let servers = cluster.servers();
    let counter = cluster
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(servers[0]),
        )
        .unwrap();
    let cluster = Arc::new(cluster);

    let writers = 4;
    let increments = 40;
    let mut handles = Vec::new();
    for _ in 0..writers {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let client = cluster.client();
            for _ in 0..increments {
                client.call(counter, "incr", args!["count", 1i64]).unwrap();
            }
        }));
    }
    // Bounce the context between servers while the writers hammer it.
    let migrator = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            let mut moved_bytes = 0u64;
            for round in 0..6 {
                let to = servers[(round + 1) % servers.len()];
                moved_bytes += cluster.migrate_context(counter, to).unwrap();
                std::thread::sleep(Duration::from_millis(20));
            }
            moved_bytes
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    let moved = migrator.join().unwrap();
    assert!(moved > 0, "migrations shipped serialized state");

    let client = cluster.client();
    let total = client
        .call_readonly(counter, "get", args!["count"])
        .unwrap();
    assert_eq!(total, Value::from((writers * increments) as i64));
    cluster.shutdown();
}

#[test]
fn migration_without_factory_is_refused_up_front() {
    let cluster = Cluster::builder().servers(2).build().unwrap();
    let servers = cluster.servers();
    let item = cluster
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(servers[0]),
        )
        .unwrap();
    let err = cluster.migrate_context(item, servers[1]).unwrap_err();
    assert!(matches!(err, AeonError::MigrationFailed { .. }));
    // The context is untouched and still usable.
    let client = cluster.client();
    client.call(item, "set", args!["k", 1i64]).unwrap();
    cluster.shutdown();
}

#[test]
fn crashed_server_contexts_can_be_restored_elsewhere() {
    let cluster = Cluster::builder().servers(2).build().unwrap();
    cluster.register_class_factory("Item", kv_factory());
    let servers = cluster.servers();
    let item = cluster
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(servers[0]),
        )
        .unwrap();
    let client = cluster.client();
    client.call(item, "set", args!["gold", 42i64]).unwrap();
    // Take a checkpoint of the context state (what the snapshot API would
    // persist to cloud storage in §5.3).
    let checkpoint = {
        let mut kv = KvContext::new("Item");
        kv.restore(&Value::Null);
        // Rebuild the state we know the context has; in a full deployment
        // this would come from `EManager::checkpoint`.
        drop(kv);
        Value::map([
            ("class", Value::from("Item")),
            (
                "map",
                Value::Map(
                    [("gold".to_string(), Value::from(42i64))]
                        .into_iter()
                        .collect(),
                ),
            ),
        ])
    };

    cluster.crash_server(servers[0]).unwrap();
    // Events routed to the crashed server fail instead of hanging.
    let err = client
        .submit_event(item, "set", args!["gold", 1i64])
        .map(|h| h.wait_timeout(Duration::from_millis(500)));
    match err {
        Ok(Err(_)) | Err(_) => {}
        Ok(Ok(v)) => panic!("event unexpectedly succeeded on a crashed server: {v:?}"),
    }

    // Restore the context on the surviving server from the checkpoint.
    cluster
        .restore_context(item, &checkpoint, servers[1])
        .unwrap();
    assert_eq!(cluster.placement_of(item).unwrap(), servers[1]);
    assert_eq!(
        client.call_readonly(item, "get", args!["gold"]).unwrap(),
        Value::from(42i64)
    );
    client.call(item, "incr", args!["gold", 8i64]).unwrap();
    assert_eq!(
        client.call_readonly(item, "get", args!["gold"]).unwrap(),
        Value::from(50i64)
    );
    cluster.shutdown();
}

#[test]
fn scale_out_places_new_contexts_on_new_servers() {
    let cluster = Cluster::builder().servers(1).build().unwrap();
    for _ in 0..4 {
        cluster
            .create_context(Box::new(KvContext::new("Room")), Placement::Auto)
            .unwrap();
    }
    let new_server = cluster.add_server();
    let fresh = cluster
        .create_context(Box::new(KvContext::new("Room")), Placement::Auto)
        .unwrap();
    assert_eq!(cluster.placement_of(fresh).unwrap(), new_server);
    assert_eq!(cluster.servers().len(), 2);
    cluster.shutdown();
}

#[test]
fn distributed_bank_run_is_strictly_serializable() {
    // The same bank application used against the in-process runtime in
    // aeon-checker, deployed across 3 servers of the distributed cluster:
    // shared accounts force cross-branch sequencing at the Bank dominator,
    // and account accesses cross server boundaries.
    let recorder = HistoryRecorder::new();
    let cluster = Cluster::builder()
        .servers(3)
        .class_graph(bank_class_graph())
        .build()
        .unwrap();
    let servers = cluster.servers();
    let bank = cluster
        .create_context(Box::new(Bank), Placement::Server(servers[0]))
        .unwrap();
    let mut branches = Vec::new();
    let mut accounts_of: Vec<Vec<ContextId>> = Vec::new();
    for i in 0..3usize {
        let branch = cluster
            .create_context(
                Box::new(BranchWithDirectory::new()),
                Placement::Server(servers[i % servers.len()]),
            )
            .unwrap();
        cluster.add_ownership(bank, branch).unwrap();
        branches.push(branch);
        accounts_of.push(Vec::new());
    }
    for (i, branch) in branches.iter().enumerate() {
        for _ in 0..2 {
            let account = cluster
                .create_owned_context(
                    Box::new(RecordingRegister::new("Account", 100, recorder.clone())),
                    &[*branch],
                )
                .unwrap();
            accounts_of[i].push(account);
        }
    }
    // One shared account between branches 0 and 1 (multi-ownership).
    let shared = cluster
        .create_owned_context(
            Box::new(RecordingRegister::new("Account", 100, recorder.clone())),
            &[branches[0], branches[1]],
        )
        .unwrap();
    accounts_of[0].push(shared);
    accounts_of[1].push(shared);
    let expected_total = (3 * 2 + 1) * 100i64;

    let client = cluster.client();
    for (i, branch) in branches.iter().enumerate() {
        for account in &accounts_of[i] {
            client
                .call(*branch, "attach_account", args![*account])
                .unwrap();
        }
    }
    recorder.reset();

    let cluster = Arc::new(cluster);
    let accounts_of = Arc::new(accounts_of);
    let branches = Arc::new(branches);
    let mut workers = Vec::new();
    for w in 0..4usize {
        let cluster = Arc::clone(&cluster);
        let accounts_of = Arc::clone(&accounts_of);
        let branches = Arc::clone(&branches);
        let recorder = recorder.clone();
        workers.push(std::thread::spawn(move || {
            let client = cluster.client();
            for i in 0..20usize {
                let b = (w + i) % branches.len();
                let accounts = &accounts_of[b];
                let from = accounts[i % accounts.len()];
                let to = accounts[(i + 1) % accounts.len()];
                if from == to {
                    continue;
                }
                let token = recorder.invocation_started();
                let handle = client
                    .submit_event(branches[b], "transfer", args![from, to, 3i64])
                    .unwrap();
                recorder.bind(token, handle.event_id());
                let event = handle.event_id();
                handle.wait().unwrap();
                recorder.completed(event);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    let total = client.call_readonly(bank, "audit", args![]).unwrap();
    assert_eq!(
        total,
        Value::from(expected_total),
        "money is conserved across servers"
    );
    let history = recorder.history();
    assert!(history.operation_count() > 0);
    check_strict_serializability(&history).expect("distributed execution is strictly serializable");
    cluster.shutdown();
}
