//! Running one cluster server as its own OS process.
//!
//! The `aeon-node` binary calls [`run_node`] with this process's server id,
//! its listen address, the gateway's address, and the addresses of its peer
//! nodes.  The function builds a TCP-backed [`Network`], attaches a
//! *remote* [`Directory`] handle (control-plane queries become
//! `DirReq`/`DirAck` RPCs to the gateway, see [`crate::Directory`]), spawns
//! the ordinary node machinery — the same receive loop and sharded worker
//! pool used in-process — and blocks until the gateway sends `Shutdown`.

use crate::directory::Directory;
use crate::message::{gateway_id, ClusterMessage};
use crate::node::spawn_node;
use aeon_net::{Network, TcpTransport, TcpTransportConfig};
use aeon_runtime::ExecutorConfig;
use aeon_types::{Result, ServerId};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Everything a node process needs to join a cluster mesh.
#[derive(Debug, Clone)]
pub struct NodeProcessConfig {
    /// This node's server id (must match the gateway's peer map).
    pub id: ServerId,
    /// Address this node's transport listens on.
    pub listen: SocketAddr,
    /// Address of the gateway's transport.
    pub gateway: SocketAddr,
    /// Peer node id → address, for direct node-to-node traffic (remote
    /// calls, migration state transfer).  The gateway must not appear here.
    pub peers: BTreeMap<ServerId, SocketAddr>,
    /// Worker-pool configuration for this node.
    pub executor: ExecutorConfig,
}

impl NodeProcessConfig {
    /// A config with default executor settings and no peers.
    pub fn new(id: ServerId, listen: SocketAddr, gateway: SocketAddr) -> Self {
        Self {
            id,
            listen,
            gateway,
            peers: BTreeMap::new(),
            executor: ExecutorConfig::default(),
        }
    }

    /// Adds a peer node.
    #[must_use]
    pub fn peer(mut self, id: ServerId, addr: SocketAddr) -> Self {
        self.peers.insert(id, addr);
        self
    }
}

/// Runs one cluster server node in this process until the gateway shuts it
/// down.  `register` is called with the node's (remote) directory handle
/// before any message is processed — use it to register the contextclass
/// factories this node needs to host contexts
/// ([`Directory::register_factory`]).
///
/// # Errors
///
/// Returns an error when the listen address cannot be bound.
pub fn run_node<F>(config: NodeProcessConfig, register: F) -> Result<()>
where
    F: FnOnce(&Directory),
{
    let mut transport_config = TcpTransportConfig::new(config.listen);
    for (id, addr) in &config.peers {
        transport_config = transport_config.peer(*id, *addr);
    }
    transport_config = transport_config.peer(gateway_id(), config.gateway);
    let transport = TcpTransport::bind(transport_config)?;
    let network: Network<ClusterMessage> = Network::with_transport(Arc::new(transport));
    let directory = Arc::new(Directory::remote(config.id, network.clone()));
    register(&directory);
    let mut handle = spawn_node(config.id, directory, &network, config.executor);
    if let Some(thread) = handle.thread.take() {
        let _ = thread.join();
    }
    network.shutdown_transport();
    Ok(())
}
