//! Byte representation of [`ClusterMessage`] for socket transports.
//!
//! Every protocol message is lowered to an [`aeon_types::Value`] (a tagged
//! positional list per variant) and encoded with the workspace codec
//! (`aeon_types::codec`), so the TCP transport ships exactly the same data
//! model that snapshots and migration payloads already use.  The lowering
//! is total: every variant — including structured [`AeonError`]s inside
//! `Result` fields — survives a round trip bit-for-bit, which is what lets
//! a cluster run as N OS processes with no semantic drift from the
//! in-process channel deployment.

use crate::message::{ClusterMessage, DirOp, DirReply, EventDescriptor, FreezeMember, NodeMetrics};
use aeon_net::WireMessage;
use aeon_runtime::SubEvent;
use aeon_types::{
    codec, AccessMode, AeonError, Args, ClientId, ContextId, EventId, Result, ServerId, Value,
};

/// Bytes of the TCP frame header (`u32` length + `u32` from + `u32` to).
const FRAME_OVERHEAD: u64 = 12;

/// Encoded size of `message` on the wire, including the frame header.  The
/// channel transport uses this as its sizer so `NetworkStats` byte counters
/// agree between channel and TCP runs of the same workload.
pub(crate) fn message_wire_len(message: &ClusterMessage) -> u64 {
    FRAME_OVERHEAD + codec::encoded_len(&to_value(message)) as u64
}

impl WireMessage for ClusterMessage {
    fn encode_wire(&self) -> Result<Vec<u8>> {
        Ok(codec::encode(&to_value(self)).to_vec())
    }

    fn decode_wire(bytes: &[u8]) -> Result<Self> {
        from_value(codec::decode(bytes)?)
    }
}

// -- encoding ---------------------------------------------------------------

fn tagged(tag: &str, mut fields: Vec<Value>) -> Value {
    let mut items = Vec::with_capacity(fields.len() + 1);
    items.push(Value::Str(tag.to_string()));
    items.append(&mut fields);
    Value::List(items)
}

fn vu64(x: u64) -> Value {
    // Bit-exact through i64: ids and correlation tokens may use bit 63.
    Value::Int(x as i64)
}

fn vsrv(s: ServerId) -> Value {
    vu64(u64::from(s.raw()))
}

fn vctx(c: ContextId) -> Value {
    Value::ContextRef(c)
}

fn vevt(e: EventId) -> Value {
    vu64(e.raw())
}

fn vmode(m: AccessMode) -> Value {
    Value::Bool(m.is_read_only())
}

fn vargs(a: &Args) -> Value {
    Value::List(a.iter().cloned().collect())
}

fn vopt(inner: Option<Value>) -> Value {
    Value::List(inner.into_iter().collect())
}

fn vclient(c: Option<ClientId>) -> Value {
    vopt(c.map(|c| vu64(c.raw())))
}

fn vresult<T>(r: &Result<T>, enc: impl FnOnce(&T) -> Value) -> Value {
    match r {
        Ok(v) => Value::List(vec![Value::Bool(true), enc(v)]),
        Err(e) => Value::List(vec![Value::Bool(false), verr(e)]),
    }
}

fn verr(e: &AeonError) -> Value {
    match e {
        AeonError::ContextNotFound(c) => tagged("ContextNotFound", vec![vctx(*c)]),
        AeonError::ServerNotFound(s) => tagged("ServerNotFound", vec![vsrv(*s)]),
        AeonError::EventNotFound(ev) => tagged("EventNotFound", vec![vevt(*ev)]),
        AeonError::CycleDetected { from, to } => {
            tagged("CycleDetected", vec![vctx(*from), vctx(*to)])
        }
        AeonError::ClassCycleDetected { description } => {
            tagged("ClassCycleDetected", vec![Value::Str(description.clone())])
        }
        AeonError::OwnershipViolation {
            caller,
            callee,
            detail,
        } => tagged(
            "OwnershipViolation",
            vec![
                vctx(*caller),
                vctx(*callee),
                vopt(detail.clone().map(Value::Str)),
            ],
        ),
        AeonError::AnalysisRejected { errors, report } => tagged(
            "AnalysisRejected",
            vec![vu64(*errors as u64), Value::Str(report.clone())],
        ),
        AeonError::ReadOnlyViolation { context, method } => tagged(
            "ReadOnlyViolation",
            vec![vctx(*context), Value::Str(method.clone())],
        ),
        AeonError::UnknownMethod { class, method } => tagged(
            "UnknownMethod",
            vec![Value::Str(class.clone()), Value::Str(method.clone())],
        ),
        AeonError::BadArguments { method, reason } => tagged(
            "BadArguments",
            vec![Value::Str(method.clone()), Value::Str(reason.clone())],
        ),
        AeonError::Application(msg) => tagged("Application", vec![Value::Str(msg.clone())]),
        AeonError::Panicked { reason } => tagged("Panicked", vec![Value::Str(reason.clone())]),
        AeonError::MigrationInProgress(c) => tagged("MigrationInProgress", vec![vctx(*c)]),
        AeonError::MigrationFailed { context, reason } => tagged(
            "MigrationFailed",
            vec![vctx(*context), Value::Str(reason.clone())],
        ),
        AeonError::SnapshotFailed { context, reason } => tagged(
            "SnapshotFailed",
            vec![vctx(*context), Value::Str(reason.clone())],
        ),
        AeonError::RuntimeShutdown => tagged("RuntimeShutdown", vec![]),
        AeonError::Storage(msg) => tagged("Storage", vec![Value::Str(msg.clone())]),
        AeonError::EventAborted { event, reason } => tagged(
            "EventAborted",
            vec![vevt(*event), Value::Str(reason.clone())],
        ),
        AeonError::SendQueueFull { peer } => tagged("SendQueueFull", vec![vsrv(*peer)]),
        AeonError::Codec(msg) => tagged("Codec", vec![Value::Str(msg.clone())]),
        AeonError::Config(msg) => tagged("Config", vec![Value::Str(msg.clone())]),
        AeonError::Internal(msg) => tagged("Internal", vec![Value::Str(msg.clone())]),
        // `AeonError` is non_exhaustive: lower unknown future variants to a
        // displayable Internal rather than failing the whole message.
        other => tagged("Internal", vec![Value::Str(other.to_string())]),
    }
}

fn vdesc(e: &EventDescriptor) -> Value {
    Value::List(vec![
        vevt(e.id),
        vclient(e.client),
        vu64(e.corr),
        vctx(e.target),
        Value::Str(e.method.clone()),
        vargs(&e.args),
        vmode(e.mode),
    ])
}

fn vsub(s: &SubEvent) -> Value {
    Value::List(vec![
        vctx(s.target),
        Value::Str(s.method.clone()),
        vargs(&s.args),
        vmode(s.mode),
    ])
}

fn vmember(m: &FreezeMember) -> Value {
    Value::List(vec![vctx(m.context), vopt(m.restore.clone())])
}

fn vmetrics(m: &NodeMetrics) -> Value {
    Value::List(vec![
        vsrv(m.server),
        vu64(m.context_count as u64),
        vu64(m.queue_depth),
        vu64(m.events_executed),
        vu64(m.exec_micros),
        vhist(&m.latency),
    ])
}

/// Histograms ship sparsely: summary scalars plus `(bucket, count)` pairs
/// for the non-empty buckets only, so an idle node's report stays small.
fn vhist(h: &aeon_types::LatencyHistogram) -> Value {
    let buckets: Vec<Value> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(i, n)| Value::List(vec![vu64(i as u64), vu64(*n)]))
        .collect();
    Value::List(vec![
        vu64(h.count),
        vu64(h.total_micros),
        vu64(h.min_micros),
        vu64(h.max_micros),
        Value::List(buckets),
    ])
}

fn vdirop(op: &DirOp) -> Value {
    match op {
        DirOp::PlacementOf(c) => tagged("PlacementOf", vec![vctx(*c)]),
        DirOp::SetPlacement(c, s) => tagged("SetPlacement", vec![vctx(*c), vsrv(*s)]),
        DirOp::MayCall(a, b) => tagged("MayCall", vec![vctx(*a), vctx(*b)]),
        DirOp::ClassOf(c) => tagged("ClassOf", vec![vctx(*c)]),
        DirOp::ChildrenOf { parent, class } => tagged(
            "ChildrenOf",
            vec![vctx(*parent), vopt(class.clone().map(Value::Str))],
        ),
        DirOp::AddEdge(a, b) => tagged("AddEdge", vec![vctx(*a), vctx(*b)]),
        DirOp::RemoveEdge(a, b) => tagged("RemoveEdge", vec![vctx(*a), vctx(*b)]),
        DirOp::CreateOwned { owner, class } => {
            tagged("CreateOwned", vec![vctx(*owner), Value::Str(class.clone())])
        }
    }
}

fn vdirreply(r: &DirReply) -> Value {
    match r {
        DirReply::Unit => tagged("Unit", vec![]),
        DirReply::Flag(b) => tagged("Flag", vec![Value::Bool(*b)]),
        DirReply::Server(s) => tagged("Server", vec![vsrv(*s)]),
        DirReply::Context(c) => tagged("Context", vec![vctx(*c)]),
        DirReply::Contexts(cs) => tagged(
            "Contexts",
            vec![Value::List(cs.iter().copied().map(vctx).collect())],
        ),
        DirReply::Class(s) => tagged("Class", vec![Value::Str(s.clone())]),
    }
}

fn to_value(message: &ClusterMessage) -> Value {
    match message {
        ClusterMessage::Host {
            corr,
            context,
            class,
            state,
            escrow,
        } => tagged(
            "Host",
            vec![
                vu64(*corr),
                vctx(*context),
                Value::Str(class.clone()),
                state.clone(),
                vu64(*escrow),
            ],
        ),
        ClusterMessage::HostAck {
            corr,
            context,
            result,
        } => tagged(
            "HostAck",
            vec![
                vu64(*corr),
                vctx(*context),
                vresult(result, |()| Value::Null),
            ],
        ),
        ClusterMessage::DirReq { corr, from, op } => {
            tagged("DirReq", vec![vu64(*corr), vsrv(*from), vdirop(op)])
        }
        ClusterMessage::DirAck { corr, reply } => {
            tagged("DirAck", vec![vu64(*corr), vresult(reply, vdirreply)])
        }
        ClusterMessage::Act { event, sequencer } => {
            tagged("Act", vec![vdesc(event), vctx(*sequencer)])
        }
        ClusterMessage::Exec { event, sequencer } => tagged(
            "Exec",
            vec![
                vdesc(event),
                vopt(sequencer.map(|(s, c)| Value::List(vec![vsrv(s), vctx(c)]))),
            ],
        ),
        ClusterMessage::Call {
            event,
            mode,
            client,
            caller,
            target,
            method,
            args,
            reply_to,
            corr,
        } => tagged(
            "Call",
            vec![
                vevt(*event),
                vmode(*mode),
                vclient(*client),
                vctx(*caller),
                vctx(*target),
                Value::Str(method.clone()),
                vargs(args),
                vsrv(*reply_to),
                vu64(*corr),
            ],
        ),
        ClusterMessage::CallReply {
            corr,
            result,
            participants,
            sub_events,
        } => tagged(
            "CallReply",
            vec![
                vu64(*corr),
                vresult(result, Clone::clone),
                Value::List(participants.iter().copied().map(vsrv).collect()),
                Value::List(sub_events.iter().map(vsub).collect()),
            ],
        ),
        ClusterMessage::Release { event } => tagged("Release", vec![vevt(*event)]),
        ClusterMessage::Done {
            corr,
            event,
            result,
            sub_events,
        } => tagged(
            "Done",
            vec![
                vu64(*corr),
                vevt(*event),
                vresult(result, Clone::clone),
                Value::List(sub_events.iter().map(vsub).collect()),
            ],
        ),
        ClusterMessage::Prepare { corr, context } => {
            tagged("Prepare", vec![vu64(*corr), vctx(*context)])
        }
        ClusterMessage::PrepareAck { corr, context } => {
            tagged("PrepareAck", vec![vu64(*corr), vctx(*context)])
        }
        ClusterMessage::Stop { corr, context, to } => {
            tagged("Stop", vec![vu64(*corr), vctx(*context), vsrv(*to)])
        }
        ClusterMessage::StopAck { corr, context } => {
            tagged("StopAck", vec![vu64(*corr), vctx(*context)])
        }
        ClusterMessage::Migrate { corr, context, to } => {
            tagged("Migrate", vec![vu64(*corr), vctx(*context), vsrv(*to)])
        }
        ClusterMessage::Install {
            corr,
            context,
            class,
            state,
            from,
        } => tagged(
            "Install",
            vec![
                vu64(*corr),
                vctx(*context),
                Value::Str(class.clone()),
                state.clone(),
                vsrv(*from),
            ],
        ),
        ClusterMessage::InstallAck {
            corr,
            context,
            result,
        } => tagged(
            "InstallAck",
            vec![vu64(*corr), vctx(*context), vresult(result, |n| vu64(*n))],
        ),
        ClusterMessage::SnapshotReq {
            corr,
            context,
            event,
        } => tagged(
            "SnapshotReq",
            vec![vu64(*corr), vctx(*context), vevt(*event)],
        ),
        ClusterMessage::SnapshotAck {
            corr,
            context,
            result,
        } => tagged(
            "SnapshotAck",
            vec![
                vu64(*corr),
                vctx(*context),
                vresult(result, |(class, state)| {
                    Value::List(vec![Value::Str(class.clone()), state.clone()])
                }),
            ],
        ),
        ClusterMessage::FreezeReq {
            corr,
            freeze,
            members,
            capture,
        } => tagged(
            "FreezeReq",
            vec![
                vu64(*corr),
                vevt(*freeze),
                Value::List(members.iter().map(vmember).collect()),
                Value::Bool(*capture),
            ],
        ),
        ClusterMessage::FreezeAck { corr, result } => tagged(
            "FreezeAck",
            vec![
                vu64(*corr),
                vresult(result, |triples| {
                    Value::List(
                        triples
                            .iter()
                            .map(|(c, class, state)| {
                                Value::List(vec![
                                    vctx(*c),
                                    Value::Str(class.clone()),
                                    state.clone(),
                                ])
                            })
                            .collect(),
                    )
                }),
            ],
        ),
        ClusterMessage::ThawReq { freeze } => tagged("ThawReq", vec![vevt(*freeze)]),
        ClusterMessage::MetricsReq { corr } => tagged("MetricsReq", vec![vu64(*corr)]),
        ClusterMessage::MetricsAck { corr, metrics } => {
            tagged("MetricsAck", vec![vu64(*corr), vmetrics(metrics)])
        }
        ClusterMessage::Shutdown => tagged("Shutdown", vec![]),
    }
}

// -- decoding ---------------------------------------------------------------

fn bad(msg: impl std::fmt::Display) -> AeonError {
    AeonError::Codec(format!("wire: {msg}"))
}

/// Positional cursor over an encoded variant's field list.
struct Fields {
    items: std::vec::IntoIter<Value>,
}

impl Fields {
    fn of(value: Value) -> Result<Self> {
        match value {
            Value::List(items) => Ok(Self {
                items: items.into_iter(),
            }),
            other => Err(bad(format!("expected list, got {other:?}"))),
        }
    }

    fn next(&mut self) -> Result<Value> {
        self.items.next().ok_or_else(|| bad("truncated field list"))
    }

    fn u64(&mut self) -> Result<u64> {
        match self.next()? {
            Value::Int(i) => Ok(i as u64),
            other => Err(bad(format!("expected int, got {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()? {
            Value::Str(s) => Ok(s),
            other => Err(bad(format!("expected string, got {other:?}"))),
        }
    }

    fn bool(&mut self) -> Result<bool> {
        match self.next()? {
            Value::Bool(b) => Ok(b),
            other => Err(bad(format!("expected bool, got {other:?}"))),
        }
    }

    fn ctx(&mut self) -> Result<ContextId> {
        match self.next()? {
            Value::ContextRef(c) => Ok(c),
            other => Err(bad(format!("expected context ref, got {other:?}"))),
        }
    }

    fn srv(&mut self) -> Result<ServerId> {
        Ok(ServerId::new(self.u64()? as u32))
    }

    fn evt(&mut self) -> Result<EventId> {
        Ok(EventId::new(self.u64()?))
    }

    fn mode(&mut self) -> Result<AccessMode> {
        Ok(if self.bool()? {
            AccessMode::ReadOnly
        } else {
            AccessMode::Exclusive
        })
    }

    fn args(&mut self) -> Result<Args> {
        match self.next()? {
            Value::List(items) => Ok(Args::new(items)),
            other => Err(bad(format!("expected args list, got {other:?}"))),
        }
    }

    fn opt(&mut self) -> Result<Option<Value>> {
        match self.next()? {
            Value::List(mut items) => match items.len() {
                0 => Ok(None),
                1 => Ok(items.pop()),
                n => Err(bad(format!("option cell with {n} items"))),
            },
            other => Err(bad(format!("expected option cell, got {other:?}"))),
        }
    }

    fn list(&mut self) -> Result<Vec<Value>> {
        match self.next()? {
            Value::List(items) => Ok(items),
            other => Err(bad(format!("expected list, got {other:?}"))),
        }
    }

    fn done(mut self) -> Result<()> {
        match self.items.next() {
            None => Ok(()),
            Some(extra) => Err(bad(format!("trailing field {extra:?}"))),
        }
    }
}

/// Splits a tagged list into its tag and remaining fields.
fn untag(value: Value) -> Result<(String, Fields)> {
    let mut fields = Fields::of(value)?;
    let tag = fields.string()?;
    Ok((tag, fields))
}

fn dresult<T>(value: Value, dec: impl FnOnce(Value) -> Result<T>) -> Result<Result<T>> {
    let mut fields = Fields::of(value)?;
    let ok = fields.bool()?;
    let payload = fields.next()?;
    fields.done()?;
    if ok {
        Ok(Ok(dec(payload)?))
    } else {
        Ok(Err(derr(payload)?))
    }
}

fn derr(value: Value) -> Result<AeonError> {
    let (tag, mut f) = untag(value)?;
    let err = match tag.as_str() {
        "ContextNotFound" => AeonError::ContextNotFound(f.ctx()?),
        "ServerNotFound" => AeonError::ServerNotFound(f.srv()?),
        "EventNotFound" => AeonError::EventNotFound(f.evt()?),
        "CycleDetected" => AeonError::CycleDetected {
            from: f.ctx()?,
            to: f.ctx()?,
        },
        "ClassCycleDetected" => AeonError::ClassCycleDetected {
            description: f.string()?,
        },
        "OwnershipViolation" => AeonError::OwnershipViolation {
            caller: f.ctx()?,
            callee: f.ctx()?,
            detail: match f.opt()? {
                None => None,
                Some(Value::Str(s)) => Some(s),
                Some(other) => return Err(bad(format!("expected detail string, got {other:?}"))),
            },
        },
        "AnalysisRejected" => AeonError::AnalysisRejected {
            errors: f.u64()? as usize,
            report: f.string()?,
        },
        "ReadOnlyViolation" => AeonError::ReadOnlyViolation {
            context: f.ctx()?,
            method: f.string()?,
        },
        "UnknownMethod" => AeonError::UnknownMethod {
            class: f.string()?,
            method: f.string()?,
        },
        "BadArguments" => AeonError::BadArguments {
            method: f.string()?,
            reason: f.string()?,
        },
        "Application" => AeonError::Application(f.string()?),
        "Panicked" => AeonError::Panicked {
            reason: f.string()?,
        },
        "MigrationInProgress" => AeonError::MigrationInProgress(f.ctx()?),
        "MigrationFailed" => AeonError::MigrationFailed {
            context: f.ctx()?,
            reason: f.string()?,
        },
        "SnapshotFailed" => AeonError::SnapshotFailed {
            context: f.ctx()?,
            reason: f.string()?,
        },
        "RuntimeShutdown" => AeonError::RuntimeShutdown,
        "Storage" => AeonError::Storage(f.string()?),
        "EventAborted" => AeonError::EventAborted {
            event: f.evt()?,
            reason: f.string()?,
        },
        "SendQueueFull" => AeonError::SendQueueFull { peer: f.srv()? },
        "Codec" => AeonError::Codec(f.string()?),
        "Config" => AeonError::Config(f.string()?),
        "Internal" => AeonError::Internal(f.string()?),
        other => return Err(bad(format!("unknown error kind {other}"))),
    };
    f.done()?;
    Ok(err)
}

fn dclient(value: Option<Value>) -> Result<Option<ClientId>> {
    match value {
        None => Ok(None),
        Some(Value::Int(i)) => Ok(Some(ClientId::new(i as u64))),
        Some(other) => Err(bad(format!("expected client id, got {other:?}"))),
    }
}

fn ddesc(value: Value) -> Result<EventDescriptor> {
    let mut f = Fields::of(value)?;
    let desc = EventDescriptor {
        id: f.evt()?,
        client: dclient(f.opt()?)?,
        corr: f.u64()?,
        target: f.ctx()?,
        method: f.string()?,
        args: f.args()?,
        mode: f.mode()?,
    };
    f.done()?;
    Ok(desc)
}

fn dsub(value: Value) -> Result<SubEvent> {
    let mut f = Fields::of(value)?;
    let sub = SubEvent {
        target: f.ctx()?,
        method: f.string()?,
        args: f.args()?,
        mode: f.mode()?,
    };
    f.done()?;
    Ok(sub)
}

fn dmember(value: Value) -> Result<FreezeMember> {
    let mut f = Fields::of(value)?;
    let member = FreezeMember {
        context: f.ctx()?,
        restore: f.opt()?,
    };
    f.done()?;
    Ok(member)
}

fn dmetrics(value: Value) -> Result<NodeMetrics> {
    let mut f = Fields::of(value)?;
    let metrics = NodeMetrics {
        server: f.srv()?,
        context_count: f.u64()? as usize,
        queue_depth: f.u64()?,
        events_executed: f.u64()?,
        exec_micros: f.u64()?,
        latency: dhist(f.next()?)?,
    };
    f.done()?;
    Ok(metrics)
}

fn dhist(value: Value) -> Result<aeon_types::LatencyHistogram> {
    let mut f = Fields::of(value)?;
    let mut hist = aeon_types::LatencyHistogram {
        count: f.u64()?,
        total_micros: f.u64()?,
        min_micros: f.u64()?,
        max_micros: f.u64()?,
        ..Default::default()
    };
    match f.next()? {
        Value::List(pairs) => {
            for pair in pairs {
                let mut p = Fields::of(pair)?;
                let bucket = p.u64()? as usize;
                let n = p.u64()?;
                p.done()?;
                if bucket >= hist.buckets.len() {
                    return Err(bad(format!("latency bucket {bucket} out of range")));
                }
                hist.buckets[bucket] = n;
            }
        }
        other => return Err(bad(format!("expected bucket list, got {other:?}"))),
    }
    f.done()?;
    Ok(hist)
}

fn ddirop(value: Value) -> Result<DirOp> {
    let (tag, mut f) = untag(value)?;
    let op = match tag.as_str() {
        "PlacementOf" => DirOp::PlacementOf(f.ctx()?),
        "SetPlacement" => DirOp::SetPlacement(f.ctx()?, f.srv()?),
        "MayCall" => DirOp::MayCall(f.ctx()?, f.ctx()?),
        "ClassOf" => DirOp::ClassOf(f.ctx()?),
        "ChildrenOf" => DirOp::ChildrenOf {
            parent: f.ctx()?,
            class: match f.opt()? {
                None => None,
                Some(Value::Str(s)) => Some(s),
                Some(other) => return Err(bad(format!("expected class name, got {other:?}"))),
            },
        },
        "AddEdge" => DirOp::AddEdge(f.ctx()?, f.ctx()?),
        "RemoveEdge" => DirOp::RemoveEdge(f.ctx()?, f.ctx()?),
        "CreateOwned" => DirOp::CreateOwned {
            owner: f.ctx()?,
            class: f.string()?,
        },
        other => return Err(bad(format!("unknown dir op {other}"))),
    };
    f.done()?;
    Ok(op)
}

fn ddirreply(value: Value) -> Result<DirReply> {
    let (tag, mut f) = untag(value)?;
    let reply = match tag.as_str() {
        "Unit" => DirReply::Unit,
        "Flag" => DirReply::Flag(f.bool()?),
        "Server" => DirReply::Server(f.srv()?),
        "Context" => DirReply::Context(f.ctx()?),
        "Contexts" => {
            let items = f.list()?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::ContextRef(c) => out.push(c),
                    other => return Err(bad(format!("expected context ref, got {other:?}"))),
                }
            }
            DirReply::Contexts(out)
        }
        "Class" => DirReply::Class(f.string()?),
        other => return Err(bad(format!("unknown dir reply {other}"))),
    };
    f.done()?;
    Ok(reply)
}

fn dsrv_list(items: Vec<Value>) -> Result<Vec<ServerId>> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Int(i) => out.push(ServerId::new(i as u32)),
            other => return Err(bad(format!("expected server id, got {other:?}"))),
        }
    }
    Ok(out)
}

fn from_value(value: Value) -> Result<ClusterMessage> {
    let (tag, mut f) = untag(value)?;
    let message = match tag.as_str() {
        "Host" => ClusterMessage::Host {
            corr: f.u64()?,
            context: f.ctx()?,
            class: f.string()?,
            state: f.next()?,
            escrow: f.u64()?,
        },
        "HostAck" => ClusterMessage::HostAck {
            corr: f.u64()?,
            context: f.ctx()?,
            result: dresult(f.next()?, |_| Ok(()))?,
        },
        "DirReq" => ClusterMessage::DirReq {
            corr: f.u64()?,
            from: f.srv()?,
            op: ddirop(f.next()?)?,
        },
        "DirAck" => ClusterMessage::DirAck {
            corr: f.u64()?,
            reply: dresult(f.next()?, ddirreply)?,
        },
        "Act" => ClusterMessage::Act {
            event: ddesc(f.next()?)?,
            sequencer: f.ctx()?,
        },
        "Exec" => ClusterMessage::Exec {
            event: ddesc(f.next()?)?,
            sequencer: match f.opt()? {
                None => None,
                Some(cell) => {
                    let mut pair = Fields::of(cell)?;
                    let sequencer = (pair.srv()?, pair.ctx()?);
                    pair.done()?;
                    Some(sequencer)
                }
            },
        },
        "Call" => ClusterMessage::Call {
            event: f.evt()?,
            mode: f.mode()?,
            client: dclient(f.opt()?)?,
            caller: f.ctx()?,
            target: f.ctx()?,
            method: f.string()?,
            args: f.args()?,
            reply_to: f.srv()?,
            corr: f.u64()?,
        },
        "CallReply" => ClusterMessage::CallReply {
            corr: f.u64()?,
            result: dresult(f.next()?, Ok)?,
            participants: dsrv_list(f.list()?)?,
            sub_events: f.list()?.into_iter().map(dsub).collect::<Result<_>>()?,
        },
        "Release" => ClusterMessage::Release { event: f.evt()? },
        "Done" => ClusterMessage::Done {
            corr: f.u64()?,
            event: f.evt()?,
            result: dresult(f.next()?, Ok)?,
            sub_events: f.list()?.into_iter().map(dsub).collect::<Result<_>>()?,
        },
        "Prepare" => ClusterMessage::Prepare {
            corr: f.u64()?,
            context: f.ctx()?,
        },
        "PrepareAck" => ClusterMessage::PrepareAck {
            corr: f.u64()?,
            context: f.ctx()?,
        },
        "Stop" => ClusterMessage::Stop {
            corr: f.u64()?,
            context: f.ctx()?,
            to: f.srv()?,
        },
        "StopAck" => ClusterMessage::StopAck {
            corr: f.u64()?,
            context: f.ctx()?,
        },
        "Migrate" => ClusterMessage::Migrate {
            corr: f.u64()?,
            context: f.ctx()?,
            to: f.srv()?,
        },
        "Install" => ClusterMessage::Install {
            corr: f.u64()?,
            context: f.ctx()?,
            class: f.string()?,
            state: f.next()?,
            from: f.srv()?,
        },
        "InstallAck" => ClusterMessage::InstallAck {
            corr: f.u64()?,
            context: f.ctx()?,
            result: dresult(f.next()?, |v| match v {
                Value::Int(i) => Ok(i as u64),
                other => Err(bad(format!("expected byte count, got {other:?}"))),
            })?,
        },
        "SnapshotReq" => ClusterMessage::SnapshotReq {
            corr: f.u64()?,
            context: f.ctx()?,
            event: f.evt()?,
        },
        "SnapshotAck" => ClusterMessage::SnapshotAck {
            corr: f.u64()?,
            context: f.ctx()?,
            result: dresult(f.next()?, |v| {
                let mut pair = Fields::of(v)?;
                let class = pair.string()?;
                let state = pair.next()?;
                pair.done()?;
                Ok((class, state))
            })?,
        },
        "FreezeReq" => ClusterMessage::FreezeReq {
            corr: f.u64()?,
            freeze: f.evt()?,
            members: f.list()?.into_iter().map(dmember).collect::<Result<_>>()?,
            capture: f.bool()?,
        },
        "FreezeAck" => ClusterMessage::FreezeAck {
            corr: f.u64()?,
            result: dresult(f.next()?, |v| {
                let Value::List(items) = v else {
                    return Err(bad("expected capture list"));
                };
                items
                    .into_iter()
                    .map(|item| {
                        let mut triple = Fields::of(item)?;
                        let out = (triple.ctx()?, triple.string()?, triple.next()?);
                        triple.done()?;
                        Ok(out)
                    })
                    .collect::<Result<_>>()
            })?,
        },
        "ThawReq" => ClusterMessage::ThawReq { freeze: f.evt()? },
        "MetricsReq" => ClusterMessage::MetricsReq { corr: f.u64()? },
        "MetricsAck" => ClusterMessage::MetricsAck {
            corr: f.u64()?,
            metrics: Box::new(dmetrics(f.next()?)?),
        },
        "Shutdown" => ClusterMessage::Shutdown,
        other => return Err(bad(format!("unknown message tag {other}"))),
    };
    f.done()?;
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{gateway_id, virtual_root};
    use proptest::prelude::*;

    fn cx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    fn srv(n: u32) -> ServerId {
        ServerId::new(n)
    }

    fn evt(n: u64) -> EventId {
        EventId::new(n)
    }

    fn desc() -> EventDescriptor {
        EventDescriptor {
            id: evt(9),
            client: Some(ClientId::new(4)),
            corr: u64::MAX - 1,
            target: cx(7),
            method: "transfer".into(),
            args: Args::new(vec![Value::from(1i64), Value::Str("x".into())]),
            mode: AccessMode::Exclusive,
        }
    }

    fn sub() -> SubEvent {
        SubEvent {
            target: cx(3),
            method: "tick".into(),
            args: Args::empty(),
            mode: AccessMode::ReadOnly,
        }
    }

    fn roundtrip(message: &ClusterMessage) {
        let bytes = message.encode_wire().expect("encode");
        let back = ClusterMessage::decode_wire(&bytes).expect("decode");
        // Field-exact comparison through the (total) Value lowering.
        assert_eq!(to_value(&back), to_value(message), "{message:?}");
        assert_eq!(
            message_wire_len(message),
            bytes.len() as u64 + FRAME_OVERHEAD,
            "sizer must match the encoder for {message:?}"
        );
    }

    #[test]
    fn every_variant_round_trips() {
        let state = Value::map([
            ("balance", Value::from(10i64)),
            ("tags", Value::List(vec![Value::Bytes(vec![0xff, 0x00])])),
        ]);
        let messages = vec![
            ClusterMessage::Host {
                corr: 1,
                context: cx(2),
                class: "Account".into(),
                state: state.clone(),
                escrow: (1 << 63) | 7,
            },
            ClusterMessage::HostAck {
                corr: 1,
                context: cx(2),
                result: Ok(()),
            },
            ClusterMessage::HostAck {
                corr: 1,
                context: cx(2),
                result: Err(AeonError::Config("no factory for Account".into())),
            },
            ClusterMessage::DirReq {
                corr: 3,
                from: srv(1),
                op: DirOp::CreateOwned {
                    owner: cx(5),
                    class: "Item".into(),
                },
            },
            ClusterMessage::DirReq {
                corr: 3,
                from: srv(1),
                op: DirOp::ChildrenOf {
                    parent: virtual_root(),
                    class: Some("Player".into()),
                },
            },
            ClusterMessage::DirAck {
                corr: 3,
                reply: Ok(DirReply::Contexts(vec![cx(1), cx(2)])),
            },
            ClusterMessage::DirAck {
                corr: 3,
                reply: Err(AeonError::ownership(cx(1), cx(2))),
            },
            ClusterMessage::Act {
                event: desc(),
                sequencer: virtual_root(),
            },
            ClusterMessage::Exec {
                event: desc(),
                sequencer: Some((gateway_id(), cx(1))),
            },
            ClusterMessage::Exec {
                event: desc(),
                sequencer: None,
            },
            ClusterMessage::Call {
                event: evt(9),
                mode: AccessMode::ReadOnly,
                client: None,
                caller: cx(1),
                target: cx(2),
                method: "peek".into(),
                args: Args::new(vec![Value::Null]),
                reply_to: srv(0),
                corr: 11,
            },
            ClusterMessage::CallReply {
                corr: 11,
                result: Ok(Value::Float(2.5)),
                participants: vec![srv(0), srv(3)],
                sub_events: vec![sub()],
            },
            ClusterMessage::CallReply {
                corr: 11,
                result: Err(AeonError::Panicked {
                    reason: "boom".into(),
                }),
                participants: vec![],
                sub_events: vec![],
            },
            ClusterMessage::Release { event: evt(9) },
            ClusterMessage::Done {
                corr: 12,
                event: evt(9),
                result: Ok(Value::Null),
                sub_events: vec![sub(), sub()],
            },
            ClusterMessage::Prepare {
                corr: 13,
                context: cx(4),
            },
            ClusterMessage::PrepareAck {
                corr: 13,
                context: cx(4),
            },
            ClusterMessage::Stop {
                corr: 14,
                context: cx(4),
                to: srv(2),
            },
            ClusterMessage::StopAck {
                corr: 14,
                context: cx(4),
            },
            ClusterMessage::Migrate {
                corr: 15,
                context: cx(4),
                to: srv(2),
            },
            ClusterMessage::Install {
                corr: 15,
                context: cx(4),
                class: "Room".into(),
                state,
                from: srv(0),
            },
            ClusterMessage::InstallAck {
                corr: 15,
                context: cx(4),
                result: Ok(321),
            },
            ClusterMessage::InstallAck {
                corr: 15,
                context: cx(4),
                result: Err(AeonError::MigrationFailed {
                    context: cx(4),
                    reason: "no factory".into(),
                }),
            },
            ClusterMessage::SnapshotReq {
                corr: 16,
                context: cx(4),
                event: evt(77),
            },
            ClusterMessage::SnapshotAck {
                corr: 16,
                context: cx(4),
                result: Ok(("Room".into(), Value::map([("n", Value::from(1i64))]))),
            },
            ClusterMessage::FreezeReq {
                corr: 17,
                freeze: evt(88),
                members: vec![
                    FreezeMember::freeze(virtual_root()),
                    FreezeMember::restore(cx(4), Value::Null),
                ],
                capture: true,
            },
            ClusterMessage::FreezeAck {
                corr: 17,
                result: Ok(vec![(cx(4), "Room".into(), Value::from(3i64))]),
            },
            ClusterMessage::FreezeAck {
                corr: 17,
                result: Err(AeonError::SnapshotFailed {
                    context: cx(4),
                    reason: "member busy".into(),
                }),
            },
            ClusterMessage::ThawReq { freeze: evt(88) },
            ClusterMessage::MetricsReq { corr: 18 },
            ClusterMessage::MetricsAck {
                corr: 18,
                metrics: Box::new(NodeMetrics {
                    server: srv(1),
                    context_count: 3,
                    queue_depth: 2,
                    events_executed: 40,
                    exec_micros: 12345,
                    latency: {
                        let mut h = aeon_types::LatencyHistogram::new();
                        h.record(120);
                        h.record(90_000);
                        h
                    },
                }),
            },
            ClusterMessage::Shutdown,
        ];
        for message in &messages {
            roundtrip(message);
        }
    }

    #[test]
    fn every_error_variant_survives_the_wire() {
        let errors = vec![
            AeonError::ContextNotFound(cx(1)),
            AeonError::ServerNotFound(srv(2)),
            AeonError::EventNotFound(evt(3)),
            AeonError::CycleDetected {
                from: cx(1),
                to: cx(2),
            },
            AeonError::ClassCycleDetected {
                description: "A -> B -> A".into(),
            },
            AeonError::ownership(cx(1), cx(2)),
            AeonError::OwnershipViolation {
                caller: cx(1),
                callee: cx(2),
                detail: Some("class Item may not own class Player".into()),
            },
            AeonError::AnalysisRejected {
                errors: 2,
                report: "AEON002 uncovered call edge\nAEON003 ro unsound".into(),
            },
            AeonError::ReadOnlyViolation {
                context: cx(1),
                method: "set".into(),
            },
            AeonError::UnknownMethod {
                class: "Room".into(),
                method: "warp".into(),
            },
            AeonError::BadArguments {
                method: "incr".into(),
                reason: "arity".into(),
            },
            AeonError::Application("declined".into()),
            AeonError::Panicked {
                reason: "oops".into(),
            },
            AeonError::MigrationInProgress(cx(1)),
            AeonError::MigrationFailed {
                context: cx(1),
                reason: "late".into(),
            },
            AeonError::SnapshotFailed {
                context: cx(1),
                reason: "torn".into(),
            },
            AeonError::RuntimeShutdown,
            AeonError::Storage("cas".into()),
            AeonError::EventAborted {
                event: evt(3),
                reason: "crash".into(),
            },
            AeonError::SendQueueFull { peer: srv(4) },
            AeonError::Codec("short".into()),
            AeonError::Config("bad".into()),
            AeonError::Internal("bug".into()),
        ];
        for err in errors {
            let message = ClusterMessage::Done {
                corr: 1,
                event: evt(1),
                result: Err(err.clone()),
                sub_events: vec![],
            };
            let bytes = message.encode_wire().unwrap();
            let ClusterMessage::Done { result, .. } = ClusterMessage::decode_wire(&bytes).unwrap()
            else {
                panic!("tag changed in flight");
            };
            assert_eq!(result.unwrap_err(), err);
        }
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_panicked() {
        assert!(ClusterMessage::decode_wire(&[]).is_err());
        assert!(ClusterMessage::decode_wire(&[0xde, 0xad, 0xbe, 0xef]).is_err());
        // A well-formed Value that is not a tagged message.
        let bytes = codec::encode(&Value::from(5i64)).to_vec();
        assert!(ClusterMessage::decode_wire(&bytes).is_err());
        // Unknown tag.
        let bytes = codec::encode(&Value::List(vec![Value::Str("Nope".into())])).to_vec();
        assert!(ClusterMessage::decode_wire(&bytes).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1.0e9f64..1.0e9).prop_map(Value::Float),
            "[a-z]{0,12}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
            any::<u64>().prop_map(|n| Value::ContextRef(ContextId::new(n))),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
                proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Value::Map),
            ]
        })
    }

    proptest! {
        #[test]
        fn random_states_and_args_round_trip(
            state in arb_value(),
            args in proptest::collection::vec(arb_value(), 0..4),
            corr in any::<u64>(),
            ctx_raw in any::<u64>(),
        ) {
            let install = ClusterMessage::Install {
                corr,
                context: ContextId::new(ctx_raw),
                class: "Fuzz".into(),
                state: state.clone(),
                from: srv(1),
            };
            roundtrip(&install);
            let call = ClusterMessage::Call {
                event: evt(corr),
                mode: AccessMode::Exclusive,
                client: Some(ClientId::new(corr)),
                caller: cx(1),
                target: ContextId::new(ctx_raw),
                method: "m".into(),
                args: Args::new(args),
                reply_to: gateway_id(),
                corr,
            };
            roundtrip(&call);
        }
    }
}
