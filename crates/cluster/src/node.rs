//! A cluster server node: hosts context state, executes its share of every
//! event, and participates in the migration protocol.
//!
//! Each node runs a receive loop on its own thread.  Messages that may block
//! (activating a lock, executing a method, migrating a context) are handed
//! to the node's sharded worker pool so the receive loop always stays
//! responsive.  The pool is fixed-size (a thread per blocking message does
//! not scale); tasks are sharded by the context they concern, and the
//! pool's spill escape hatch keeps the node live when every resident
//! worker is parked on a remote call or a lock held by a yet-unscheduled
//! message (see `aeon_runtime::executor`).

use crate::directory::Directory;
use crate::message::{
    gateway_id, virtual_root, ClusterMessage, EventDescriptor, FreezeMember, NodeMetrics,
};
use aeon_net::{Endpoint, Network};
use aeon_runtime::{
    ContextLock, ContextObject, ExecutorConfig, ExecutorStats, Invocation, InvocationHost,
    ShardedExecutor, SubEvent,
};
use aeon_types::{
    codec, AccessMode, AeonError, Args, ClientId, ContextId, EventId, Result, ServerId, Value,
};
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a node waits for the reply to a remote synchronous call before
/// aborting the event.
const CALL_TIMEOUT: Duration = Duration::from_secs(30);
/// Poll interval of the receive loop (lets the loop notice shutdown).
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// How long a node retries locating a context that the mapping says is local
/// but has not been installed yet (it may be in flight from a migration).
const INSTALL_GRACE: Duration = Duration::from_millis(2_000);

/// A context hosted by a node: its protocol lock and its application object.
pub(crate) struct HostedContext {
    pub(crate) class: String,
    pub(crate) lock: ContextLock,
    pub(crate) object: Mutex<Box<dyn ContextObject>>,
}

impl HostedContext {
    fn new(id: ContextId, class: String, object: Box<dyn ContextObject>) -> Arc<Self> {
        Arc::new(Self {
            class,
            lock: ContextLock::new(id),
            object: Mutex::new(object),
        })
    }
}

/// Payload routed back to a worker waiting on a remote call.
struct CallOutcome {
    result: Result<Value>,
    participants: Vec<ServerId>,
    sub_events: Vec<SubEvent>,
}

/// State shared between a node's receive loop and its worker threads.
pub(crate) struct NodeShared {
    pub(crate) id: ServerId,
    /// The node's worker pool: every potentially blocking message is
    /// executed here, sharded by the context it concerns.
    executor: ShardedExecutor,
    directory: Arc<Directory>,
    network: Network<ClusterMessage>,
    contexts: RwLock<HashMap<ContextId, Arc<HostedContext>>>,
    /// Sequencer lock used when an event has no concrete dominator.
    root_lock: ContextLock,
    /// Locks held on this node, per event (released on `Release`).
    held: Mutex<HashMap<EventId, Vec<ContextId>>>,
    /// Workers waiting for replies to remote calls, by correlation token.
    pending_calls: Mutex<HashMap<u64, Sender<CallOutcome>>>,
    corr: AtomicU64,
    /// Contexts migrated away: requests are forwarded to the new host
    /// (the paper's stale-context-map forwarding, §5.2).
    forwarding: RwLock<HashMap<ContextId, ServerId>>,
    /// Contexts in the stop window of a migration: requests are buffered and
    /// forwarded once the migration completes.
    stopped: Mutex<HashMap<ContextId, Vec<ClusterMessage>>>,
    /// Contexts announced by `Prepare` but not yet installed: requests are
    /// buffered and replayed after `Install`.
    installing: Mutex<HashMap<ContextId, Vec<ClusterMessage>>>,
    /// Coordinated freezes on this node, registered inline when the
    /// `FreezeReq` arrives (before its handler can even be scheduled) and
    /// removed when the handler finishes.  The flag flips to `true` when a
    /// `ThawReq` arrives while the freeze is still being established (the
    /// gateway gave up, e.g. after a control timeout): the handler then
    /// releases its own locks at the end, since no further thaw is coming
    /// for anything it acquired after the early thaw.  One mutex guards
    /// the whole lifecycle, so the thaw's check and the handler's
    /// completion cannot interleave into a stranded lock.
    active_freezes: Mutex<BTreeMap<EventId, bool>>,
    events_executed: AtomicU64,
    /// Cumulative wall-clock microseconds spent executing events whose
    /// target lives here (feeds the per-server latency metric).
    exec_micros: AtomicU64,
    /// Distribution of per-event execution times (feeds the p50/p99
    /// columns of the per-server metric report).
    exec_latency: Mutex<aeon_types::LatencyHistogram>,
    /// Times a worker slept waiting for a migrated-in context to be
    /// installed (the wait-for-install retry loop in [`RemoteExecution`]).
    install_wait_retries: AtomicU64,
    running: AtomicBool,
}

impl std::fmt::Debug for NodeShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeShared")
            .field("id", &self.id)
            .field("contexts", &self.contexts.read().len())
            .finish_non_exhaustive()
    }
}

/// Handle to a spawned node kept by the cluster gateway.
#[derive(Debug)]
pub(crate) struct NodeHandle {
    pub(crate) shared: Arc<NodeShared>,
    pub(crate) thread: Option<std::thread::JoinHandle<()>>,
}

impl NodeHandle {
    /// Number of events whose target executed on this node.
    pub(crate) fn events_executed(&self) -> u64 {
        self.shared.events_executed.load(Ordering::Relaxed)
    }

    /// Number of contexts currently installed on this node.
    pub(crate) fn hosted_contexts(&self) -> usize {
        self.shared.contexts.read().len()
    }

    /// Times a worker slept waiting for a migrated-in context.
    pub(crate) fn install_wait_retries(&self) -> u64 {
        self.shared.install_wait_retries.load(Ordering::Relaxed)
    }

    /// Counters of this node's worker pool.
    pub(crate) fn executor_stats(&self) -> ExecutorStats {
        self.shared.executor.stats()
    }

    /// Stops the node immediately without draining (models a crash).
    pub(crate) fn crash(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        // Wake everything that could keep a pool worker parked (lock
        // waiters, remote-call waiters) before joining the pool.
        self.shared.poison_all();
        self.shared.executor.shutdown();
    }
}

impl NodeShared {
    fn poison_all(&self) {
        for hosted in self.contexts.read().values() {
            hosted.lock.poison();
        }
        self.root_lock.poison();
        // Workers blocked on remote calls would otherwise sit out the full
        // call timeout; fail their calls immediately.
        let waiters: Vec<(u64, Sender<CallOutcome>)> = self.pending_calls.lock().drain().collect();
        for (_, reply) in waiters {
            let _ = reply.send(CallOutcome {
                result: Err(AeonError::RuntimeShutdown),
                participants: Vec::new(),
                sub_events: Vec::new(),
            });
        }
    }

    fn send(&self, to: ServerId, message: ClusterMessage) {
        // A failed send means the destination crashed or was removed; the
        // waiting party times out and surfaces an EventAborted error, which
        // is the behaviour we want under fault injection.
        let _ = self.network.send_from(self.id, to, message);
    }

    fn record_hold(&self, event: EventId, context: ContextId) {
        self.held.lock().entry(event).or_default().push(context);
    }

    fn release_event(&self, event: EventId) {
        let contexts = self.held.lock().remove(&event).unwrap_or_default();
        let map = self.contexts.read();
        for context in contexts.into_iter().rev() {
            if context == virtual_root() {
                self.root_lock.release(event);
            } else if let Some(hosted) = map.get(&context) {
                hosted.lock.release(event);
            }
        }
    }

    /// Reports a context access to the installed history sink, if any.
    /// Callers invoke this while holding the context's object lock so the
    /// per-context record order equals the observed access order.
    fn record_access(&self, event: EventId, context: ContextId, mode: AccessMode) {
        if let Some(sink) = self.directory.history_sink() {
            sink.accessed(event, context, mode);
        }
    }

    fn install(&self, context: ContextId, class: String, object: Box<dyn ContextObject>) {
        self.contexts
            .write()
            .insert(context, HostedContext::new(context, class, object));
    }

    fn local(&self, context: ContextId) -> Option<Arc<HostedContext>> {
        self.contexts.read().get(&context).cloned()
    }

    /// Hands a potentially blocking message handler to the worker pool,
    /// sharded by the context the message concerns so same-context
    /// messages keep FIFO dequeue affinity.
    fn offload(&self, key: ContextId, work: impl FnOnce() + Send + 'static) {
        self.executor.submit(key.raw(), work);
    }

    /// Routing decision for messages that name a context this node may no
    /// longer (or not yet) host.  Returns `true` when the message was
    /// consumed (buffered or forwarded).
    fn reroute_if_needed(&self, context: ContextId, message: ClusterMessage) -> bool {
        if let Some(next) = self.forwarding.read().get(&context) {
            self.send(*next, message);
            return true;
        }
        {
            let mut stopped = self.stopped.lock();
            if let Some(buffer) = stopped.get_mut(&context) {
                buffer.push(message);
                return true;
            }
        }
        {
            let mut installing = self.installing.lock();
            if let Some(buffer) = installing.get_mut(&context) {
                buffer.push(message);
                return true;
            }
        }
        false
    }
}

/// Spawns a node: registers it on the network, starts its worker pool and
/// its receive loop.
pub(crate) fn spawn_node(
    id: ServerId,
    directory: Arc<Directory>,
    network: &Network<ClusterMessage>,
    executor: ExecutorConfig,
) -> NodeHandle {
    let endpoint = network.register(id);
    let shared = Arc::new(NodeShared {
        id,
        executor: ShardedExecutor::new(format!("aeon-node-{id}-pool"), executor),
        directory,
        network: network.clone(),
        contexts: RwLock::new(HashMap::new()),
        root_lock: ContextLock::new(virtual_root()),
        held: Mutex::new(HashMap::new()),
        pending_calls: Mutex::new(HashMap::new()),
        corr: AtomicU64::new(1),
        forwarding: RwLock::new(HashMap::new()),
        stopped: Mutex::new(HashMap::new()),
        installing: Mutex::new(HashMap::new()),
        active_freezes: Mutex::new(BTreeMap::new()),
        events_executed: AtomicU64::new(0),
        exec_micros: AtomicU64::new(0),
        exec_latency: Mutex::new(aeon_types::LatencyHistogram::new()),
        install_wait_retries: AtomicU64::new(0),
        running: AtomicBool::new(true),
    });
    let loop_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name(format!("aeon-node-{id}"))
        .spawn(move || receive_loop(loop_shared, endpoint))
        .expect("spawning a node thread succeeds");
    NodeHandle {
        shared,
        thread: Some(thread),
    }
}

fn receive_loop(shared: Arc<NodeShared>, endpoint: Endpoint<ClusterMessage>) {
    while shared.running.load(Ordering::SeqCst) {
        let message = match endpoint.recv_timeout(POLL_INTERVAL) {
            Ok(Some(m)) => m,
            Ok(None) => continue,
            Err(_) => break,
        };
        dispatch(&shared, message);
    }
    shared.poison_all();
}

fn dispatch(shared: &Arc<NodeShared>, message: ClusterMessage) {
    match message {
        ClusterMessage::Host {
            corr,
            context,
            class,
            state,
            escrow,
        } => {
            // Same-process hand-off: the original object was parked in the
            // directory's escrow and is moved in without serialisation.
            // Across processes the token misses and the object is rebuilt
            // from its snapshotted state with the class factory.
            let object = match shared.directory.escrow_take(escrow) {
                Some(object) => Ok(object),
                None => match shared.directory.factory_for(&class) {
                    Some(factory) => Ok(factory(&state)),
                    None => Err(AeonError::Config(format!(
                        "no factory registered for contextclass {class} on this node"
                    ))),
                },
            };
            let result = object.map(|object| shared.install(context, class, object));
            shared.send(
                gateway_id(),
                ClusterMessage::HostAck {
                    corr,
                    context,
                    result,
                },
            );
        }
        ClusterMessage::DirAck { corr, reply } => {
            shared.directory.complete_dir_reply(corr, reply);
        }
        ClusterMessage::Act { event, sequencer } => {
            if sequencer != virtual_root()
                && shared.local(sequencer).is_none()
                && shared.reroute_if_needed(
                    sequencer,
                    ClusterMessage::Act {
                        event: event.clone(),
                        sequencer,
                    },
                )
            {
                return;
            }
            let worker = Arc::clone(shared);
            shared.offload(sequencer, move || handle_act(&worker, event, sequencer));
        }
        ClusterMessage::Exec { event, sequencer } => {
            if shared.local(event.target).is_none()
                && shared.reroute_if_needed(
                    event.target,
                    ClusterMessage::Exec {
                        event: event.clone(),
                        sequencer,
                    },
                )
            {
                return;
            }
            let worker = Arc::clone(shared);
            let key = event.target;
            shared.offload(key, move || handle_exec(&worker, event, sequencer));
        }
        ClusterMessage::Call {
            event,
            mode,
            client,
            caller,
            target,
            method,
            args,
            reply_to,
            corr,
        } => {
            if shared.local(target).is_none()
                && shared.reroute_if_needed(
                    target,
                    ClusterMessage::Call {
                        event,
                        mode,
                        client,
                        caller,
                        target,
                        method: method.clone(),
                        args: args.clone(),
                        reply_to,
                        corr,
                    },
                )
            {
                return;
            }
            let worker = Arc::clone(shared);
            shared.offload(target, move || {
                handle_call(
                    &worker, event, mode, client, caller, target, method, args, reply_to, corr,
                )
            });
        }
        ClusterMessage::CallReply {
            corr,
            result,
            participants,
            sub_events,
        } => {
            if let Some(reply) = shared.pending_calls.lock().remove(&corr) {
                let _ = reply.send(CallOutcome {
                    result,
                    participants,
                    sub_events,
                });
            }
        }
        ClusterMessage::Release { event } => shared.release_event(event),
        ClusterMessage::Prepare { corr, context } => {
            shared.installing.lock().entry(context).or_default();
            shared.send(gateway_id(), ClusterMessage::PrepareAck { corr, context });
        }
        ClusterMessage::Stop {
            corr,
            context,
            to: _,
        } => {
            shared.stopped.lock().entry(context).or_default();
            shared.send(gateway_id(), ClusterMessage::StopAck { corr, context });
        }
        ClusterMessage::Migrate { corr, context, to } => {
            let worker = Arc::clone(shared);
            shared.offload(context, move || handle_migrate(&worker, corr, context, to));
        }
        ClusterMessage::Install {
            corr,
            context,
            class,
            state,
            from: _,
        } => {
            let worker = Arc::clone(shared);
            shared.offload(context, move || {
                handle_install(&worker, corr, context, class, state)
            });
        }
        ClusterMessage::SnapshotReq {
            corr,
            context,
            event,
        } => {
            if shared.local(context).is_none()
                && shared.reroute_if_needed(
                    context,
                    ClusterMessage::SnapshotReq {
                        corr,
                        context,
                        event,
                    },
                )
            {
                return;
            }
            let worker = Arc::clone(shared);
            shared.offload(context, move || {
                handle_snapshot(&worker, corr, context, event)
            });
        }
        ClusterMessage::FreezeReq {
            corr,
            freeze,
            members,
            capture,
        } => {
            // Registered before the handler is queued, so a ThawReq that
            // overtakes a not-yet-started freeze still finds it and leaves
            // the release-your-own-locks marker.
            shared.active_freezes.lock().insert(freeze, false);
            let key = members.first().map(|m| m.context).unwrap_or(virtual_root());
            let worker = Arc::clone(shared);
            shared.offload(key, move || {
                handle_freeze(&worker, corr, freeze, members, capture)
            });
        }
        ClusterMessage::ThawReq { freeze } => {
            // Handled inline: releasing never blocks.  The flag is flipped
            // BEFORE releasing: locks the handler acquires after this point
            // are then released by the handler itself (it observes the
            // flag at the end), and locks acquired before are released by
            // release_event below — flipping after releasing would leave a
            // window where the handler completes in between and its
            // later-acquired locks are never released.
            if let Some(thawed) = shared.active_freezes.lock().get_mut(&freeze) {
                *thawed = true;
            }
            shared.release_event(freeze);
        }
        ClusterMessage::MetricsReq { corr } => {
            // Answered inline: the report only reads counters, it cannot
            // block, so it never competes with event execution for the pool.
            let stats = shared.executor.stats();
            shared.send(
                gateway_id(),
                ClusterMessage::MetricsAck {
                    corr,
                    metrics: Box::new(NodeMetrics {
                        server: shared.id,
                        context_count: shared.contexts.read().len(),
                        queue_depth: stats.queued,
                        events_executed: shared.events_executed.load(Ordering::Relaxed),
                        exec_micros: shared.exec_micros.load(Ordering::Relaxed),
                        latency: *shared.exec_latency.lock(),
                    }),
                },
            );
        }
        ClusterMessage::Shutdown => {
            shared.running.store(false, Ordering::SeqCst);
            shared.poison_all();
        }
        // Gateway-only messages are ignored by nodes.
        ClusterMessage::HostAck { .. }
        | ClusterMessage::DirReq { .. }
        | ClusterMessage::PrepareAck { .. }
        | ClusterMessage::StopAck { .. }
        | ClusterMessage::InstallAck { .. }
        | ClusterMessage::SnapshotAck { .. }
        | ClusterMessage::FreezeAck { .. }
        | ClusterMessage::MetricsAck { .. }
        | ClusterMessage::Done { .. } => {}
    }
}

/// Sequences the event at the dominator (`ACT`), then forwards it to the
/// target server for execution (`EXEC`).
fn handle_act(shared: &Arc<NodeShared>, event: EventDescriptor, sequencer: ContextId) {
    let activation = if sequencer == virtual_root() {
        shared.root_lock.activate(event.id, event.mode)
    } else {
        match shared.local(sequencer) {
            Some(hosted) => hosted.lock.activate(event.id, event.mode),
            None => Err(AeonError::ContextNotFound(sequencer)),
        }
    };
    if let Err(error) = activation {
        shared.send(
            gateway_id(),
            ClusterMessage::Done {
                corr: event.corr,
                event: event.id,
                result: Err(error),
                sub_events: Vec::new(),
            },
        );
        return;
    }
    shared.record_hold(event.id, sequencer);
    let target_server = shared
        .forwarding
        .read()
        .get(&event.target)
        .copied()
        .or_else(|| shared.directory.placement_of(event.target).ok());
    match target_server {
        Some(server) => {
            let exec = ClusterMessage::Exec {
                event,
                sequencer: Some((shared.id, sequencer)),
            };
            if server == shared.id {
                dispatch(shared, exec);
            } else {
                shared.send(server, exec);
            }
        }
        None => {
            shared.release_event(event.id);
            shared.send(
                gateway_id(),
                ClusterMessage::Done {
                    corr: event.corr,
                    event: event.id,
                    result: Err(AeonError::ContextNotFound(event.target)),
                    sub_events: Vec::new(),
                },
            );
        }
    }
}

/// Executes the event at its target context and completes it.
fn handle_exec(
    shared: &Arc<NodeShared>,
    event: EventDescriptor,
    sequencer: Option<(ServerId, ContextId)>,
) {
    let started = std::time::Instant::now();
    let mut exec = RemoteExecution::new(Arc::clone(shared), event.id, event.client, event.mode);
    let result = exec.run(&event);
    let RemoteExecution {
        participants,
        sub_events,
        ..
    } = exec;

    // Release locks everywhere the event touched, then locally, then at the
    // sequencer (reverse of acquisition order across the cluster).
    for server in &participants {
        if *server != shared.id {
            shared.send(*server, ClusterMessage::Release { event: event.id });
        }
    }
    shared.release_event(event.id);
    if let Some((seq_server, _)) = sequencer {
        if seq_server != shared.id {
            shared.send(seq_server, ClusterMessage::Release { event: event.id });
        }
    }
    shared.events_executed.fetch_add(1, Ordering::Relaxed);
    let elapsed_micros = started.elapsed().as_micros() as u64;
    shared
        .exec_micros
        .fetch_add(elapsed_micros, Ordering::Relaxed);
    shared.exec_latency.lock().record(elapsed_micros);
    shared.send(
        gateway_id(),
        ClusterMessage::Done {
            corr: event.corr,
            event: event.id,
            result,
            sub_events,
        },
    );
}

/// Serves a synchronous method call issued by another server on behalf of a
/// running event.
#[allow(clippy::too_many_arguments)]
fn handle_call(
    shared: &Arc<NodeShared>,
    event: EventId,
    mode: AccessMode,
    client: Option<ClientId>,
    caller: ContextId,
    target: ContextId,
    method: String,
    args: Args,
    reply_to: ServerId,
    corr: u64,
) {
    let mut exec = RemoteExecution::new(Arc::clone(shared), event, client, mode);
    // A caller equal to the target marks a top-level invocation that was
    // forwarded after a migration; there is no ownership edge to check.
    let caller = if caller == target { None } else { Some(caller) };
    let result = exec.invoke_caught(caller, target, &method, &args);
    let mut participants = exec.participants.clone();
    participants.insert(shared.id);
    shared.send(
        reply_to,
        ClusterMessage::CallReply {
            corr,
            result,
            participants: participants.into_iter().collect(),
            sub_events: exec.sub_events,
        },
    );
}

/// Serves a legacy member-at-a-time snapshot request: behaves like a brief
/// exclusive event on the context (draining in-flight events) and ships the
/// serialised state back to the gateway.  All member captures of one
/// snapshot share `event`, so an installed history sink sees them as one
/// logical read set — which is exactly how the chaos suite catches this
/// mode's torn cuts.
fn handle_snapshot(shared: &Arc<NodeShared>, corr: u64, context: ContextId, event: EventId) {
    let result = match shared.local(context) {
        Some(hosted) => match hosted.lock.activate(event, AccessMode::Exclusive) {
            Ok(()) => {
                let state = {
                    let object = hosted.object.lock();
                    shared.record_access(event, context, AccessMode::ReadOnly);
                    object.snapshot()
                };
                hosted.lock.release(event);
                Ok((hosted.class.clone(), state))
            }
            Err(error) => Err(error),
        },
        None => Err(AeonError::ContextNotFound(context)),
    };
    shared.send(
        gateway_id(),
        ClusterMessage::SnapshotAck {
            corr,
            context,
            result,
        },
    );
}

/// Establishes this node's share of a coordinated subtree freeze: every
/// member is activated exclusively by the freeze event *in request order*
/// (the gateway sends members owner-before-owned, which makes the global
/// acquisition order deadlock-free against in-flight events), its state is
/// captured and/or replaced at the frozen cut, and the locks stay held
/// until the gateway's [`ClusterMessage::ThawReq`].
fn handle_freeze(
    shared: &Arc<NodeShared>,
    corr: u64,
    freeze: EventId,
    members: Vec<FreezeMember>,
    capture: bool,
) {
    let mut entries = Vec::new();
    let outcome = (|| -> Result<()> {
        for member in &members {
            if member.context == virtual_root() {
                shared.root_lock.activate(freeze, AccessMode::Exclusive)?;
                shared.record_hold(freeze, member.context);
                continue;
            }
            let hosted = shared
                .local(member.context)
                .ok_or(AeonError::ContextNotFound(member.context))?;
            hosted.lock.activate(freeze, AccessMode::Exclusive)?;
            shared.record_hold(freeze, member.context);
            let mut object = hosted.object.lock();
            if let Some(state) = &member.restore {
                shared.record_access(freeze, member.context, AccessMode::Exclusive);
                object.restore(state);
            }
            if capture {
                shared.record_access(freeze, member.context, AccessMode::ReadOnly);
                entries.push((member.context, hosted.class.clone(), object.snapshot()));
            }
        }
        Ok(())
    })();
    let thawed = shared
        .active_freezes
        .lock()
        .remove(&freeze)
        .unwrap_or(false);
    let result = if thawed {
        // The gateway abandoned this freeze while we were establishing it;
        // whatever the thaw did not catch is released here.
        shared.release_event(freeze);
        Err(AeonError::EventAborted {
            event: freeze,
            reason: "freeze thawed before it was established".into(),
        })
    } else {
        match outcome {
            Ok(()) => Ok(entries),
            Err(error) => {
                // A member is missing or the node is shutting down: release
                // this node's own holds so nothing stays locked, then report.
                shared.release_event(freeze);
                Err(error)
            }
        }
    };
    shared.send(gateway_id(), ClusterMessage::FreezeAck { corr, result });
}

/// Migration step IV on the source server: wait for exclusive access, ship
/// the serialised state, and start forwarding.
fn handle_migrate(shared: &Arc<NodeShared>, corr: u64, context: ContextId, to: ServerId) {
    let Some(hosted) = shared.local(context) else {
        shared.send(
            gateway_id(),
            ClusterMessage::InstallAck {
                corr,
                context,
                result: Err(AeonError::ContextNotFound(context)),
            },
        );
        return;
    };
    // The migration behaves like an exclusive event on the context: it waits
    // for in-flight events to drain and keeps new ones out.
    let migration_event = EventId::new(shared.directory.next_raw());
    if let Err(error) = hosted.lock.activate(migration_event, AccessMode::Exclusive) {
        shared.send(
            gateway_id(),
            ClusterMessage::InstallAck {
                corr,
                context,
                result: Err(error),
            },
        );
        return;
    }
    let (class, state) = {
        let object = hosted.object.lock();
        (hosted.class.clone(), object.snapshot())
    };
    shared.contexts.write().remove(&context);
    // The old lock is now orphaned: anyone who cloned the hosted entry
    // before the removal (an event or a subtree freeze racing with this
    // migration) must fail fast instead of blocking forever on a lock
    // whose exclusive holder never releases — or, worse, capturing the
    // stale pre-migration state.
    hosted.lock.poison();
    shared.forwarding.write().insert(context, to);
    shared.send(
        to,
        ClusterMessage::Install {
            corr,
            context,
            class,
            state,
            from: shared.id,
        },
    );
    // Forward everything buffered during the stop window.
    let buffered = shared.stopped.lock().remove(&context).unwrap_or_default();
    for message in buffered {
        shared.send(to, message);
    }
}

/// Migration step V on the destination server: rebuild the context from its
/// serialised state and replay buffered requests.
fn handle_install(
    shared: &Arc<NodeShared>,
    corr: u64,
    context: ContextId,
    class: String,
    state: Value,
) {
    let bytes = codec::encode(&state).len() as u64;
    let result = match shared.directory.factory_for(&class) {
        Some(factory) => {
            let object = factory(&state);
            shared.install(context, class, object);
            Ok(bytes)
        }
        None => Err(AeonError::MigrationFailed {
            context,
            reason: format!("no factory registered for class {class}"),
        }),
    };
    // Replay buffered requests (they were addressed to this node already).
    let buffered = shared
        .installing
        .lock()
        .remove(&context)
        .unwrap_or_default();
    for message in buffered {
        dispatch(shared, message);
    }
    shared.send(
        gateway_id(),
        ClusterMessage::InstallAck {
            corr,
            context,
            result,
        },
    );
}

/// The distributed implementation of [`InvocationHost`]: a call to an owned
/// context either recurses locally or travels to the hosting server as a
/// [`ClusterMessage::Call`].
pub(crate) struct RemoteExecution {
    node: Arc<NodeShared>,
    event: EventId,
    client: Option<ClientId>,
    mode: AccessMode,
    call_stack: Vec<ContextId>,
    pending_async: VecDeque<(ContextId, ContextId, String, Args)>,
    /// Servers (other than this one) holding locks for the event because of
    /// calls issued here.
    participants: BTreeSet<ServerId>,
    sub_events: Vec<SubEvent>,
}

impl RemoteExecution {
    fn new(
        node: Arc<NodeShared>,
        event: EventId,
        client: Option<ClientId>,
        mode: AccessMode,
    ) -> Self {
        Self {
            node,
            event,
            client,
            mode,
            call_stack: Vec::new(),
            pending_async: VecDeque::new(),
            participants: BTreeSet::new(),
            sub_events: Vec::new(),
        }
    }

    /// Runs the top-level method of the event, then drains `async` calls.
    /// A panic anywhere in the application code fails the event instead of
    /// killing the worker (the caller still releases every lock and sends
    /// the completion).
    fn run(&mut self, event: &EventDescriptor) -> Result<Value> {
        let exec = &mut *self;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || exec.run_inner(event)))
            .unwrap_or_else(|payload| Err(AeonError::from_panic(payload)))
    }

    fn run_inner(&mut self, event: &EventDescriptor) -> Result<Value> {
        let mut result = self.invoke(None, event.target, &event.method, &event.args);
        while let Some((caller, target, method, args)) = self.pending_async.pop_front() {
            let r = self.invoke(Some(caller), target, &method, &args);
            if result.is_ok() {
                if let Err(e) = r {
                    result = Err(e);
                }
            }
        }
        result
    }

    /// Like [`RemoteExecution::invoke`], but converts an application panic
    /// into a failed call (used for calls served on behalf of a remote
    /// event, where the unwind would otherwise leak the worker).
    fn invoke_caught(
        &mut self,
        caller: Option<ContextId>,
        target: ContextId,
        method: &str,
        args: &Args,
    ) -> Result<Value> {
        let exec = &mut *self;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            exec.invoke(caller, target, method, args)
        }))
        .unwrap_or_else(|payload| Err(AeonError::from_panic(payload)))
    }

    fn locate(&self, target: ContextId) -> Result<Option<Arc<HostedContext>>> {
        if let Some(hosted) = self.node.local(target) {
            return Ok(Some(hosted));
        }
        // Not local: where does the mapping say it lives?
        let deadline = std::time::Instant::now() + INSTALL_GRACE;
        loop {
            if let Some(server) = self.node.forwarding.read().get(&target) {
                if *server != self.node.id {
                    return Ok(None);
                }
            }
            if !self.node.running.load(Ordering::SeqCst) {
                return Err(AeonError::RuntimeShutdown);
            }
            match self.node.directory.placement_of(target) {
                Ok(server) if server == self.node.id => {
                    // Mapped here but not installed yet (migration in
                    // flight); wait briefly for the Install to land.
                    if let Some(hosted) = self.node.local(target) {
                        return Ok(Some(hosted));
                    }
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(AeonError::MigrationInProgress(target));
                    }
                    // Never sleep past the deadline: a full fixed-interval
                    // nap could overshoot it and stall the worker longer
                    // than the configured grace period.
                    let nap = (deadline - now).min(Duration::from_millis(10));
                    self.node
                        .install_wait_retries
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(nap);
                }
                Ok(_) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }

    /// Invokes `method` on `target`, locally or remotely.
    fn invoke(
        &mut self,
        caller: Option<ContextId>,
        target: ContextId,
        method: &str,
        args: &Args,
    ) -> Result<Value> {
        if let Some(caller) = caller {
            if !self.node.directory.may_call(caller, target) {
                return Err(AeonError::ownership(caller, target));
            }
        }
        if self.call_stack.contains(&target) {
            return Err(AeonError::internal(format!(
                "re-entrant call into context {target} within event {}",
                self.event
            )));
        }
        match self.locate(target)? {
            Some(hosted) => {
                hosted.lock.activate(self.event, self.mode)?;
                self.node.record_hold(self.event, target);
                self.call_stack.push(target);
                let outcome = {
                    let mut object = hosted.object.lock();
                    // Recorded under the object lock, so the per-context
                    // record order equals the observed access order.
                    self.node.record_access(self.event, target, self.mode);
                    if self.mode.is_read_only() && !object.is_readonly(method) {
                        Err(AeonError::ReadOnlyViolation {
                            context: target,
                            method: method.to_string(),
                        })
                    } else {
                        let mut invocation = Invocation::new(self, target);
                        object.handle(method, args, &mut invocation)
                    }
                };
                self.call_stack.pop();
                outcome
            }
            None => self.remote_call(caller, target, method, args),
        }
    }

    fn remote_call(
        &mut self,
        caller: Option<ContextId>,
        target: ContextId,
        method: &str,
        args: &Args,
    ) -> Result<Value> {
        let server = self
            .node
            .forwarding
            .read()
            .get(&target)
            .copied()
            .map(Ok)
            .unwrap_or_else(|| self.node.directory.placement_of(target))?;
        let corr = self.node.corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.node.pending_calls.lock().insert(corr, tx);
        // Re-check liveness after registering: a crash/shutdown drains
        // `pending_calls` to wake blocked workers, and an insert that
        // races past that drain would otherwise park this worker for the
        // full call timeout (stalling the pool join).
        if !self.node.running.load(Ordering::SeqCst) {
            self.node.pending_calls.lock().remove(&corr);
            return Err(AeonError::RuntimeShutdown);
        }
        self.node.send(
            server,
            ClusterMessage::Call {
                event: self.event,
                mode: self.mode,
                client: self.client,
                caller: caller.unwrap_or(target),
                target,
                method: method.to_string(),
                args: args.clone(),
                reply_to: self.node.id,
                corr,
            },
        );
        match rx.recv_timeout(CALL_TIMEOUT) {
            Ok(outcome) => {
                self.participants.extend(outcome.participants);
                self.sub_events.extend(outcome.sub_events);
                outcome.result
            }
            Err(_) => {
                self.node.pending_calls.lock().remove(&corr);
                Err(AeonError::EventAborted {
                    event: self.event,
                    reason: format!("remote call to context {target} on {server} timed out"),
                })
            }
        }
    }
}

impl InvocationHost for RemoteExecution {
    fn event_id(&self) -> EventId {
        self.event
    }

    fn client(&self) -> Option<ClientId> {
        self.client
    }

    fn mode(&self) -> AccessMode {
        self.mode
    }

    fn call(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<Value> {
        self.invoke(Some(caller), target, method, &args)
    }

    fn call_async(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<()> {
        if !self.node.directory.may_call(caller, target) {
            return Err(AeonError::ownership(caller, target));
        }
        self.pending_async
            .push_back((caller, target, method.to_string(), args));
        Ok(())
    }

    fn dispatch_event(
        &mut self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<()> {
        self.sub_events.push(SubEvent {
            target,
            method: method.to_string(),
            args,
            mode,
        });
        Ok(())
    }

    fn create_child(
        &mut self,
        owner: ContextId,
        object: Box<dyn ContextObject>,
    ) -> Result<ContextId> {
        let class = object.class_name().to_string();
        // Control-plane half (class validation, id allocation, context and
        // edge declaration) runs at the directory authority — one RPC when
        // this node is a separate OS process.
        let id = self.node.directory.create_owned(owner, &class)?;
        // Locality: the child is hosted next to the (local) context that
        // created it, exactly like the in-process runtime; placement is
        // published only after the state is installed.
        self.node.install(id, class, object);
        self.node.directory.set_placement(id, self.node.id);
        Ok(id)
    }

    fn add_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.node.directory.add_edge(owner, owned)
    }

    fn remove_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.node.directory.remove_edge(owner, owned)
    }

    fn children(&self, parent: ContextId, class: Option<&str>) -> Result<Vec<ContextId>> {
        self.node.directory.children_of(parent, class)
    }
}
