//! Wire messages exchanged between the gateway and the server nodes.
//!
//! The cluster runs on the pluggable transport substrate of `aeon-net`;
//! every protocol step of §4 (sequencing at the dominator, execution at the
//! target, remote method calls, lock release) and §5 (the five-step
//! migration protocol) is a message here, so the distributed deployment
//! exercises the same message flow as the paper's prototype.  Every variant
//! has a byte representation (see `crate::wire`), so the same protocol runs
//! unchanged over in-process channels and over TCP between real OS
//! processes.

use aeon_runtime::SubEvent;
use aeon_types::{AccessMode, Args, ClientId, ContextId, EventId, Result, ServerId, Value};
use std::fmt;

/// The server id used by the cluster gateway (client entry point).
pub fn gateway_id() -> ServerId {
    ServerId::new(u32::MAX)
}

/// Sentinel context id standing for the *virtual root* sequencer used when a
/// target has no concrete dominator ([`aeon_ownership::Dominator::GlobalRoot`]).
pub fn virtual_root() -> ContextId {
    ContextId::new(u64::MAX)
}

/// Everything a server needs to execute one event.
#[derive(Debug, Clone)]
pub struct EventDescriptor {
    /// Unique event id.
    pub id: EventId,
    /// Client that issued the event, if any.
    pub client: Option<ClientId>,
    /// Gateway correlation token for the final [`ClusterMessage::Done`].
    pub corr: u64,
    /// Target context.
    pub target: ContextId,
    /// Method to invoke on the target.
    pub method: String,
    /// Arguments.
    pub args: Args,
    /// Exclusive or read-only.
    pub mode: AccessMode,
}

/// A server node's raw load report, shipped in a
/// [`ClusterMessage::MetricsAck`].  The gateway normalises it into the
/// backend-agnostic `aeon_types::ServerMetrics`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeMetrics {
    /// The reporting node.
    pub server: ServerId,
    /// Contexts currently installed on the node (actual state, not the
    /// mapping).
    pub context_count: usize,
    /// Tasks queued on the node's worker pool.
    pub queue_depth: u64,
    /// Events whose target executed on this node.
    pub events_executed: u64,
    /// Cumulative wall-clock microseconds spent executing those events.
    pub exec_micros: u64,
    /// Distribution of per-event execution times on this node.
    pub latency: aeon_types::LatencyHistogram,
}

/// One member of a coordinated subtree freeze
/// ([`ClusterMessage::FreezeReq`]).
#[derive(Debug, Clone)]
pub struct FreezeMember {
    /// The context (or [`virtual_root`]) to freeze.
    pub context: ContextId,
    /// When set, state to install through `ContextObject::restore` once the
    /// member is frozen (the coordinated restore path).
    pub restore: Option<Value>,
}

impl FreezeMember {
    /// A member that is only frozen (and possibly captured).
    pub fn freeze(context: ContextId) -> Self {
        Self {
            context,
            restore: None,
        }
    }

    /// A member whose state is replaced once frozen.
    pub fn restore(context: ContextId, state: Value) -> Self {
        Self {
            context,
            restore: Some(state),
        }
    }
}

/// A control-plane (directory) operation a node asks the gateway to
/// perform on its behalf, shipped in a [`ClusterMessage::DirReq`].
///
/// When gateway and node share one process the node's `Directory` handle
/// answers these directly; across processes they become a synchronous RPC
/// to the authority — the paper's "query the eManager / read the mapping
/// from cloud storage" (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub enum DirOp {
    /// Which server hosts this context?
    PlacementOf(ContextId),
    /// Record (or update) a context's placement.
    SetPlacement(ContextId, ServerId),
    /// May `caller` (transitively) call `callee`?
    MayCall(ContextId, ContextId),
    /// The contextclass of a context.
    ClassOf(ContextId),
    /// Direct children of `parent`, optionally filtered by class.
    ChildrenOf {
        /// The parent context.
        parent: ContextId,
        /// Optional class filter.
        class: Option<String>,
    },
    /// Add an ownership edge (class constraints are checked at the
    /// authority).
    AddEdge(ContextId, ContextId),
    /// Remove an ownership edge.
    RemoveEdge(ContextId, ContextId),
    /// Atomically validate class constraints, allocate an id, declare the
    /// context, and add the `owner → child` edge (the control-plane half
    /// of `create_child`; the caller installs state and placement after).
    CreateOwned {
        /// The owning context.
        owner: ContextId,
        /// Class of the new child.
        class: String,
    },
}

/// The payload of a successful [`ClusterMessage::DirAck`].
#[derive(Debug, Clone, PartialEq)]
pub enum DirReply {
    /// Nothing to report.
    Unit,
    /// A boolean answer ([`DirOp::MayCall`]).
    Flag(bool),
    /// A server id ([`DirOp::PlacementOf`]).
    Server(ServerId),
    /// A context id ([`DirOp::CreateOwned`]).
    Context(ContextId),
    /// A list of context ids ([`DirOp::ChildrenOf`]).
    Contexts(Vec<ContextId>),
    /// A class name ([`DirOp::ClassOf`]).
    Class(String),
}

/// A message of the cluster protocol.
pub enum ClusterMessage {
    /// Gateway → server: host a newly created context.
    Host {
        /// Correlation token echoed in [`ClusterMessage::HostAck`].
        corr: u64,
        /// Id of the new context.
        context: ContextId,
        /// Contextclass name.
        class: String,
        /// Snapshot of the object's initial state; a node in another
        /// process rebuilds the object from it with the class factory.
        state: Value,
        /// Escrow token: when gateway and node share a process, the
        /// original object is parked in the directory's escrow under this
        /// token and moved (not rebuilt), preserving the zero-serialisation
        /// channel semantics — and letting factory-less tests keep working.
        escrow: u64,
    },
    /// Server → gateway: the context is installed (or hosting failed, e.g.
    /// no factory is registered for the class on that node's process).
    HostAck {
        /// Correlation token.
        corr: u64,
        /// The hosted context.
        context: ContextId,
        /// Success, or why the node could not host the context.
        result: Result<()>,
    },
    /// Node → gateway: perform a control-plane operation (placement
    /// lookup, ownership edit, child creation) at the directory authority.
    DirReq {
        /// Correlation token echoed in [`ClusterMessage::DirAck`].
        corr: u64,
        /// The requesting node (where the ack is sent).
        from: ServerId,
        /// The operation.
        op: DirOp,
    },
    /// Gateway → node: the outcome of a [`ClusterMessage::DirReq`].
    DirAck {
        /// Correlation token.
        corr: u64,
        /// The operation's reply, or its error.
        reply: Result<DirReply>,
    },
    /// Gateway → dominator server: sequence the event at `sequencer` before
    /// execution (Algorithm 2's `ACT`).
    Act {
        /// The event to sequence.
        event: EventDescriptor,
        /// The dominator context (or [`virtual_root`]).
        sequencer: ContextId,
    },
    /// Sequencer (or gateway) → target server: execute the event
    /// (Algorithm 2's `EXEC`).
    Exec {
        /// The event to execute.
        event: EventDescriptor,
        /// Where the sequencer lock is held, if a separate one was taken.
        sequencer: Option<(ServerId, ContextId)>,
    },
    /// Server → server: synchronous method call on a remotely hosted
    /// context, performed on behalf of a running event.
    Call {
        /// The running event.
        event: EventId,
        /// Access mode of the running event.
        mode: AccessMode,
        /// Client that issued the event, if any.
        client: Option<ClientId>,
        /// Calling context.
        caller: ContextId,
        /// Callee context (hosted by the receiving server).
        target: ContextId,
        /// Method name.
        method: String,
        /// Arguments.
        args: Args,
        /// Where to send the [`ClusterMessage::CallReply`].
        reply_to: ServerId,
        /// Correlation token.
        corr: u64,
    },
    /// Reply to a [`ClusterMessage::Call`].
    CallReply {
        /// Correlation token of the call.
        corr: u64,
        /// Result of the callee method.
        result: Result<Value>,
        /// Servers that acquired locks for the event while serving the call
        /// (the callee's server plus any server it called in turn).
        participants: Vec<ServerId>,
        /// Sub-events dispatched while serving the call.
        sub_events: Vec<SubEvent>,
    },
    /// Target server → every participant: the event terminated, release all
    /// locks held for it.
    Release {
        /// The terminated event.
        event: EventId,
    },
    /// Target server → gateway: the event finished.
    Done {
        /// Correlation token from the [`EventDescriptor`].
        corr: u64,
        /// The event.
        event: EventId,
        /// Its result.
        result: Result<Value>,
        /// Sub-events to submit now that the creator terminated.
        sub_events: Vec<SubEvent>,
    },
    /// Migration step I: eManager/gateway → destination server.
    Prepare {
        /// Correlation token.
        corr: u64,
        /// Context about to arrive.
        context: ContextId,
    },
    /// Destination server → gateway: ready to buffer requests for `context`.
    PrepareAck {
        /// Correlation token.
        corr: u64,
        /// The context.
        context: ContextId,
    },
    /// Migration step II: gateway → source server: stop accepting events for
    /// `context`.
    Stop {
        /// Correlation token.
        corr: u64,
        /// The migrating context.
        context: ContextId,
        /// Destination (used to forward late events).
        to: ServerId,
    },
    /// Source server → gateway: no new events will be accepted.
    StopAck {
        /// Correlation token.
        corr: u64,
        /// The context.
        context: ContextId,
    },
    /// Migration steps III/IV: gateway → source server: serialise and ship
    /// the context.
    Migrate {
        /// Correlation token.
        corr: u64,
        /// The migrating context.
        context: ContextId,
        /// Destination server.
        to: ServerId,
    },
    /// Source server → destination server: the serialised context state.
    Install {
        /// Correlation token.
        corr: u64,
        /// The migrating context.
        context: ContextId,
        /// Contextclass name (selects the factory).
        class: String,
        /// Serialised state (the context's snapshot).
        state: Value,
        /// The source server.
        from: ServerId,
    },
    /// Migration step V: destination server → gateway: migration finished.
    InstallAck {
        /// Correlation token.
        corr: u64,
        /// The migrated context.
        context: ContextId,
        /// Number of bytes of serialised state moved, or the failure.
        result: Result<u64>,
    },
    /// Gateway → hosting server: serialise the state of `context` under a
    /// brief exclusive activation of `event` (the legacy member-at-a-time
    /// capture, kept as the test-only torn-snapshot mode).
    SnapshotReq {
        /// Correlation token.
        corr: u64,
        /// The context to snapshot.
        context: ContextId,
        /// The snapshot event all member captures are attributed to.
        event: EventId,
    },
    /// Hosting server → gateway: the serialised state (class name plus the
    /// context's snapshot value), or the failure.
    SnapshotAck {
        /// Correlation token.
        corr: u64,
        /// The snapshotted context.
        context: ContextId,
        /// Class name and snapshot state.
        result: Result<(String, Value)>,
    },
    /// Gateway → server: exclusively activate `freeze` on each member in
    /// order, optionally capturing or replacing its state, and keep every
    /// lock held until the matching [`ClusterMessage::ThawReq`].  The
    /// coordinated-freeze leg of the distributed snapshot/restore protocol;
    /// member order follows the ownership DAG (owners before owned).
    FreezeReq {
        /// Correlation token echoed in [`ClusterMessage::FreezeAck`].
        corr: u64,
        /// The freeze event holding the member locks.
        freeze: EventId,
        /// Members to freeze, in acquisition order.  [`virtual_root`]
        /// freezes the node's virtual-root sequencer lock.
        members: Vec<FreezeMember>,
        /// Capture each member's state into the acknowledgement.
        capture: bool,
    },
    /// Server → gateway: every member of the [`ClusterMessage::FreezeReq`]
    /// is frozen (locks held) and, when requested, captured.
    FreezeAck {
        /// Correlation token.
        corr: u64,
        /// Captured `(context, class, state)` triples in request order
        /// (empty without capture), or the failure.  On failure the node
        /// has already released its own holds.
        result: Result<Vec<(ContextId, String, Value)>>,
    },
    /// Gateway → server: release every lock held by `freeze` (normal end of
    /// a coordinated snapshot/restore, or cleanup after a partial failure).
    ThawReq {
        /// The freeze event to release.
        freeze: EventId,
    },
    /// Gateway → server: report your current load (context count, queue
    /// depth, event counters) for the elasticity control plane.
    MetricsReq {
        /// Correlation token echoed in [`ClusterMessage::MetricsAck`].
        corr: u64,
    },
    /// Server → gateway: the node's load report.
    MetricsAck {
        /// Correlation token.
        corr: u64,
        /// The raw report (boxed: the variant is far larger than the
        /// hot-path event messages, and the report is a rare control
        /// message).
        metrics: Box<NodeMetrics>,
    },
    /// Gateway → server: stop the receive loop and poison every local lock.
    Shutdown,
}

impl fmt::Debug for ClusterMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterMessage::Host { context, class, .. } => {
                write!(f, "Host({context}, {class})")
            }
            ClusterMessage::HostAck {
                context, result, ..
            } => {
                write!(f, "HostAck({context}, ok={})", result.is_ok())
            }
            ClusterMessage::DirReq { from, op, .. } => write!(f, "DirReq(from={from}, {op:?})"),
            ClusterMessage::DirAck { corr, reply } => {
                write!(f, "DirAck(corr={corr}, ok={})", reply.is_ok())
            }
            ClusterMessage::Act { event, sequencer } => {
                write!(f, "Act(event={}, sequencer={sequencer})", event.id)
            }
            ClusterMessage::Exec { event, .. } => {
                write!(f, "Exec(event={}, target={})", event.id, event.target)
            }
            ClusterMessage::Call {
                event,
                target,
                method,
                ..
            } => {
                write!(f, "Call(event={event}, target={target}, method={method})")
            }
            ClusterMessage::CallReply { corr, result, .. } => {
                write!(f, "CallReply(corr={corr}, ok={})", result.is_ok())
            }
            ClusterMessage::Release { event } => write!(f, "Release({event})"),
            ClusterMessage::Done { event, result, .. } => {
                write!(f, "Done(event={event}, ok={})", result.is_ok())
            }
            ClusterMessage::Prepare { context, .. } => write!(f, "Prepare({context})"),
            ClusterMessage::PrepareAck { context, .. } => write!(f, "PrepareAck({context})"),
            ClusterMessage::Stop { context, to, .. } => write!(f, "Stop({context} -> {to})"),
            ClusterMessage::StopAck { context, .. } => write!(f, "StopAck({context})"),
            ClusterMessage::Migrate { context, to, .. } => {
                write!(f, "Migrate({context} -> {to})")
            }
            ClusterMessage::Install { context, from, .. } => {
                write!(f, "Install({context} from {from})")
            }
            ClusterMessage::InstallAck {
                context, result, ..
            } => {
                write!(f, "InstallAck({context}, ok={})", result.is_ok())
            }
            ClusterMessage::SnapshotReq { context, .. } => write!(f, "SnapshotReq({context})"),
            ClusterMessage::SnapshotAck {
                context, result, ..
            } => {
                write!(f, "SnapshotAck({context}, ok={})", result.is_ok())
            }
            ClusterMessage::MetricsReq { corr } => write!(f, "MetricsReq(corr={corr})"),
            ClusterMessage::MetricsAck { metrics, .. } => {
                write!(
                    f,
                    "MetricsAck({}, contexts={})",
                    metrics.server, metrics.context_count
                )
            }
            ClusterMessage::FreezeReq {
                freeze,
                members,
                capture,
                ..
            } => {
                write!(
                    f,
                    "FreezeReq(freeze={freeze}, members={}, capture={capture})",
                    members.len()
                )
            }
            ClusterMessage::FreezeAck { corr, result } => {
                write!(f, "FreezeAck(corr={corr}, ok={})", result.is_ok())
            }
            ClusterMessage::ThawReq { freeze } => write!(f, "ThawReq({freeze})"),
            ClusterMessage::Shutdown => write!(f, "Shutdown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_do_not_collide_with_ordinary_ids() {
        assert_ne!(gateway_id(), ServerId::new(0));
        assert_ne!(virtual_root(), ContextId::new(0));
    }

    #[test]
    fn debug_formats_are_compact() {
        let msg = ClusterMessage::Release {
            event: EventId::new(7),
        };
        assert!(format!("{msg:?}").contains("Release"));
        let msg = ClusterMessage::Shutdown;
        assert_eq!(format!("{msg:?}"), "Shutdown");
    }
}
