//! The cluster gateway: builds the deployment, accepts client events, and
//! drives the elasticity/migration protocol.
//!
//! The gateway plays two of the paper's roles at once: the *client library*
//! (it knows the context mapping and routes each event to the server hosting
//! the dominator of its target, §5.1) and the *eManager driver* for
//! migrations (§5.2).  It never touches context state.

use crate::directory::Directory;
use crate::message::{gateway_id, virtual_root, ClusterMessage, EventDescriptor, FreezeMember};
use crate::node::{spawn_node, NodeHandle};
use crate::wire::message_wire_len;
use aeon_net::{
    ChannelTransport, Endpoint, MessageSizer, Network, NetworkStats, TcpTransport,
    TcpTransportConfig,
};
use aeon_ownership::{ClassGraph, Dominator, DominatorMode, OwnershipGraph};
use aeon_runtime::{
    AnalysisMode, ContextFactory, ContextObject, ExecutorConfig, ExecutorStats, Placement, Snapshot,
};
use aeon_types::{
    AccessMode, AeonError, Args, ClientId, ContextId, EventId, Result, ServerId, ServerMetrics,
    SharedHistorySink, Value,
};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default time the gateway waits for a control acknowledgement
/// (hosting a context, each migration step).
const CONTROL_TIMEOUT: Duration = Duration::from_secs(10);
/// Default time a client waits for an event to complete.
const EVENT_TIMEOUT: Duration = Duration::from_secs(60);
/// Poll interval of the gateway receive loop.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How the cluster's servers exchange messages.
#[derive(Debug, Clone, Default)]
pub enum ClusterTransport {
    /// In-process crossbeam channels (the default): every node is a thread
    /// in this process; messages are moved, never serialised, but byte
    /// counters still report each message's encoded wire size.
    #[default]
    Channel,
    /// Real TCP sockets over loopback, one listener per node plus the
    /// gateway, with the nodes still running as threads in this process.
    /// Every protocol message crosses an actual socket — the parity
    /// configuration for exercising the wire codec and framing under the
    /// full test suites.
    TcpLoopback,
    /// Gateway-only mode for a cluster whose server nodes run as separate
    /// OS processes (`aeon-node`): the gateway binds `listen` and connects
    /// to each node in `peers`.  No in-process nodes are spawned;
    /// process-local introspection (executor stats, crash injection,
    /// `add_server`) is unavailable.
    TcpMesh {
        /// Address the gateway's transport listens on.
        listen: SocketAddr,
        /// Node id → socket address of every external `aeon-node` process.
        peers: BTreeMap<ServerId, SocketAddr>,
    },
}

/// Which of the three transports a running cluster uses (internal,
/// semantics-bearing subset of [`ClusterTransport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Channel,
    Loopback,
    Mesh,
}

/// Builder for [`Cluster`].
#[derive(Debug)]
pub struct ClusterBuilder {
    servers: usize,
    dominator_mode: DominatorMode,
    class_graph: Option<ClassGraph>,
    analysis: AnalysisMode,
    executor: ExecutorConfig,
    torn_snapshot: bool,
    transport: ClusterTransport,
    readonly_fast_path: bool,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Starts a builder with a single server.
    pub fn new() -> Self {
        Self {
            servers: 1,
            dominator_mode: DominatorMode::default(),
            class_graph: None,
            analysis: AnalysisMode::default(),
            executor: ExecutorConfig::default(),
            torn_snapshot: false,
            transport: ClusterTransport::default(),
            readonly_fast_path: true,
        }
    }

    /// Selects how servers exchange messages (default:
    /// [`ClusterTransport::Channel`]).  With
    /// [`ClusterTransport::TcpMesh`] the `servers` count is ignored — the
    /// mesh's peer map defines the server set.
    pub fn transport(mut self, transport: ClusterTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the number of servers started with the cluster.
    pub fn servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Sets the number of resident pool workers each node executes
    /// blocking messages on (default: the machine's available
    /// parallelism); the shard count is derived from it.
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.executor.workers = n;
        self
    }

    /// Caps the spill workers each node's blocking escape hatch may keep
    /// alive at once.
    pub fn max_spill_workers(mut self, n: usize) -> Self {
        self.executor.max_spill_workers = n;
        self
    }

    /// Caps how many queued same-context messages one node-executor dequeue
    /// may drain as a batch (`1` disables batching; clamped to at least 1).
    pub fn batch_max(mut self, n: usize) -> Self {
        self.executor.batch_max = n.max(1);
        self
    }

    /// Enables or disables the analyzer-certified read-only fast path at
    /// the gateway (default: enabled).  Certified events (`ro` with an
    /// empty `calls []` summary) are routed straight to their target's
    /// server as pre-sequenced executions, skipping the dominator
    /// activation round trip.
    pub fn readonly_fast_path(mut self, enabled: bool) -> Self {
        self.readonly_fast_path = enabled;
        self
    }

    /// Sets how dominators are derived from the ownership network.
    pub fn dominator_mode(mut self, mode: DominatorMode) -> Self {
        self.dominator_mode = mode;
        self
    }

    /// **Test-only.** Reverts [`Cluster::snapshot_context`] to the legacy
    /// member-at-a-time capture (each member under its own brief exclusive
    /// activation, nothing held across members), which is *not*
    /// crash-consistent under load.  The chaos suite uses this to prove
    /// the serializability checker catches exactly the torn cuts the
    /// coordinated freeze prevents; production code must never enable it.
    pub fn torn_snapshot_for_tests(mut self, torn: bool) -> Self {
        self.torn_snapshot = torn;
        self
    }

    /// Installs a contextclass constraint graph; the static analysis runs at
    /// build time.
    pub fn class_graph(mut self, classes: ClassGraph) -> Self {
        self.class_graph = Some(classes);
        self
    }

    /// Sets how [`ClusterBuilder::build`] treats static-analysis findings on
    /// the class graph: `Off` skips the pipeline, `Warn` prints diagnostics
    /// and proceeds, `Enforce` (the default) refuses to build on any
    /// error-severity diagnostic.
    pub fn analysis(mut self, mode: AnalysisMode) -> Self {
        self.analysis = mode;
        self
    }

    /// Builds and starts the cluster.
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when `servers` is zero.
    /// * [`AeonError::ClassCycleDetected`] when the class graph's ownership
    ///   constraints are cyclic.
    /// * [`AeonError::AnalysisRejected`] when the static analysis pipeline
    ///   reports error diagnostics and the mode is [`AnalysisMode::Enforce`].
    pub fn build(self) -> Result<Cluster> {
        if self.servers == 0 && !matches!(self.transport, ClusterTransport::TcpMesh { .. }) {
            return Err(AeonError::Config("at least one server is required".into()));
        }
        if self.executor.workers == 0 {
            return Err(AeonError::Config(
                "at least one pool worker per node is required".into(),
            ));
        }
        if let Some(classes) = &self.class_graph {
            classes.check()?;
            aeon_analyzer::enforce(classes, self.analysis)?;
        }
        // Fixed at build time: the `ro` methods whose declared call summary
        // the analyzer certifies as empty (the fast-path admission set).
        let mut certified: HashMap<String, HashSet<String>> = HashMap::new();
        if self.readonly_fast_path {
            if let Some(classes) = &self.class_graph {
                for m in aeon_analyzer::certified_readonly(classes) {
                    certified.entry(m.class).or_default().insert(m.method);
                }
            }
        }
        let directory = Arc::new(Directory::new(self.dominator_mode, self.class_graph));
        let (mode, network, mesh_peers): (Mode, Network<ClusterMessage>, Vec<ServerId>) =
            match &self.transport {
                ClusterTransport::Channel => {
                    // Even without sockets, size every message as if it had
                    // crossed the wire so byte counters are comparable
                    // between channel and TCP runs.
                    let sizer: MessageSizer<ClusterMessage> = Arc::new(message_wire_len);
                    let transport = ChannelTransport::with_sizer(sizer);
                    (
                        Mode::Channel,
                        Network::with_transport(Arc::new(transport)),
                        Vec::new(),
                    )
                }
                ClusterTransport::TcpLoopback => {
                    let listen = SocketAddr::from(([127, 0, 0, 1], 0));
                    let transport = TcpTransport::bind(TcpTransportConfig::new(listen))?;
                    (
                        Mode::Loopback,
                        Network::with_transport(Arc::new(transport)),
                        Vec::new(),
                    )
                }
                ClusterTransport::TcpMesh { listen, peers } => {
                    let mut config = TcpTransportConfig::new(*listen);
                    for (id, addr) in peers {
                        config = config.peer(*id, *addr);
                    }
                    let transport = TcpTransport::bind(config)?;
                    (
                        Mode::Mesh,
                        Network::with_transport(Arc::new(transport)),
                        peers.keys().copied().collect(),
                    )
                }
            };
        let shared_stats = network.stats_handle();
        let gateway_endpoint = network.register(gateway_id());
        let next_server = mesh_peers.iter().map(|s| s.raw() + 1).max().unwrap_or(0);
        let inner = Arc::new(ClusterInner {
            directory,
            network,
            mode,
            shared_stats,
            node_networks: Mutex::new(BTreeMap::new()),
            executor_config: self.executor,
            certified,
            fast_path: AtomicU64::new(0),
            torn_snapshot: self.torn_snapshot,
            nodes: Mutex::new(BTreeMap::new()),
            pending_events: Mutex::new(HashMap::new()),
            pending_control: Mutex::new(HashMap::new()),
            corr: AtomicU64::new(1),
            next_server: AtomicU32::new(next_server),
            shutdown: AtomicBool::new(false),
            gateway_thread: Mutex::new(None),
        });
        if inner.mode == Mode::Mesh {
            // The server set is the external process mesh; the directory
            // only needs to know the roster.
            for server in mesh_peers {
                inner.directory.register_server(server);
            }
        } else {
            for _ in 0..self.servers {
                inner.spawn_server();
            }
        }
        let loop_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("aeon-gateway".into())
            .spawn(move || gateway_loop(loop_inner, gateway_endpoint))
            .expect("spawning the gateway thread succeeds");
        *inner.gateway_thread.lock() = Some(thread);
        Ok(Cluster { inner })
    }
}

struct ClusterInner {
    directory: Arc<Directory>,
    network: Network<ClusterMessage>,
    /// Which transport family this cluster runs on.
    mode: Mode,
    /// Byte/message counters shared by the gateway and (in loopback mode)
    /// every node network, so `network_stats` aggregates the whole cluster.
    shared_stats: Arc<NetworkStats>,
    /// Loopback mode: each node's own `Network` (distinct TCP listener),
    /// kept for address exchange with later-spawned nodes and for
    /// transport shutdown.
    node_networks: Mutex<BTreeMap<ServerId, Network<ClusterMessage>>>,
    /// Worker-pool configuration applied to every node (including ones
    /// added later by scale-out).
    executor_config: ExecutorConfig,
    /// Methods admitted to the read-only fast path, keyed by class name:
    /// `ro` methods whose declared call summary the analyzer certified as
    /// empty.  Empty when no class graph is installed or the fast path is
    /// disabled.
    certified: HashMap<String, HashSet<String>>,
    /// Events the gateway routed as pre-sequenced read-only executions.
    fast_path: AtomicU64,
    /// Test-only: member-at-a-time snapshots instead of the coordinated
    /// freeze (see `ClusterBuilder::torn_snapshot_for_tests`).
    torn_snapshot: bool,
    nodes: Mutex<BTreeMap<ServerId, NodeHandle>>,
    /// Event completions waiting to be routed back to client handles.
    pending_events: Mutex<HashMap<u64, Sender<Result<Value>>>>,
    /// Control acknowledgements (host, prepare, stop, install).
    pending_control: Mutex<HashMap<u64, Sender<ClusterMessage>>>,
    corr: AtomicU64,
    next_server: AtomicU32,
    shutdown: AtomicBool,
    gateway_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ClusterInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterInner")
            .field("servers", &self.nodes.lock().len())
            .field("contexts", &self.directory.context_count())
            .finish_non_exhaustive()
    }
}

impl ClusterInner {
    fn spawn_server(&self) -> ServerId {
        let id = ServerId::new(self.next_server.fetch_add(1, Ordering::Relaxed));
        let network = self.node_network_for(id);
        let handle = spawn_node(
            id,
            Arc::clone(&self.directory),
            &network,
            self.executor_config.clone(),
        );
        self.directory.register_server(id);
        self.nodes.lock().insert(id, handle);
        id
    }

    /// The network a newly spawned in-process node attaches to: the shared
    /// channel network, or (loopback mode) a fresh TCP listener whose
    /// address is exchanged with the gateway and every existing node.
    fn node_network_for(&self, id: ServerId) -> Network<ClusterMessage> {
        match self.mode {
            Mode::Channel => self.network.clone(),
            Mode::Loopback => {
                let listen = SocketAddr::from(([127, 0, 0, 1], 0));
                let transport = TcpTransport::bind(TcpTransportConfig::new(listen))
                    .expect("binding a loopback node transport succeeds");
                let network = Network::with_transport_and_stats(
                    Arc::new(transport),
                    Arc::clone(&self.shared_stats),
                );
                let addr = network
                    .local_addr()
                    .expect("a loopback transport has a local address");
                self.network.add_peer(id, addr);
                if let Some(gateway_addr) = self.network.local_addr() {
                    network.add_peer(gateway_id(), gateway_addr);
                }
                let mut networks = self.node_networks.lock();
                for (other, other_network) in networks.iter() {
                    other_network.add_peer(id, addr);
                    if let Some(other_addr) = other_network.local_addr() {
                        network.add_peer(*other, other_addr);
                    }
                }
                networks.insert(id, network.clone());
                network
            }
            Mode::Mesh => unreachable!("mesh clusters never spawn in-process nodes"),
        }
    }

    fn next_corr(&self) -> u64 {
        self.corr.fetch_add(1, Ordering::Relaxed)
    }

    fn send(&self, to: ServerId, message: ClusterMessage) -> Result<()> {
        self.network.send_from(gateway_id(), to, message)
    }

    /// Sends a control message and waits for its acknowledgement.
    fn control_round_trip(
        &self,
        to: ServerId,
        corr: u64,
        message: ClusterMessage,
    ) -> Result<ClusterMessage> {
        let (tx, rx) = bounded(1);
        self.pending_control.lock().insert(corr, tx);
        if let Err(e) = self.send(to, message) {
            self.pending_control.lock().remove(&corr);
            return Err(e);
        }
        match rx.recv_timeout(CONTROL_TIMEOUT) {
            Ok(ack) => Ok(ack),
            Err(_) => {
                self.pending_control.lock().remove(&corr);
                Err(AeonError::MigrationFailed {
                    context: ContextId::new(0),
                    reason: format!("server {to} did not acknowledge a control message"),
                })
            }
        }
    }

    /// Sends one [`ClusterMessage::FreezeReq`] and awaits its
    /// acknowledgement.  `frozen` collects every server that may hold
    /// freeze locks; the server is recorded *before* sending, so even a
    /// request that times out gets its server thawed by the caller.
    fn freeze_round_trip(
        &self,
        server: ServerId,
        freeze: EventId,
        members: Vec<FreezeMember>,
        capture: bool,
        frozen: &mut Vec<ServerId>,
    ) -> Result<Vec<(ContextId, String, Value)>> {
        if !frozen.contains(&server) {
            frozen.push(server);
        }
        let corr = self.next_corr();
        let ack = self.control_round_trip(
            server,
            corr,
            ClusterMessage::FreezeReq {
                corr,
                freeze,
                members,
                capture,
            },
        )?;
        match ack {
            ClusterMessage::FreezeAck { result, .. } => result,
            _ => Err(AeonError::internal(
                "unexpected acknowledgement to a freeze request",
            )),
        }
    }

    /// Freezes `members` in order, batching consecutive same-server
    /// members into one [`ClusterMessage::FreezeReq`]; the sequential
    /// round trips preserve the global acquisition order.  Returns the
    /// captured entries when `capture` is set.
    fn freeze_runs(
        &self,
        freeze: EventId,
        members: impl Iterator<Item = FreezeMember>,
        capture: bool,
        frozen: &mut Vec<ServerId>,
    ) -> Result<Vec<(ContextId, String, Value)>> {
        let mut entries = Vec::new();
        let mut run: Vec<FreezeMember> = Vec::new();
        let mut run_server: Option<ServerId> = None;
        for member in members {
            let server = self.directory.placement_of(member.context)?;
            if run_server != Some(server) {
                if let Some(prev) = run_server {
                    entries.extend(self.freeze_round_trip(
                        prev,
                        freeze,
                        std::mem::take(&mut run),
                        capture,
                        frozen,
                    )?);
                }
                run_server = Some(server);
            }
            run.push(member);
        }
        if let Some(server) = run_server {
            entries.extend(self.freeze_round_trip(server, freeze, run, capture, frozen)?);
        }
        Ok(entries)
    }

    /// Where the sequencer lock for a freeze of `root`'s subtree lives, if
    /// a separate sequencer is required: the server hosting `root`'s
    /// dominator, or the virtual root on the lowest-id online server when
    /// no concrete dominator exists.  `None` when `root` is its own
    /// dominator (its lock is the first member frozen anyway).
    fn freeze_sequencer(&self, root: ContextId) -> Result<Option<(ServerId, ContextId)>> {
        match self.directory.dominator_of(root)? {
            Dominator::Context(dom) if dom != root => {
                Ok(Some((self.directory.placement_of(dom)?, dom)))
            }
            Dominator::GlobalRoot => {
                let server = self
                    .directory
                    .online_servers()
                    .into_iter()
                    .next()
                    .ok_or_else(|| AeonError::Config("no online servers".into()))?;
                Ok(Some((server, virtual_root())))
            }
            _ => Ok(None),
        }
    }

    /// Routes an event to the server hosting the dominator of its target
    /// (Algorithm 2, `to execute`).
    fn submit(
        &self,
        client: Option<ClientId>,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<ClusterEventHandle> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(AeonError::RuntimeShutdown);
        }
        let event = EventId::new(self.directory.next_raw());
        let corr = self.next_corr();
        let (tx, rx) = bounded(1);
        self.pending_events.lock().insert(corr, tx);
        let descriptor = EventDescriptor {
            id: event,
            client,
            corr,
            target,
            method: method.to_string(),
            args,
            mode,
        };
        // Recorded before the event is routed, so the invocation timestamp
        // can never be later than the true submission point.
        if let Some(sink) = self.directory.history_sink() {
            sink.invoked(event);
        }
        let routing = self.route(descriptor);
        if let Err(e) = routing {
            self.pending_events.lock().remove(&corr);
            return Err(e);
        }
        Ok(ClusterEventHandle { event, rx })
    }

    /// Whether the event targets a method the analyzer certified for the
    /// read-only fast path (`ro` with an empty `calls []` summary).
    fn is_certified_readonly(&self, event: &EventDescriptor) -> bool {
        if self.certified.is_empty() {
            return false;
        }
        match self.directory.class_of(event.target) {
            Ok(class) => self
                .certified
                .get(&class)
                .is_some_and(|methods| methods.contains(&event.method)),
            Err(_) => false,
        }
    }

    fn route(&self, event: EventDescriptor) -> Result<()> {
        let target_server = self.directory.placement_of(event.target)?;
        // Certified read-only fast path: the event's lock footprint is
        // provably the single target context, so no dominator sequencing
        // is needed — route it straight to the target's server as a
        // pre-sequenced execution, skipping the Act round trip.  The node
        // still takes the target's activation in shared mode, so the read
        // serializes against writers exactly as before.
        if event.mode.is_read_only() && self.is_certified_readonly(&event) {
            self.fast_path.fetch_add(1, Ordering::Relaxed);
            return self.send(
                target_server,
                ClusterMessage::Exec {
                    event,
                    sequencer: None,
                },
            );
        }
        match self.directory.dominator_of(event.target)? {
            Dominator::Context(dom) if dom != event.target => {
                let dom_server = self.directory.placement_of(dom)?;
                self.send(
                    dom_server,
                    ClusterMessage::Act {
                        event,
                        sequencer: dom,
                    },
                )
            }
            Dominator::GlobalRoot => {
                // The virtual root lives on the lowest-id online server.
                let seq_server = self
                    .directory
                    .online_servers()
                    .into_iter()
                    .next()
                    .ok_or_else(|| AeonError::Config("no online servers".into()))?;
                self.send(
                    seq_server,
                    ClusterMessage::Act {
                        event,
                        sequencer: virtual_root(),
                    },
                )
            }
            _ => self.send(
                target_server,
                ClusterMessage::Exec {
                    event,
                    sequencer: None,
                },
            ),
        }
    }
}

fn gateway_loop(inner: Arc<ClusterInner>, endpoint: Endpoint<ClusterMessage>) {
    loop {
        let message = match endpoint.recv_timeout(POLL_INTERVAL) {
            Ok(Some(m)) => m,
            Ok(None) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        match message {
            ClusterMessage::Done {
                corr,
                event,
                result,
                sub_events,
            } => {
                // Recorded before the completion is handed to the client,
                // so anything submitted after the client observes the
                // result is ordered after this event in real time.
                if let Some(sink) = inner.directory.history_sink() {
                    sink.responded(event);
                }
                if let Some(tx) = inner.pending_events.lock().remove(&corr) {
                    let _ = tx.send(result);
                }
                // Sub-events start after their creator terminated (§3).
                for sub in sub_events {
                    let _ = inner.submit(None, sub.target, &sub.method, sub.args, sub.mode);
                }
            }
            ClusterMessage::DirReq { corr, from, op } => {
                // Control-plane RPC from a node process: serve it at the
                // directory authority and send the answer straight back.
                let reply = inner.directory.serve_dir_op(op);
                let _ = inner.send(from, ClusterMessage::DirAck { corr, reply });
            }
            ClusterMessage::HostAck { corr, .. }
            | ClusterMessage::PrepareAck { corr, .. }
            | ClusterMessage::StopAck { corr, .. }
            | ClusterMessage::InstallAck { corr, .. }
            | ClusterMessage::SnapshotAck { corr, .. }
            | ClusterMessage::FreezeAck { corr, .. }
            | ClusterMessage::MetricsAck { corr, .. } => {
                let entry = inner.pending_control.lock().remove(&corr);
                if let Some(tx) = entry {
                    let _ = tx.send(message);
                }
            }
            _ => {}
        }
    }
}

/// A handle to an event submitted to the cluster.
#[derive(Debug)]
pub struct ClusterEventHandle {
    event: EventId,
    rx: Receiver<Result<Value>>,
}

impl ClusterEventHandle {
    /// The id assigned to the event.
    pub fn event_id(&self) -> EventId {
        self.event
    }

    /// Waits for the event to complete and returns its result.
    ///
    /// # Errors
    ///
    /// * The error returned by the application method, if any.
    /// * [`AeonError::EventAborted`] when no completion arrives within the
    ///   cluster's event timeout (e.g. the hosting server crashed).
    pub fn wait(self) -> Result<Value> {
        self.wait_timeout(EVENT_TIMEOUT)
    }

    /// Waits up to `timeout` for the event to complete.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterEventHandle::wait`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<Value> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(AeonError::EventAborted {
                event: self.event,
                reason: "no completion received before the timeout".into(),
            }),
        }
    }
}

/// A client of the cluster: the entry point for submitting events.
#[derive(Debug, Clone)]
pub struct ClusterClient {
    inner: Arc<ClusterInner>,
    id: ClientId,
}

impl ClusterClient {
    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Submits an event with an explicit access mode: the primitive behind
    /// [`ClusterClient::submit_event`] and the `aeon-api` `Session`
    /// implementation.  The `call`/`call_readonly` convenience wrappers
    /// live on the `Session` trait, not here.
    ///
    /// # Errors
    ///
    /// * [`AeonError::RuntimeShutdown`] after shutdown.
    /// * [`AeonError::ContextNotFound`] for unknown targets.
    pub fn submit(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<ClusterEventHandle> {
        self.inner.submit(Some(self.id), target, method, args, mode)
    }

    /// Submits an exclusive (update) event.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterClient::submit`].
    pub fn submit_event(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<ClusterEventHandle> {
        self.submit(target, method, args, AccessMode::Exclusive)
    }

    /// Submits a read-only event.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterClient::submit`].
    pub fn submit_readonly_event(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<ClusterEventHandle> {
        self.submit(target, method, args, AccessMode::ReadOnly)
    }
}

/// A running AEON cluster: a set of server nodes connected by the
/// message-passing substrate, plus the gateway used by clients and by the
/// elasticity machinery.
///
/// # Examples
///
/// ```
/// use aeon_api::Session;
/// use aeon_cluster::Cluster;
/// use aeon_runtime::{KvContext, Placement};
/// use aeon_types::{args, Value};
///
/// # fn main() -> aeon_types::Result<()> {
/// let cluster = Cluster::builder().servers(3).build()?;
/// let room = cluster.create_context(Box::new(KvContext::new("Room")), Placement::Auto)?;
/// let client = cluster.client();
/// client.call(room, "set", args!["time", "noon"])?;
/// assert_eq!(client.call_readonly(room, "get", args!["time"])?, Value::from("noon"));
/// cluster.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// Creates a client handle.
    pub fn client(&self) -> ClusterClient {
        ClusterClient {
            inner: Arc::clone(&self.inner),
            id: ClientId::new(self.inner.directory.next_raw()),
        }
    }

    /// Registers the factory used to rebuild contexts of `class` from a
    /// snapshot during migration or recovery.
    pub fn register_class_factory(&self, class: impl Into<String>, factory: ContextFactory) {
        self.inner.directory.register_factory(class, factory);
    }

    /// Installs a live history sink: the gateway reports every event's
    /// invocation/response points and the nodes report every context
    /// access — including snapshot captures and restore writes — to it.
    /// Replaces any previous sink.
    pub fn install_history_sink(&self, sink: SharedHistorySink) {
        self.inner.directory.set_history_sink(sink);
    }

    /// Creates a root context (no owners) and hosts it according to
    /// `placement` (the same [`Placement`] policy the in-process runtime
    /// uses: least-loaded server, a specific server, or co-located with
    /// another context).
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when the class is not declared or no server is
    ///   online.
    /// * [`AeonError::ServerNotFound`] when the requested server is offline.
    pub fn create_context(
        &self,
        object: Box<dyn ContextObject>,
        placement: Placement,
    ) -> Result<ContextId> {
        let server = match placement {
            Placement::Auto => None,
            Placement::Server(server) => Some(server),
            Placement::WithContext(other) => Some(self.inner.directory.placement_of(other)?),
        };
        self.create_context_with_owners(object, &[], server)
    }

    /// Creates a context owned by `owners` (at least one), hosted next to
    /// its first owner.
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when `owners` is empty.
    /// * [`AeonError::OwnershipViolation`] when the class constraints forbid
    ///   the ownership.
    pub fn create_owned_context(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
    ) -> Result<ContextId> {
        if owners.is_empty() {
            return Err(AeonError::Config(
                "create_owned_context requires at least one owner".into(),
            ));
        }
        self.create_context_with_owners(object, owners, None)
    }

    fn create_context_with_owners(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
        server: Option<ServerId>,
    ) -> Result<ContextId> {
        let class = object.class_name().to_string();
        let server = match server {
            Some(s) => s,
            None => match owners.first() {
                // The owner may sit on a crashed server; the online check
                // below rejects that placement.
                Some(owner) => self.inner.directory.placement_of(*owner)?,
                None => self.inner.directory.least_loaded_server()?,
            },
        };
        if !self.inner.directory.is_online(server) {
            return Err(AeonError::ServerNotFound(server));
        }
        let id = self.inner.directory.next_context_id();
        self.inner.directory.add_context(id, &class)?;
        for owner in owners {
            if let Err(e) = self.inner.directory.add_edge(*owner, id) {
                let _ = self.inner.directory.remove_context(id);
                return Err(e);
            }
        }
        self.inner.directory.set_placement(id, server);
        // The snapshot travels on the wire (a node in another process
        // rebuilds from it); the object itself is parked in escrow so a
        // same-process node can move it in without a factory.
        let state = object.snapshot();
        let escrow = self.inner.directory.escrow_put(object);
        let corr = self.inner.next_corr();
        let ack = self.inner.control_round_trip(
            server,
            corr,
            ClusterMessage::Host {
                corr,
                context: id,
                class,
                state,
                escrow,
            },
        );
        let outcome = match ack {
            Ok(ClusterMessage::HostAck { result: Ok(()), .. }) => Ok(id),
            Ok(ClusterMessage::HostAck {
                result: Err(err), ..
            }) => Err(err),
            Ok(_) | Err(_) => Err(AeonError::ServerNotFound(server)),
        };
        // A cross-process node used its factory; drop the unclaimed
        // escrow entry either way so nothing leaks.
        let _ = self.inner.directory.escrow_take(escrow);
        if outcome.is_err() {
            let _ = self.inner.directory.remove_context(id);
        }
        outcome
    }

    /// Migrates `context` to `to` using the five-step protocol of §5.2 and
    /// returns the number of bytes of serialised state moved.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] / [`AeonError::ServerNotFound`] for
    ///   unknown ids.
    /// * [`AeonError::MigrationFailed`] when no factory is registered for
    ///   the context's class or a protocol step times out.
    pub fn migrate_context(&self, context: ContextId, to: ServerId) -> Result<u64> {
        if !self.inner.directory.is_online(to) {
            return Err(AeonError::ServerNotFound(to));
        }
        let from = self.inner.directory.placement_of(context)?;
        if from == to {
            return Ok(0);
        }
        let class = self.inner.directory.class_of(context)?;
        if self.inner.directory.factory_for(&class).is_none() {
            return Err(AeonError::MigrationFailed {
                context,
                reason: format!("no factory registered for class {class}"),
            });
        }
        // Step I: prepare the destination.
        let corr = self.inner.next_corr();
        self.inner
            .control_round_trip(to, corr, ClusterMessage::Prepare { corr, context })?;
        // Step II: stop the source from accepting new events for the context.
        let corr = self.inner.next_corr();
        self.inner
            .control_round_trip(from, corr, ClusterMessage::Stop { corr, context, to })?;
        // Step III: update the mapping; new requests now route to `to`.
        self.inner.directory.set_placement(context, to);
        // Steps IV/V: ship the state and wait for the installation ack.
        let corr = self.inner.next_corr();
        let ack = self.inner.control_round_trip(
            from,
            corr,
            ClusterMessage::Migrate { corr, context, to },
        )?;
        match ack {
            ClusterMessage::InstallAck { result, .. } => result,
            _ => Err(AeonError::MigrationFailed {
                context,
                reason: "unexpected acknowledgement".into(),
            }),
        }
    }

    /// Re-hosts a context from externally held state (e.g. a checkpoint)
    /// after its server crashed.  The context keeps its identity and
    /// ownership edges; only its placement and state change.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] when the context was never created.
    /// * [`AeonError::MigrationFailed`] when no factory is registered.
    /// * [`AeonError::ServerNotFound`] when `server` is offline.
    pub fn restore_context(
        &self,
        context: ContextId,
        state: &Value,
        server: ServerId,
    ) -> Result<()> {
        if !self.inner.directory.is_online(server) {
            return Err(AeonError::ServerNotFound(server));
        }
        let class = self.inner.directory.class_of(context)?;
        let factory =
            self.inner
                .directory
                .factory_for(&class)
                .ok_or_else(|| AeonError::MigrationFailed {
                    context,
                    reason: format!("no factory registered for class {class}"),
                })?;
        let object = factory(state);
        self.inner.directory.set_placement(context, server);
        let escrow = self.inner.directory.escrow_put(object);
        let corr = self.inner.next_corr();
        let ack = self.inner.control_round_trip(
            server,
            corr,
            ClusterMessage::Host {
                corr,
                context,
                class,
                state: state.clone(),
                escrow,
            },
        );
        let _ = self.inner.directory.escrow_take(escrow);
        match ack? {
            ClusterMessage::HostAck { result: Ok(()), .. } => {
                // A re-host is recorded as a single-write event: everything
                // the context does afterwards happens-after this install.
                if let Some(sink) = self.inner.directory.history_sink() {
                    let event = EventId::new(self.inner.directory.next_raw());
                    sink.invoked(event);
                    sink.accessed(event, context, AccessMode::Exclusive);
                    sink.responded(event);
                }
                Ok(())
            }
            ClusterMessage::HostAck {
                result: Err(err), ..
            } => Err(err),
            _ => Err(AeonError::ServerNotFound(server)),
        }
    }

    /// Takes a crash-consistent snapshot of `context` and all its
    /// descendants using the coordinated freeze protocol:
    ///
    /// 1. **Sequence** — a freeze event exclusively activates the
    ///    dominator's sequencer lock on its hosting node
    ///    ([`ClusterMessage::FreezeReq`] with the sequencer as sole
    ///    member), draining every in-flight event that could reach shared
    ///    state in the subtree.
    /// 2. **Freeze & capture** — every member is exclusively activated in
    ///    owner-before-owned order (consecutive same-server members batch
    ///    into one `FreezeReq`) and its state captured at activation; all
    ///    locks stay held, so the captures form one logical cut that some
    ///    serial execution could have produced.
    /// 3. **Thaw** — every contacted server receives a
    ///    [`ClusterMessage::ThawReq`] releasing the freeze event's locks —
    ///    on success *and* on failure, so a mid-freeze crash of one node
    ///    never strands locks on the others.
    ///
    /// Contexts whose snapshot is `Null` are skipped (the paper's opt-out
    /// convention).
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] when `context` is unknown.
    /// * [`AeonError::SnapshotFailed`] when a member is unreachable (e.g.
    ///   its server crashed mid-freeze); already-frozen members have been
    ///   thawed.
    pub fn snapshot_context(&self, context: ContextId) -> Result<Snapshot> {
        let graph = self.inner.directory.graph_snapshot();
        let members = graph.subtree_topological(context)?;
        if self.inner.torn_snapshot {
            return self.snapshot_member_at_a_time(context, &members);
        }
        let entries = self.freeze_subtree(context, &members, true, &[])?;
        let mut snapshot = Snapshot::new(context);
        for (id, class, state) in entries {
            if !state.is_null() {
                snapshot.insert(id, class, state);
            }
        }
        Ok(snapshot)
    }

    /// The legacy member-at-a-time capture (each member under its own
    /// brief exclusive activation, nothing held across members).  Not
    /// crash-consistent under load; reachable only through
    /// `ClusterBuilder::torn_snapshot_for_tests`.
    fn snapshot_member_at_a_time(
        &self,
        context: ContextId,
        members: &[ContextId],
    ) -> Result<Snapshot> {
        let event = EventId::new(self.inner.directory.next_raw());
        let sink = self.inner.directory.history_sink();
        if let Some(sink) = &sink {
            sink.invoked(event);
        }
        let mut snapshot = Snapshot::new(context);
        let result = (|| -> Result<()> {
            for member in members {
                let server = self.inner.directory.placement_of(*member)?;
                let corr = self.inner.next_corr();
                let ack = self.inner.control_round_trip(
                    server,
                    corr,
                    ClusterMessage::SnapshotReq {
                        corr,
                        context: *member,
                        event,
                    },
                )?;
                match ack {
                    ClusterMessage::SnapshotAck { result, .. } => {
                        let (class, state) = result?;
                        if !state.is_null() {
                            snapshot.insert(*member, class, state);
                        }
                    }
                    _ => {
                        return Err(AeonError::MigrationFailed {
                            context: *member,
                            reason: "unexpected acknowledgement to a snapshot request".into(),
                        })
                    }
                }
            }
            Ok(())
        })();
        if let Some(sink) = &sink {
            sink.responded(event);
        }
        result.map(|()| snapshot)
    }

    /// Establishes a coordinated freeze of `root`'s subtree — sequencer
    /// first, then every member in the given owner-before-owned order —
    /// captures the frozen cut when asked, then (second phase, only once
    /// *every* member is frozen and validated) applies the `apply` states
    /// under the held locks, and **always** thaws every contacted server
    /// before returning, so no lock outlives the call even on partial
    /// failure.  Because nothing is written until the whole freeze is
    /// established, a member that is missing or unreachable fails the
    /// operation before any state changed.
    fn freeze_subtree(
        &self,
        root: ContextId,
        members: &[ContextId],
        capture: bool,
        apply: &[(ContextId, Value)],
    ) -> Result<Vec<(ContextId, String, Value)>> {
        let freeze = EventId::new(self.inner.directory.next_raw());
        let sink = self.inner.directory.history_sink();
        if let Some(sink) = &sink {
            sink.invoked(freeze);
        }
        let mut frozen: Vec<ServerId> = Vec::new();
        let result = (|| -> Result<Vec<(ContextId, String, Value)>> {
            if let Some((server, sequencer)) = self.inner.freeze_sequencer(root)? {
                self.inner.freeze_round_trip(
                    server,
                    freeze,
                    vec![FreezeMember::freeze(sequencer)],
                    false,
                    &mut frozen,
                )?;
            }
            let entries = self.inner.freeze_runs(
                freeze,
                members.iter().map(|m| FreezeMember::freeze(*m)),
                capture,
                &mut frozen,
            )?;
            if !apply.is_empty() {
                // Apply phase: the freeze event already holds every lock
                // (activation is idempotent per event), so these requests
                // apply immediately.
                self.inner.freeze_runs(
                    freeze,
                    apply
                        .iter()
                        .map(|(context, state)| FreezeMember::restore(*context, state.clone())),
                    false,
                    &mut frozen,
                )?;
            }
            Ok(entries)
        })()
        .map_err(|e| AeonError::SnapshotFailed {
            context: root,
            reason: e.to_string(),
        });
        for server in &frozen {
            let _ = self.inner.send(*server, ClusterMessage::ThawReq { freeze });
        }
        if let Some(sink) = &sink {
            sink.responded(freeze);
        }
        result
    }

    /// Restores context states from a snapshot previously produced by
    /// [`Cluster::snapshot_context`].  Contexts must still be hosted; their
    /// state is replaced in place through `ContextObject::restore` on the
    /// hosting server, so no class factory is required — the same contract
    /// as the in-process runtime and the simulator.  (Re-hosting a context
    /// that was lost to a crash goes through
    /// [`Cluster::restore_context`] instead, which does need a factory.)
    ///
    /// The restore runs under the same coordinated subtree freeze as the
    /// snapshot, in two phases: first every member is frozen and validated
    /// (nothing is written yet — a missing or unreachable member fails the
    /// restore with the live state untouched), then the snapshot states
    /// are applied under the held locks.  Concurrent events therefore
    /// observe either the pre-restore or the post-restore state of *every*
    /// member, never a mix.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] if a snapshotted context no longer
    ///   exists.
    /// * [`AeonError::SnapshotFailed`] when a hosting server does not
    ///   answer; already-frozen members have been thawed.  If the failure
    ///   happens during the apply phase itself (a server dying *after* the
    ///   full freeze was established), the restore may be partially
    ///   applied — re-run it once the deployment recovered.
    pub fn restore_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        for (id, _) in snapshot.entries() {
            // Fail with the documented error before freezing anything when
            // an entry vanished.
            self.inner.directory.placement_of(*id)?;
        }
        let root = snapshot.root();
        let graph = self.inner.directory.graph_snapshot();
        let mut members = graph.subtree_topological(root)?;
        // Entries that left the subtree since the capture (ownership
        // edits) are frozen after the subtree members and restored with
        // them.
        let member_set: BTreeSet<ContextId> = members.iter().copied().collect();
        for (id, _) in snapshot.entries() {
            if !member_set.contains(id) {
                members.push(*id);
            }
        }
        let apply: Vec<(ContextId, Value)> = snapshot
            .entries()
            .map(|(id, entry)| (*id, entry.state.clone()))
            .collect();
        self.freeze_subtree(root, &members, false, &apply)
            .map(|_| ())
    }

    /// Adds a server to the cluster and returns its id (scale-out).
    ///
    /// # Panics
    ///
    /// Panics on a [`ClusterTransport::TcpMesh`] cluster: external node
    /// processes are launched out of band, not by the gateway.
    pub fn add_server(&self) -> ServerId {
        assert!(
            self.inner.mode != Mode::Mesh,
            "add_server is not available on a TcpMesh cluster; start another aeon-node process"
        );
        self.inner.spawn_server()
    }

    /// Releases a drained server (scale-in): the node is taken offline, its
    /// receive loop and worker pool are stopped and joined, and it is
    /// removed from the network.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ServerNotFound`] for unknown or already offline
    ///   servers.
    /// * [`AeonError::Config`] when the mapping still places contexts on it
    ///   — migrate them away first.
    pub fn remove_server(&self, server: ServerId) -> Result<()> {
        if !self.inner.directory.is_online(server) {
            return Err(AeonError::ServerNotFound(server));
        }
        // Go offline first so concurrent placements stop choosing this
        // server, then check it is empty; checking before flipping the flag
        // would let a racing create_context strand a context on it.
        self.inner.directory.set_offline(server);
        let hosted = self.contexts_on(server).len();
        if hosted > 0 {
            self.inner.directory.register_server(server);
            return Err(AeonError::Config(format!(
                "server {server} still hosts {hosted} contexts"
            )));
        }
        let mut nodes = self.inner.nodes.lock();
        let Some(mut node) = nodes.remove(&server) else {
            drop(nodes);
            if self.inner.mode == Mode::Mesh {
                // External process: ask it to exit and forget the peer; the
                // process joins on its own receive loop.
                let _ = self.inner.send(server, ClusterMessage::Shutdown);
                self.inner.network.deregister(server);
                return Ok(());
            }
            return Err(AeonError::ServerNotFound(server));
        };
        drop(nodes);
        let _ = self.inner.send(server, ClusterMessage::Shutdown);
        node.crash();
        if let Some(thread) = node.thread.take() {
            let _ = thread.join();
        }
        self.inner.network.deregister(server);
        if let Some(network) = self.inner.node_networks.lock().remove(&server) {
            network.shutdown_transport();
        }
        Ok(())
    }

    /// Current per-server load metrics, collected with a metrics round trip
    /// to every online node (the distributed analogue of the paper's
    /// periodic utilisation reports to the eManager).  Nodes that crash
    /// between the server listing and the round trip are skipped.
    pub fn server_metrics(&self) -> Vec<ServerMetrics> {
        let mut raw = Vec::new();
        for server in self.servers() {
            let corr = self.inner.next_corr();
            if let Ok(ClusterMessage::MetricsAck { metrics, .. }) =
                self.inner
                    .control_round_trip(server, corr, ClusterMessage::MetricsReq { corr })
            {
                raw.push(metrics);
            }
        }
        let total_contexts: usize = raw.iter().map(|m| m.context_count).sum();
        raw.into_iter()
            .map(|m| {
                let avg_latency_ms = if m.events_executed == 0 {
                    0.0
                } else {
                    m.exec_micros as f64 / m.events_executed as f64 / 1_000.0
                };
                ServerMetrics::from_load_with_latency(
                    m.server,
                    m.context_count,
                    total_contexts,
                    m.queue_depth as usize,
                    avg_latency_ms,
                    m.latency,
                )
            })
            .collect()
    }

    /// Simulates a server crash: the node stops processing immediately,
    /// every lock it holds is poisoned, and its contexts become unavailable
    /// until restored elsewhere with [`Cluster::restore_context`].
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`] for unknown servers.
    pub fn crash_server(&self, server: ServerId) -> Result<()> {
        if self.inner.mode == Mode::Mesh {
            return Err(AeonError::Config(
                "crash injection is not available for external node processes".into(),
            ));
        }
        let nodes = self.inner.nodes.lock();
        let node = nodes
            .get(&server)
            .ok_or(AeonError::ServerNotFound(server))?;
        node.crash();
        drop(nodes);
        self.inner.directory.set_offline(server);
        self.inner.network.deregister(server);
        Ok(())
    }

    /// Ids of all online servers.
    pub fn servers(&self) -> Vec<ServerId> {
        self.inner.directory.online_servers()
    }

    /// The server currently hosting `context` according to the mapping.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn placement_of(&self, context: ContextId) -> Result<ServerId> {
        self.inner.directory.placement_of(context)
    }

    /// Contexts mapped to `server`.
    pub fn contexts_on(&self, server: ServerId) -> Vec<ContextId> {
        self.inner.directory.contexts_on(server)
    }

    /// Number of contexts known to the cluster.
    pub fn context_count(&self) -> usize {
        self.inner.directory.context_count()
    }

    /// A snapshot of the ownership network.
    pub fn ownership_graph(&self) -> OwnershipGraph {
        self.inner.directory.graph_snapshot()
    }

    /// Adds an ownership edge between existing contexts.
    ///
    /// # Errors
    ///
    /// Same conditions as the runtime's `add_ownership`.
    pub fn add_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.inner.directory.add_edge(owner, owned)
    }

    /// Removes an ownership edge.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when either context is
    /// unknown.
    pub fn remove_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.inner.directory.remove_edge(owner, owned)
    }

    /// Network traffic statistics (local vs. remote messages).
    pub fn network_stats(&self) -> &NetworkStats {
        self.inner.network.stats()
    }

    /// Per-server count of events whose target executed there.
    pub fn events_executed(&self) -> BTreeMap<ServerId, u64> {
        self.inner
            .nodes
            .lock()
            .iter()
            .map(|(id, node)| (*id, node.events_executed()))
            .collect()
    }

    /// Per-server count of hosted contexts (actual state, not the mapping).
    pub fn hosted_contexts(&self) -> BTreeMap<ServerId, usize> {
        self.inner
            .nodes
            .lock()
            .iter()
            .map(|(id, node)| (*id, node.hosted_contexts()))
            .collect()
    }

    /// Per-server count of worker naps spent waiting for a migrated-in
    /// context to be installed (each nap is one retry of the install-wait
    /// loop, capped to the remaining grace deadline).
    pub fn install_wait_retries(&self) -> BTreeMap<ServerId, u64> {
        self.inner
            .nodes
            .lock()
            .iter()
            .map(|(id, node)| (*id, node.install_wait_retries()))
            .collect()
    }

    /// Per-server counters of the nodes' worker pools (queue depth, spill
    /// activity, caught panics).
    pub fn executor_stats(&self) -> BTreeMap<ServerId, ExecutorStats> {
        self.inner
            .nodes
            .lock()
            .iter()
            .map(|(id, node)| (*id, node.executor_stats()))
            .collect()
    }

    /// Number of events the gateway routed on the certified read-only fast
    /// path (straight to the target's server, no dominator activation
    /// round trip); see [`ClusterBuilder::readonly_fast_path`].
    pub fn fast_path_events(&self) -> u64 {
        self.inner.fast_path.load(Ordering::Relaxed)
    }

    /// Shuts the cluster down: nodes stop accepting messages, blocked events
    /// are aborted, and every node thread is joined.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if self.inner.mode == Mode::Mesh {
            // The nodes are other OS processes: ask each to exit; their
            // receive loops stop themselves.
            for server in self.inner.directory.online_servers() {
                let _ = self.inner.send(server, ClusterMessage::Shutdown);
            }
        }
        let mut nodes = self.inner.nodes.lock();
        for (id, node) in nodes.iter() {
            let _ = self.inner.send(*id, ClusterMessage::Shutdown);
            node.crash();
        }
        for (_, node) in nodes.iter_mut() {
            if let Some(thread) = node.thread.take() {
                let _ = thread.join();
            }
        }
        drop(nodes);
        if let Some(thread) = self.inner.gateway_thread.lock().take() {
            let _ = thread.join();
        }
        for (_, network) in self.inner.node_networks.lock().iter() {
            network.shutdown_transport();
        }
        self.inner.network.shutdown_transport();
    }
}

impl Drop for ClusterInner {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, node) in self.nodes.lock().iter() {
            node.crash();
        }
    }
}
