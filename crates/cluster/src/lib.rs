//! # aeon-cluster — the distributed deployment of AEON
//!
//! The in-process runtime (`aeon-runtime`) executes the AEON protocol with
//! shared-memory locks; this crate deploys the same protocol across a set of
//! *server nodes* connected only by the message-passing substrate of
//! `aeon-net`, which is how the paper's C++/Mace prototype is structured:
//!
//! * context **state** lives on exactly one server at a time and moves only
//!   through the five-step migration protocol of §5.2;
//! * every event is **sequenced at the dominator** of its target (an `ACT`
//!   message to the dominator's server), then **executed at its target**
//!   (an `EXEC` message), with method calls to remotely hosted contexts
//!   travelling as `CALL`/`REPLY` messages (§4, Algorithm 2);
//! * locks are released cluster-wide with `RELEASE` messages once the event
//!   terminates everywhere;
//! * the **context mapping** (which server hosts which context) and the
//!   ownership network are kept by a shared [`Directory`], standing in for
//!   the paper's eManager plus cloud storage (§5.1);
//! * servers can be added at runtime, crashed (fault injection), and
//!   contexts migrated or restored from checkpoints without violating the
//!   consistency of in-flight events.
//!
//! Application code is unchanged between the two deployments: the same
//! [`aeon_runtime::ContextObject`] implementations run on either, because
//! both engines drive them through [`aeon_runtime::Invocation`] — and the
//! cluster implements the `aeon-api` `Deployment`/`Session` traits, so
//! drivers written against the unified API deploy here without changes.
//!
//! # Examples
//!
//! ```
//! use aeon_api::Session;
//! use aeon_cluster::Cluster;
//! use aeon_runtime::{KvContext, Placement};
//! use aeon_types::{args, Value};
//!
//! # fn main() -> aeon_types::Result<()> {
//! let cluster = Cluster::builder().servers(2).build()?;
//! let counter = cluster.create_context(Box::new(KvContext::new("Counter")), Placement::Auto)?;
//! let client = cluster.client();
//! client.call(counter, "incr", args!["hits", 1i64])?;
//! client.call(counter, "incr", args!["hits", 1i64])?;
//! assert_eq!(client.call_readonly(counter, "get", args!["hits"])?, Value::from(2i64));
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
mod cluster;
mod directory;
mod message;
mod node;
mod remote;
mod wire;

pub use cluster::{Cluster, ClusterBuilder, ClusterClient, ClusterEventHandle, ClusterTransport};
pub use directory::Directory;
pub use message::{
    gateway_id, virtual_root, ClusterMessage, DirOp, DirReply, EventDescriptor, FreezeMember,
    NodeMetrics,
};
pub use remote::{run_node, NodeProcessConfig};
