//! The cluster's control-plane metadata service.
//!
//! In the paper, the ownership network and the context→server mapping are
//! maintained by the eManager and persisted in a cloud storage system that
//! every host and client can read (§5.1).  The [`Directory`] plays that
//! role: it is shared (by `Arc`) between the gateway and every server node,
//! standing in for "query the eManager / read the mapping from cloud
//! storage".  Context *state* is never stored here — it lives only on the
//! server currently hosting the context and moves exclusively through the
//! migration protocol.

use aeon_ownership::{ClassGraph, Dominator, DominatorMode, DominatorResolver, OwnershipGraph};
use aeon_runtime::ContextFactory;
use aeon_types::{
    AeonError, ClassName, ContextId, EventId, IdGenerator, Result, ServerId, SharedHistorySink,
};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// Shared control-plane state of a cluster.
pub struct Directory {
    graph: RwLock<OwnershipGraph>,
    placement: RwLock<HashMap<ContextId, ServerId>>,
    servers: RwLock<BTreeMap<ServerId, bool>>,
    resolver: DominatorResolver,
    class_graph: Option<ClassGraph>,
    factories: RwLock<HashMap<ClassName, ContextFactory>>,
    ids: IdGenerator,
    /// Optional live history sink, shared by the gateway (event spans) and
    /// every node (context accesses); in a real deployment each host would
    /// hold its own handle to the same collector service.
    history: RwLock<Option<SharedHistorySink>>,
}

impl std::fmt::Debug for Directory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Directory")
            .field("contexts", &self.graph.read().len())
            .field("servers", &self.servers.read().len())
            .finish_non_exhaustive()
    }
}

impl Directory {
    /// Creates an empty directory.
    pub fn new(mode: DominatorMode, class_graph: Option<ClassGraph>) -> Self {
        Self {
            graph: RwLock::new(OwnershipGraph::new()),
            placement: RwLock::new(HashMap::new()),
            servers: RwLock::new(BTreeMap::new()),
            resolver: DominatorResolver::new(mode),
            class_graph,
            factories: RwLock::new(HashMap::new()),
            ids: IdGenerator::starting_at(1),
            history: RwLock::new(None),
        }
    }

    /// Installs the live history sink (replacing any previous one).
    pub fn set_history_sink(&self, sink: SharedHistorySink) {
        *self.history.write() = Some(sink);
    }

    /// The installed history sink, if any.
    pub fn history_sink(&self) -> Option<SharedHistorySink> {
        self.history.read().clone()
    }

    /// Allocates a fresh event id.
    pub fn next_event_id(&self) -> EventId {
        EventId::new(self.ids.next_raw())
    }

    /// Allocates a fresh context id.
    pub fn next_context_id(&self) -> ContextId {
        ContextId::new(self.ids.next_raw())
    }

    /// Allocates a fresh raw id (used for correlation tokens and clients).
    pub fn next_raw(&self) -> u64 {
        self.ids.next_raw()
    }

    // -- servers ------------------------------------------------------------

    /// Registers a server as online.
    pub fn register_server(&self, server: ServerId) {
        self.servers.write().insert(server, true);
    }

    /// Marks a server offline (crashed or drained).
    pub fn set_offline(&self, server: ServerId) {
        if let Some(flag) = self.servers.write().get_mut(&server) {
            *flag = false;
        }
    }

    /// Returns whether a server is known and online.
    pub fn is_online(&self, server: ServerId) -> bool {
        self.servers.read().get(&server).copied().unwrap_or(false)
    }

    /// All online servers, in id order.
    pub fn online_servers(&self) -> Vec<ServerId> {
        self.servers
            .read()
            .iter()
            .filter(|(_, online)| **online)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The online server hosting the fewest contexts.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Config`] when no server is online.
    pub fn least_loaded_server(&self) -> Result<ServerId> {
        let placement = self.placement.read();
        let mut load: BTreeMap<ServerId, usize> =
            self.online_servers().into_iter().map(|s| (s, 0)).collect();
        for server in placement.values() {
            if let Some(count) = load.get_mut(server) {
                *count += 1;
            }
        }
        load.into_iter()
            .min_by_key(|(id, count)| (*count, id.raw()))
            .map(|(id, _)| id)
            .ok_or_else(|| AeonError::Config("no online servers".into()))
    }

    // -- placement ----------------------------------------------------------

    /// The server currently recorded as hosting `context`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn placement_of(&self, context: ContextId) -> Result<ServerId> {
        self.placement
            .read()
            .get(&context)
            .copied()
            .ok_or(AeonError::ContextNotFound(context))
    }

    /// Records (or updates) the placement of a context.
    pub fn set_placement(&self, context: ContextId, server: ServerId) {
        self.placement.write().insert(context, server);
    }

    /// Removes the placement entry of a context.
    pub fn remove_placement(&self, context: ContextId) {
        self.placement.write().remove(&context);
    }

    /// All contexts currently mapped to `server`, in id order.
    pub fn contexts_on(&self, server: ServerId) -> Vec<ContextId> {
        let mut out: Vec<ContextId> = self
            .placement
            .read()
            .iter()
            .filter(|(_, s)| **s == server)
            .map(|(c, _)| *c)
            .collect();
        out.sort();
        out
    }

    /// Number of contexts known to the directory.
    pub fn context_count(&self) -> usize {
        self.placement.read().len()
    }

    // -- ownership network --------------------------------------------------

    /// A snapshot of the ownership graph.
    pub fn graph_snapshot(&self) -> OwnershipGraph {
        self.graph.read().clone()
    }

    /// Declares a new context of class `class`.
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when a class graph is installed and does not
    ///   declare `class`.
    /// * Propagates graph errors (duplicate id).
    pub fn add_context(&self, id: ContextId, class: &str) -> Result<()> {
        if let Some(classes) = &self.class_graph {
            if !classes.contains(class) {
                return Err(AeonError::Config(format!(
                    "contextclass {class} is not declared in the class graph"
                )));
            }
        }
        self.graph.write().add_context(id, class)
    }

    /// Removes a context from the graph and the placement map.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when the context is unknown.
    pub fn remove_context(&self, id: ContextId) -> Result<()> {
        self.graph.write().remove_context(id)?;
        self.placement.write().remove(&id);
        Ok(())
    }

    /// Adds an ownership edge after validating the class constraints.
    ///
    /// # Errors
    ///
    /// * [`AeonError::OwnershipViolation`] when the class constraints forbid
    ///   the pair.
    /// * [`AeonError::CycleDetected`] when the edge would create a cycle.
    pub fn add_edge(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        if let Some(classes) = &self.class_graph {
            let graph = self.graph.read();
            let owner_class = graph.class_of(owner)?.to_string();
            let owned_class = graph.class_of(owned)?.to_string();
            if !classes.allows(&owner_class, &owned_class) {
                return Err(AeonError::OwnershipViolation {
                    caller: owner,
                    callee: owned,
                });
            }
        }
        self.graph.write().add_edge(owner, owned)
    }

    /// Removes an ownership edge.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when either endpoint is
    /// unknown.
    pub fn remove_edge(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.graph.write().remove_edge(owner, owned)
    }

    /// The dominator of `target`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown targets.
    pub fn dominator_of(&self, target: ContextId) -> Result<Dominator> {
        let graph = self.graph.read();
        self.resolver.dominator(&graph, target)
    }

    /// Whether `caller` may (transitively) call `callee`.
    pub fn may_call(&self, caller: ContextId, callee: ContextId) -> bool {
        self.graph.read().may_call(caller, callee)
    }

    /// The class of a context.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn class_of(&self, context: ContextId) -> Result<String> {
        Ok(self.graph.read().class_of(context)?.to_string())
    }

    /// Direct children of `parent`, optionally filtered by class.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when `parent` is unknown.
    pub fn children_of(&self, parent: ContextId, class: Option<&str>) -> Result<Vec<ContextId>> {
        let graph = self.graph.read();
        let children = graph.children(parent)?;
        let mut out = Vec::with_capacity(children.len());
        for &c in children {
            if class.is_none_or(|cls| graph.class_of(c).map(|k| k == cls).unwrap_or(false)) {
                out.push(c);
            }
        }
        Ok(out)
    }

    /// The class-constraint graph, when one was installed.
    pub fn class_graph(&self) -> Option<&ClassGraph> {
        self.class_graph.as_ref()
    }

    // -- factories ----------------------------------------------------------

    /// Registers the factory used to rebuild contexts of `class` from their
    /// serialised state (migration and recovery).
    pub fn register_factory(&self, class: impl Into<String>, factory: ContextFactory) {
        self.factories.write().insert(class.into(), factory);
    }

    /// The factory registered for `class`, if any.
    pub fn factory_for(&self, class: &str) -> Option<ContextFactory> {
        self.factories.read().get(class).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::KvContext;
    use aeon_types::Value;
    use std::sync::Arc;

    fn cx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    fn srv(n: u32) -> ServerId {
        ServerId::new(n)
    }

    #[test]
    fn least_loaded_balances_by_context_count() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.register_server(srv(0));
        dir.register_server(srv(1));
        dir.add_context(cx(1), "Room").unwrap();
        dir.set_placement(cx(1), srv(0));
        assert_eq!(dir.least_loaded_server().unwrap(), srv(1));
        dir.add_context(cx(2), "Room").unwrap();
        dir.set_placement(cx(2), srv(1));
        // Tie: lowest id wins.
        assert_eq!(dir.least_loaded_server().unwrap(), srv(0));
        assert_eq!(dir.contexts_on(srv(0)), vec![cx(1)]);
        assert_eq!(dir.context_count(), 2);
    }

    #[test]
    fn offline_servers_are_not_candidates() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.register_server(srv(0));
        dir.register_server(srv(1));
        dir.set_offline(srv(1));
        assert!(dir.is_online(srv(0)));
        assert!(!dir.is_online(srv(1)));
        assert_eq!(dir.online_servers(), vec![srv(0)]);
    }

    #[test]
    fn class_constraints_are_enforced_on_edges() {
        let mut classes = ClassGraph::new();
        classes.add_constraint("Room", "Item");
        let dir = Directory::new(DominatorMode::default(), Some(classes));
        dir.add_context(cx(1), "Room").unwrap();
        dir.add_context(cx(2), "Item").unwrap();
        dir.add_edge(cx(1), cx(2)).unwrap();
        assert!(matches!(
            dir.add_edge(cx(2), cx(1)),
            Err(AeonError::OwnershipViolation { .. }) | Err(AeonError::CycleDetected { .. })
        ));
        assert!(matches!(
            dir.add_context(cx(3), "Unknown"),
            Err(AeonError::Config(_))
        ));
    }

    #[test]
    fn dominator_of_shared_child_is_the_common_owner() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.add_context(cx(1), "Room").unwrap();
        dir.add_context(cx(2), "Player").unwrap();
        dir.add_context(cx(3), "Player").unwrap();
        dir.add_context(cx(4), "Item").unwrap();
        dir.add_edge(cx(1), cx(2)).unwrap();
        dir.add_edge(cx(1), cx(3)).unwrap();
        dir.add_edge(cx(2), cx(4)).unwrap();
        dir.add_edge(cx(3), cx(4)).unwrap();
        assert_eq!(dir.dominator_of(cx(2)).unwrap(), Dominator::Context(cx(1)));
        assert_eq!(dir.dominator_of(cx(1)).unwrap(), Dominator::Context(cx(1)));
        assert!(dir.may_call(cx(1), cx(4)));
        assert!(!dir.may_call(cx(4), cx(1)));
        assert_eq!(dir.children_of(cx(1), Some("Player")).unwrap().len(), 2);
        assert_eq!(dir.class_of(cx(4)).unwrap(), "Item");
    }

    #[test]
    fn factories_round_trip() {
        let dir = Directory::new(DominatorMode::default(), None);
        assert!(dir.factory_for("Item").is_none());
        dir.register_factory(
            "Item",
            Arc::new(|state: &Value| {
                let mut kv = KvContext::new("Item");
                aeon_runtime::ContextObject::restore(&mut kv, state);
                Box::new(kv) as Box<dyn aeon_runtime::ContextObject>
            }),
        );
        assert!(dir.factory_for("Item").is_some());
    }

    #[test]
    fn remove_context_clears_placement() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.register_server(srv(0));
        dir.add_context(cx(1), "Room").unwrap();
        dir.set_placement(cx(1), srv(0));
        dir.remove_context(cx(1)).unwrap();
        assert!(matches!(
            dir.placement_of(cx(1)),
            Err(AeonError::ContextNotFound(_))
        ));
    }
}
