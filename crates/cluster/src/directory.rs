//! The cluster's control-plane metadata service.
//!
//! In the paper, the ownership network and the context→server mapping are
//! maintained by the eManager and persisted in a cloud storage system that
//! every host and client can read (§5.1).  The [`Directory`] plays that
//! role, in one of two flavours:
//!
//! * the **authority** (created by [`Directory::new`]) owns the real
//!   ownership graph, placement map, and server roster.  When the whole
//!   cluster runs in one process it is shared (by `Arc`) between the
//!   gateway and every server node, standing in for "query the eManager /
//!   read the mapping from cloud storage";
//! * a **remote** handle (created by [`Directory::remote`]) lives inside an
//!   `aeon-node` OS process and forwards each control-plane query to the
//!   authority as a synchronous [`DirReq`]/[`DirAck`](ClusterMessage::DirAck)
//!   RPC over the network.
//!
//! Both flavours expose the same API, so node code is oblivious to which
//! one it holds.  Context *state* is never stored here — it lives only on
//! the server currently hosting the context and moves exclusively through
//! the migration protocol.  Class factories and the history sink are
//! process-local concerns and stay local on both flavours.
//!
//! [`DirReq`]: ClusterMessage::DirReq

use crate::message::{gateway_id, ClusterMessage, DirOp, DirReply};
use aeon_net::Network;
use aeon_ownership::{ClassGraph, Dominator, DominatorMode, DominatorResolver, OwnershipGraph};
use aeon_runtime::{ContextFactory, ContextObject};
use aeon_types::{
    AeonError, ClassName, ContextId, EventId, IdGenerator, Result, ServerId, SharedHistorySink,
};
use crossbeam::channel::{self, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// How long a remote directory handle waits for the authority's answer.
const DIR_RPC_TIMEOUT: Duration = Duration::from_secs(10);

/// Remote handles allocate ids in a namespace disjoint from the
/// authority's: bit 63 set, node id in bits 40..63, local counter below.
const REMOTE_ID_BASE: u64 = 1 << 63;

/// The authoritative control-plane state (eManager + cloud storage).
struct Authority {
    graph: RwLock<OwnershipGraph>,
    placement: RwLock<HashMap<ContextId, ServerId>>,
    servers: RwLock<BTreeMap<ServerId, bool>>,
    resolver: DominatorResolver,
    class_graph: Option<ClassGraph>,
}

/// A node-process proxy that answers queries by RPC to the authority.
struct Remote {
    node: ServerId,
    network: Network<ClusterMessage>,
    pending: Mutex<HashMap<u64, Sender<Result<DirReply>>>>,
}

enum Backend {
    Authority(Authority),
    Remote(Remote),
}

/// Shared control-plane state of a cluster (authority or remote proxy).
pub struct Directory {
    backend: Backend,
    factories: RwLock<HashMap<ClassName, ContextFactory>>,
    ids: IdGenerator,
    /// Objects parked between `create_context` and the node's `Host`
    /// handler when gateway and node share a process: the token travels on
    /// the wire, the object is moved through here without serialisation.
    escrow: Mutex<HashMap<u64, Box<dyn ContextObject>>>,
    /// Optional live history sink, shared by the gateway (event spans) and
    /// every node (context accesses); in a real deployment each host would
    /// hold its own handle to the same collector service.
    history: RwLock<Option<SharedHistorySink>>,
}

impl std::fmt::Debug for Directory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            Backend::Authority(auth) => f
                .debug_struct("Directory")
                .field("contexts", &auth.graph.read().len())
                .field("servers", &auth.servers.read().len())
                .finish_non_exhaustive(),
            Backend::Remote(remote) => f
                .debug_struct("Directory")
                .field("remote_of", &remote.node)
                .finish_non_exhaustive(),
        }
    }
}

impl Directory {
    /// Creates an empty directory authority.
    pub fn new(mode: DominatorMode, class_graph: Option<ClassGraph>) -> Self {
        Self {
            backend: Backend::Authority(Authority {
                graph: RwLock::new(OwnershipGraph::new()),
                placement: RwLock::new(HashMap::new()),
                servers: RwLock::new(BTreeMap::new()),
                resolver: DominatorResolver::new(mode),
                class_graph,
            }),
            factories: RwLock::new(HashMap::new()),
            ids: IdGenerator::starting_at(1),
            escrow: Mutex::new(HashMap::new()),
            history: RwLock::new(None),
        }
    }

    /// Creates a remote directory handle for node `node`, forwarding
    /// control-plane queries to the authority over `network`.
    pub fn remote(node: ServerId, network: Network<ClusterMessage>) -> Self {
        Self {
            backend: Backend::Remote(Remote {
                node,
                network,
                pending: Mutex::new(HashMap::new()),
            }),
            factories: RwLock::new(HashMap::new()),
            ids: IdGenerator::starting_at(REMOTE_ID_BASE | (u64::from(node.raw()) << 40)),
            escrow: Mutex::new(HashMap::new()),
            history: RwLock::new(None),
        }
    }

    fn authority(&self) -> Result<&Authority> {
        match &self.backend {
            Backend::Authority(auth) => Ok(auth),
            Backend::Remote(_) => Err(AeonError::Internal(
                "operation is only available at the directory authority".into(),
            )),
        }
    }

    /// Sends `op` to the authority and blocks for the matching
    /// [`ClusterMessage::DirAck`] (delivered via [`Self::complete_dir_reply`]).
    fn rpc(&self, remote: &Remote, op: DirOp) -> Result<DirReply> {
        let corr = self.ids.next_raw();
        let (tx, rx) = channel::bounded(1);
        remote.pending.lock().insert(corr, tx);
        let request = ClusterMessage::DirReq {
            corr,
            from: remote.node,
            op,
        };
        if let Err(err) = remote.network.send_from(remote.node, gateway_id(), request) {
            remote.pending.lock().remove(&corr);
            return Err(err);
        }
        match rx.recv_timeout(DIR_RPC_TIMEOUT) {
            Ok(reply) => reply,
            Err(_) => {
                remote.pending.lock().remove(&corr);
                Err(AeonError::Internal(
                    "directory rpc to the authority timed out".into(),
                ))
            }
        }
    }

    /// Routes a [`ClusterMessage::DirAck`] back to the thread blocked in
    /// [`Self::rpc`].  No-op on the authority (which never issues RPCs).
    pub(crate) fn complete_dir_reply(&self, corr: u64, reply: Result<DirReply>) {
        if let Backend::Remote(remote) = &self.backend {
            if let Some(tx) = remote.pending.lock().remove(&corr) {
                let _ = tx.send(reply);
            }
        }
    }

    /// Serves one [`DirOp`] at the authority (the gateway loop calls this
    /// for every [`ClusterMessage::DirReq`] a node sends).
    ///
    /// # Errors
    ///
    /// Propagates the error of the underlying directory operation.
    pub(crate) fn serve_dir_op(&self, op: DirOp) -> Result<DirReply> {
        match op {
            DirOp::PlacementOf(context) => self.placement_of(context).map(DirReply::Server),
            DirOp::SetPlacement(context, server) => {
                self.set_placement(context, server);
                Ok(DirReply::Unit)
            }
            DirOp::MayCall(caller, callee) => Ok(DirReply::Flag(self.may_call(caller, callee))),
            DirOp::ClassOf(context) => self.class_of(context).map(DirReply::Class),
            DirOp::ChildrenOf { parent, class } => self
                .children_of(parent, class.as_deref())
                .map(DirReply::Contexts),
            DirOp::AddEdge(owner, owned) => self.add_edge(owner, owned).map(|()| DirReply::Unit),
            DirOp::RemoveEdge(owner, owned) => {
                self.remove_edge(owner, owned).map(|()| DirReply::Unit)
            }
            DirOp::CreateOwned { owner, class } => {
                self.create_owned(owner, &class).map(DirReply::Context)
            }
        }
    }

    /// Installs the live history sink (replacing any previous one).
    pub fn set_history_sink(&self, sink: SharedHistorySink) {
        *self.history.write() = Some(sink);
    }

    /// The installed history sink, if any.
    pub fn history_sink(&self) -> Option<SharedHistorySink> {
        self.history.read().clone()
    }

    /// Allocates a fresh event id.
    pub fn next_event_id(&self) -> EventId {
        EventId::new(self.ids.next_raw())
    }

    /// Allocates a fresh context id.
    pub fn next_context_id(&self) -> ContextId {
        ContextId::new(self.ids.next_raw())
    }

    /// Allocates a fresh raw id (used for correlation tokens and clients).
    pub fn next_raw(&self) -> u64 {
        self.ids.next_raw()
    }

    // -- escrow -------------------------------------------------------------

    /// Parks an object for same-process hand-off and returns its token.
    pub(crate) fn escrow_put(&self, object: Box<dyn ContextObject>) -> u64 {
        let token = self.ids.next_raw();
        self.escrow.lock().insert(token, object);
        token
    }

    /// Claims a parked object, if the token was escrowed in this process.
    pub(crate) fn escrow_take(&self, token: u64) -> Option<Box<dyn ContextObject>> {
        self.escrow.lock().remove(&token)
    }

    // -- servers ------------------------------------------------------------

    /// Registers a server as online.  No-op on remote handles (the roster
    /// lives at the authority).
    pub fn register_server(&self, server: ServerId) {
        if let Backend::Authority(auth) = &self.backend {
            auth.servers.write().insert(server, true);
        }
    }

    /// Marks a server offline (crashed or drained).  No-op on remote
    /// handles.
    pub fn set_offline(&self, server: ServerId) {
        if let Backend::Authority(auth) = &self.backend {
            if let Some(flag) = auth.servers.write().get_mut(&server) {
                *flag = false;
            }
        }
    }

    /// Returns whether a server is known and online (always `false` on
    /// remote handles).
    pub fn is_online(&self, server: ServerId) -> bool {
        match &self.backend {
            Backend::Authority(auth) => auth.servers.read().get(&server).copied().unwrap_or(false),
            Backend::Remote(_) => false,
        }
    }

    /// All online servers, in id order (empty on remote handles).
    pub fn online_servers(&self) -> Vec<ServerId> {
        match &self.backend {
            Backend::Authority(auth) => auth
                .servers
                .read()
                .iter()
                .filter(|(_, online)| **online)
                .map(|(id, _)| *id)
                .collect(),
            Backend::Remote(_) => Vec::new(),
        }
    }

    /// The online server hosting the fewest contexts.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Config`] when no server is online (or on a
    /// remote handle, which does not place contexts).
    pub fn least_loaded_server(&self) -> Result<ServerId> {
        let auth = self
            .authority()
            .map_err(|_| AeonError::Config("no online servers".into()))?;
        let placement = auth.placement.read();
        let mut load: BTreeMap<ServerId, usize> =
            self.online_servers().into_iter().map(|s| (s, 0)).collect();
        for server in placement.values() {
            if let Some(count) = load.get_mut(server) {
                *count += 1;
            }
        }
        load.into_iter()
            .min_by_key(|(id, count)| (*count, id.raw()))
            .map(|(id, _)| id)
            .ok_or_else(|| AeonError::Config("no online servers".into()))
    }

    // -- placement ----------------------------------------------------------

    /// The server currently recorded as hosting `context`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn placement_of(&self, context: ContextId) -> Result<ServerId> {
        match &self.backend {
            Backend::Authority(auth) => auth
                .placement
                .read()
                .get(&context)
                .copied()
                .ok_or(AeonError::ContextNotFound(context)),
            Backend::Remote(remote) => match self.rpc(remote, DirOp::PlacementOf(context))? {
                DirReply::Server(server) => Ok(server),
                other => Err(reply_mismatch("PlacementOf", &other)),
            },
        }
    }

    /// Records (or updates) the placement of a context.
    pub fn set_placement(&self, context: ContextId, server: ServerId) {
        match &self.backend {
            Backend::Authority(auth) => {
                auth.placement.write().insert(context, server);
            }
            Backend::Remote(remote) => {
                let _ = self.rpc(remote, DirOp::SetPlacement(context, server));
            }
        }
    }

    /// Removes the placement entry of a context (authority only; remote
    /// handles never unhost contexts directly).
    pub fn remove_placement(&self, context: ContextId) {
        if let Backend::Authority(auth) = &self.backend {
            auth.placement.write().remove(&context);
        }
    }

    /// All contexts currently mapped to `server`, in id order (empty on
    /// remote handles).
    pub fn contexts_on(&self, server: ServerId) -> Vec<ContextId> {
        match &self.backend {
            Backend::Authority(auth) => {
                let mut out: Vec<ContextId> = auth
                    .placement
                    .read()
                    .iter()
                    .filter(|(_, s)| **s == server)
                    .map(|(c, _)| *c)
                    .collect();
                out.sort();
                out
            }
            Backend::Remote(_) => Vec::new(),
        }
    }

    /// Number of contexts known to the directory (0 on remote handles).
    pub fn context_count(&self) -> usize {
        match &self.backend {
            Backend::Authority(auth) => auth.placement.read().len(),
            Backend::Remote(_) => 0,
        }
    }

    // -- ownership network --------------------------------------------------

    /// A snapshot of the ownership graph (empty on remote handles).
    pub fn graph_snapshot(&self) -> OwnershipGraph {
        match &self.backend {
            Backend::Authority(auth) => auth.graph.read().clone(),
            Backend::Remote(_) => OwnershipGraph::new(),
        }
    }

    /// Declares a new context of class `class`.
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when a class graph is installed and does not
    ///   declare `class`.
    /// * Propagates graph errors (duplicate id).
    pub fn add_context(&self, id: ContextId, class: &str) -> Result<()> {
        let auth = self.authority()?;
        if let Some(classes) = &auth.class_graph {
            if !classes.contains(class) {
                return Err(AeonError::Config(format!(
                    "contextclass {class} is not declared in the class graph"
                )));
            }
        }
        auth.graph.write().add_context(id, class)
    }

    /// Removes a context from the graph and the placement map.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when the context is unknown.
    pub fn remove_context(&self, id: ContextId) -> Result<()> {
        let auth = self.authority()?;
        auth.graph.write().remove_context(id)?;
        auth.placement.write().remove(&id);
        Ok(())
    }

    /// Atomically validates class constraints, allocates an id, declares
    /// the context, and links it under `owner` — the control-plane half of
    /// creating an owned child.  The caller installs the object and records
    /// placement afterwards, preserving install-before-placement ordering.
    ///
    /// # Errors
    ///
    /// * [`AeonError::OwnershipViolation`] when the class constraints
    ///   forbid `owner`'s class from owning `class` (the callee id in the
    ///   error is a placeholder — the child was never created).
    /// * Propagates graph errors; on edge failure the context is removed
    ///   again so no orphan is left behind.
    pub fn create_owned(&self, owner: ContextId, class: &str) -> Result<ContextId> {
        match &self.backend {
            Backend::Authority(auth) => {
                if let Some(classes) = &auth.class_graph {
                    let owner_class = auth.graph.read().class_of(owner)?.to_string();
                    if !classes.allows(&owner_class, class) {
                        return Err(AeonError::ownership(owner, ContextId::new(u64::MAX)));
                    }
                }
                // Skip ids already taken by manually registered contexts
                // (e.g. roots added through `add_context` with caller-chosen
                // ids) rather than failing the allocation.
                let id = loop {
                    let candidate = self.next_context_id();
                    if auth.graph.read().class_of(candidate).is_err() {
                        break candidate;
                    }
                };
                self.add_context(id, class)?;
                if let Err(err) = self.add_edge(owner, id) {
                    let _ = self.remove_context(id);
                    return Err(err);
                }
                Ok(id)
            }
            Backend::Remote(remote) => {
                let op = DirOp::CreateOwned {
                    owner,
                    class: class.to_string(),
                };
                match self.rpc(remote, op)? {
                    DirReply::Context(id) => Ok(id),
                    other => Err(reply_mismatch("CreateOwned", &other)),
                }
            }
        }
    }

    /// Adds an ownership edge after validating the class constraints.
    ///
    /// # Errors
    ///
    /// * [`AeonError::OwnershipViolation`] when the class constraints forbid
    ///   the pair.
    /// * [`AeonError::CycleDetected`] when the edge would create a cycle.
    pub fn add_edge(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        match &self.backend {
            Backend::Authority(auth) => {
                if let Some(classes) = &auth.class_graph {
                    let graph = auth.graph.read();
                    let owner_class = graph.class_of(owner)?.to_string();
                    let owned_class = graph.class_of(owned)?.to_string();
                    if !classes.allows(&owner_class, &owned_class) {
                        return Err(AeonError::ownership(owner, owned));
                    }
                }
                auth.graph.write().add_edge(owner, owned)
            }
            Backend::Remote(remote) => match self.rpc(remote, DirOp::AddEdge(owner, owned))? {
                DirReply::Unit => Ok(()),
                other => Err(reply_mismatch("AddEdge", &other)),
            },
        }
    }

    /// Removes an ownership edge.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when either endpoint is
    /// unknown.
    pub fn remove_edge(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        match &self.backend {
            Backend::Authority(auth) => auth.graph.write().remove_edge(owner, owned),
            Backend::Remote(remote) => match self.rpc(remote, DirOp::RemoveEdge(owner, owned))? {
                DirReply::Unit => Ok(()),
                other => Err(reply_mismatch("RemoveEdge", &other)),
            },
        }
    }

    /// The dominator of `target` (authority only — sequencing decisions are
    /// made at the gateway).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown targets.
    pub fn dominator_of(&self, target: ContextId) -> Result<Dominator> {
        let auth = self.authority()?;
        let graph = auth.graph.read();
        auth.resolver.dominator(&graph, target)
    }

    /// Whether `caller` may (transitively) call `callee`.
    pub fn may_call(&self, caller: ContextId, callee: ContextId) -> bool {
        match &self.backend {
            Backend::Authority(auth) => auth.graph.read().may_call(caller, callee),
            Backend::Remote(remote) => matches!(
                self.rpc(remote, DirOp::MayCall(caller, callee)),
                Ok(DirReply::Flag(true))
            ),
        }
    }

    /// The class of a context.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn class_of(&self, context: ContextId) -> Result<String> {
        match &self.backend {
            Backend::Authority(auth) => Ok(auth.graph.read().class_of(context)?.to_string()),
            Backend::Remote(remote) => match self.rpc(remote, DirOp::ClassOf(context))? {
                DirReply::Class(class) => Ok(class),
                other => Err(reply_mismatch("ClassOf", &other)),
            },
        }
    }

    /// Direct children of `parent`, optionally filtered by class.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when `parent` is unknown.
    pub fn children_of(&self, parent: ContextId, class: Option<&str>) -> Result<Vec<ContextId>> {
        match &self.backend {
            Backend::Authority(auth) => {
                let graph = auth.graph.read();
                let children = graph.children(parent)?;
                let mut out = Vec::with_capacity(children.len());
                for &c in children {
                    if class.is_none_or(|cls| graph.class_of(c).map(|k| k == cls).unwrap_or(false))
                    {
                        out.push(c);
                    }
                }
                Ok(out)
            }
            Backend::Remote(remote) => {
                let op = DirOp::ChildrenOf {
                    parent,
                    class: class.map(str::to_string),
                };
                match self.rpc(remote, op)? {
                    DirReply::Contexts(ids) => Ok(ids),
                    other => Err(reply_mismatch("ChildrenOf", &other)),
                }
            }
        }
    }

    /// The class-constraint graph, when one was installed (`None` on remote
    /// handles — constraints are enforced at the authority).
    pub fn class_graph(&self) -> Option<&ClassGraph> {
        match &self.backend {
            Backend::Authority(auth) => auth.class_graph.as_ref(),
            Backend::Remote(_) => None,
        }
    }

    // -- factories ----------------------------------------------------------

    /// Registers the factory used to rebuild contexts of `class` from their
    /// serialised state (migration, recovery, and cross-process hosting).
    pub fn register_factory(&self, class: impl Into<String>, factory: ContextFactory) {
        self.factories.write().insert(class.into(), factory);
    }

    /// The factory registered for `class`, if any.
    pub fn factory_for(&self, class: &str) -> Option<ContextFactory> {
        self.factories.read().get(class).cloned()
    }
}

fn reply_mismatch(op: &str, got: &DirReply) -> AeonError {
    AeonError::Internal(format!(
        "directory {op} rpc returned mismatched reply {got:?}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::KvContext;
    use aeon_types::Value;
    use std::sync::Arc;

    fn cx(n: u64) -> ContextId {
        ContextId::new(n)
    }

    fn srv(n: u32) -> ServerId {
        ServerId::new(n)
    }

    #[test]
    fn least_loaded_balances_by_context_count() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.register_server(srv(0));
        dir.register_server(srv(1));
        dir.add_context(cx(1), "Room").unwrap();
        dir.set_placement(cx(1), srv(0));
        assert_eq!(dir.least_loaded_server().unwrap(), srv(1));
        dir.add_context(cx(2), "Room").unwrap();
        dir.set_placement(cx(2), srv(1));
        // Tie: lowest id wins.
        assert_eq!(dir.least_loaded_server().unwrap(), srv(0));
        assert_eq!(dir.contexts_on(srv(0)), vec![cx(1)]);
        assert_eq!(dir.context_count(), 2);
    }

    #[test]
    fn offline_servers_are_not_candidates() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.register_server(srv(0));
        dir.register_server(srv(1));
        dir.set_offline(srv(1));
        assert!(dir.is_online(srv(0)));
        assert!(!dir.is_online(srv(1)));
        assert_eq!(dir.online_servers(), vec![srv(0)]);
    }

    #[test]
    fn class_constraints_are_enforced_on_edges() {
        let mut classes = ClassGraph::new();
        classes.add_constraint("Room", "Item");
        let dir = Directory::new(DominatorMode::default(), Some(classes));
        dir.add_context(cx(1), "Room").unwrap();
        dir.add_context(cx(2), "Item").unwrap();
        dir.add_edge(cx(1), cx(2)).unwrap();
        assert!(matches!(
            dir.add_edge(cx(2), cx(1)),
            Err(AeonError::OwnershipViolation { .. }) | Err(AeonError::CycleDetected { .. })
        ));
        assert!(matches!(
            dir.add_context(cx(3), "Unknown"),
            Err(AeonError::Config(_))
        ));
    }

    #[test]
    fn dominator_of_shared_child_is_the_common_owner() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.add_context(cx(1), "Room").unwrap();
        dir.add_context(cx(2), "Player").unwrap();
        dir.add_context(cx(3), "Player").unwrap();
        dir.add_context(cx(4), "Item").unwrap();
        dir.add_edge(cx(1), cx(2)).unwrap();
        dir.add_edge(cx(1), cx(3)).unwrap();
        dir.add_edge(cx(2), cx(4)).unwrap();
        dir.add_edge(cx(3), cx(4)).unwrap();
        assert_eq!(dir.dominator_of(cx(2)).unwrap(), Dominator::Context(cx(1)));
        assert_eq!(dir.dominator_of(cx(1)).unwrap(), Dominator::Context(cx(1)));
        assert!(dir.may_call(cx(1), cx(4)));
        assert!(!dir.may_call(cx(4), cx(1)));
        assert_eq!(dir.children_of(cx(1), Some("Player")).unwrap().len(), 2);
        assert_eq!(dir.class_of(cx(4)).unwrap(), "Item");
    }

    #[test]
    fn factories_round_trip() {
        let dir = Directory::new(DominatorMode::default(), None);
        assert!(dir.factory_for("Item").is_none());
        dir.register_factory(
            "Item",
            Arc::new(|state: &Value| {
                let mut kv = KvContext::new("Item");
                aeon_runtime::ContextObject::restore(&mut kv, state);
                Box::new(kv) as Box<dyn aeon_runtime::ContextObject>
            }),
        );
        assert!(dir.factory_for("Item").is_some());
    }

    #[test]
    fn remove_context_clears_placement() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.register_server(srv(0));
        dir.add_context(cx(1), "Room").unwrap();
        dir.set_placement(cx(1), srv(0));
        dir.remove_context(cx(1)).unwrap();
        assert!(matches!(
            dir.placement_of(cx(1)),
            Err(AeonError::ContextNotFound(_))
        ));
    }

    #[test]
    fn escrow_moves_objects_by_token() {
        let dir = Directory::new(DominatorMode::default(), None);
        let token = dir.escrow_put(Box::new(KvContext::new("Item")));
        assert!(dir.escrow_take(token + 1).is_none());
        let object = dir.escrow_take(token).expect("escrowed object");
        assert_eq!(object.class_name(), "Item");
        assert!(dir.escrow_take(token).is_none(), "take is one-shot");
    }

    #[test]
    fn create_owned_allocates_links_and_rolls_back() {
        let mut classes = ClassGraph::new();
        classes.add_constraint("Room", "Item");
        let dir = Directory::new(DominatorMode::default(), Some(classes));
        dir.add_context(cx(1), "Room").unwrap();
        let child = dir.create_owned(cx(1), "Item").unwrap();
        assert_eq!(dir.class_of(child).unwrap(), "Item");
        assert_eq!(dir.children_of(cx(1), Some("Item")).unwrap(), vec![child]);
        // Constraint violation surfaces before any context is created.
        let count = dir.graph_snapshot().len();
        assert!(matches!(
            dir.create_owned(child, "Room"),
            Err(AeonError::OwnershipViolation { .. })
        ));
        assert_eq!(dir.graph_snapshot().len(), count);
    }

    #[test]
    fn serve_dir_op_answers_control_plane_queries() {
        let dir = Directory::new(DominatorMode::default(), None);
        dir.add_context(cx(1), "Room").unwrap();
        dir.register_server(srv(0));
        assert_eq!(
            dir.serve_dir_op(DirOp::SetPlacement(cx(1), srv(0)))
                .unwrap(),
            DirReply::Unit
        );
        assert_eq!(
            dir.serve_dir_op(DirOp::PlacementOf(cx(1))).unwrap(),
            DirReply::Server(srv(0))
        );
        assert_eq!(
            dir.serve_dir_op(DirOp::ClassOf(cx(1))).unwrap(),
            DirReply::Class("Room".into())
        );
        let created = dir
            .serve_dir_op(DirOp::CreateOwned {
                owner: cx(1),
                class: "Item".into(),
            })
            .unwrap();
        let DirReply::Context(child) = created else {
            panic!("expected Context reply, got {created:?}");
        };
        assert_eq!(
            dir.serve_dir_op(DirOp::MayCall(cx(1), child)).unwrap(),
            DirReply::Flag(true)
        );
        assert_eq!(
            dir.serve_dir_op(DirOp::ChildrenOf {
                parent: cx(1),
                class: None
            })
            .unwrap(),
            DirReply::Contexts(vec![child])
        );
        assert!(dir.serve_dir_op(DirOp::RemoveEdge(cx(1), child)).is_ok());
    }
}
