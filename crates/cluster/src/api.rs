//! The distributed cluster as an `aeon-api` [`Deployment`] backend.

use crate::cluster::{Cluster, ClusterClient};
use aeon_api::{Deployment, EventHandle, Session};
use aeon_ownership::OwnershipGraph;
use aeon_runtime::{ContextFactory, ContextObject, ExecutorStats, Placement, Snapshot};
use aeon_types::{
    AccessMode, Args, ClientId, ContextId, NetworkStatsSnapshot, Result, ServerId, ServerMetrics,
    SharedHistorySink, Value,
};

impl Session for ClusterClient {
    fn client_id(&self) -> ClientId {
        self.id()
    }

    fn submit_with_mode(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<EventHandle> {
        let native = self.submit(target, method, args, mode)?;
        Ok(EventHandle::pending(native.event_id(), move || {
            native.wait()
        }))
    }
}

impl Deployment for Cluster {
    fn backend_name(&self) -> &'static str {
        "cluster"
    }

    fn create_context(
        &self,
        object: Box<dyn ContextObject>,
        placement: Placement,
    ) -> Result<ContextId> {
        Cluster::create_context(self, object, placement)
    }

    fn create_owned_context(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
    ) -> Result<ContextId> {
        Cluster::create_owned_context(self, object, owners)
    }

    fn register_class_factory(&self, class: &str, factory: ContextFactory) {
        Cluster::register_class_factory(self, class, factory);
    }

    fn add_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        Cluster::add_ownership(self, owner, owned)
    }

    fn remove_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        Cluster::remove_ownership(self, owner, owned)
    }

    fn ownership_graph(&self) -> OwnershipGraph {
        Cluster::ownership_graph(self)
    }

    fn session(&self) -> Box<dyn Session> {
        Box::new(self.client())
    }

    fn migrate_context(&self, context: ContextId, to_server: ServerId) -> Result<u64> {
        Cluster::migrate_context(self, context, to_server)
    }

    fn add_server(&self) -> ServerId {
        Cluster::add_server(self)
    }

    fn remove_server(&self, server: ServerId) -> Result<()> {
        Cluster::remove_server(self, server)
    }

    fn server_metrics(&self) -> Vec<ServerMetrics> {
        Cluster::server_metrics(self)
    }

    fn context_count(&self) -> usize {
        Cluster::context_count(self)
    }

    fn executor_stats(&self) -> Option<ExecutorStats> {
        // Sum the per-node pools into one fleet-wide view; the gateway's
        // certified read-only fast path doesn't run through any node pool,
        // so its counter is folded in here.
        let mut total = ExecutorStats::default();
        for stats in Cluster::executor_stats(self).into_values() {
            total.workers += stats.workers;
            total.shards += stats.shards;
            total.submitted += stats.submitted;
            total.completed += stats.completed;
            total.queued += stats.queued;
            total.spill_spawned += stats.spill_spawned;
            total.spill_live += stats.spill_live;
            total.panics += stats.panics;
            total.batched += stats.batched;
            total.fast_path += stats.fast_path;
        }
        total.fast_path += Cluster::fast_path_events(self);
        Some(total)
    }

    fn network_stats(&self) -> Option<NetworkStatsSnapshot> {
        Some(Cluster::network_stats(self).snapshot())
    }

    fn crash_server(&self, server: ServerId) -> Result<()> {
        Cluster::crash_server(self, server)
    }

    fn servers(&self) -> Vec<ServerId> {
        Cluster::servers(self)
    }

    fn placement_of(&self, context: ContextId) -> Result<ServerId> {
        Cluster::placement_of(self, context)
    }

    fn contexts_on(&self, server: ServerId) -> Vec<ContextId> {
        Cluster::contexts_on(self, server)
    }

    fn snapshot_context(&self, root: ContextId) -> Result<Snapshot> {
        Cluster::snapshot_context(self, root)
    }

    fn restore_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        Cluster::restore_snapshot(self, snapshot)
    }

    fn install_history_sink(&self, sink: SharedHistorySink) {
        Cluster::install_history_sink(self, sink);
    }

    fn restore_context(&self, context: ContextId, state: &Value, server: ServerId) -> Result<()> {
        Cluster::restore_context(self, context, state, server)
    }

    fn shutdown(&self) {
        Cluster::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::KvContext;
    use aeon_types::args;

    #[test]
    fn cluster_backend_round_trip_through_dyn_deployment() {
        let cluster = Cluster::builder().servers(2).build().unwrap();
        let deployment: &dyn Deployment = &cluster;
        assert_eq!(deployment.backend_name(), "cluster");
        let ctx = deployment
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let session = deployment.session();
        session.call(ctx, "set", args!["gold", 9]).unwrap();
        assert_eq!(
            session.call_readonly(ctx, "get", args!["gold"]).unwrap(),
            Value::from(9i64)
        );
        deployment.shutdown();
    }

    #[test]
    fn cluster_snapshot_restore_round_trip() {
        let cluster = Cluster::builder().servers(2).build().unwrap();
        cluster.register_class_factory(
            "Item",
            std::sync::Arc::new(|state: &Value| {
                let mut item = KvContext::new("Item");
                aeon_runtime::ContextObject::restore(&mut item, state);
                Box::new(item) as Box<dyn ContextObject>
            }),
        );
        let item = cluster
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let client = cluster.client();
        client.call(item, "set", args!["gold", 11]).unwrap();
        let snapshot = cluster.snapshot_context(item).unwrap();
        assert_eq!(snapshot.len(), 1);
        client.call(item, "set", args!["gold", 99]).unwrap();
        cluster.restore_snapshot(&snapshot).unwrap();
        assert_eq!(
            client.call_readonly(item, "get", args!["gold"]).unwrap(),
            Value::from(11i64)
        );
        cluster.shutdown();
    }
}
