//! The `Deployment` and `Session` traits.

use crate::handle::EventHandle;
use aeon_ownership::OwnershipGraph;
use aeon_runtime::{ContextFactory, ContextObject, ExecutorStats, Placement, Snapshot};
use aeon_types::{
    AccessMode, Args, ClientId, ContextId, NetworkStatsSnapshot, Result, ServerId, ServerMetrics,
    SharedHistorySink, Value,
};

/// A client session on a deployment: the entry point for submitting
/// strictly-serializable events.
///
/// Implementations provide only [`Session::submit_with_mode`]; the
/// `submit_event` / `submit_readonly_event` / `call` / `call_readonly`
/// convenience wrappers are default methods expressed through it, so no
/// backend reimplements them.
pub trait Session: Send + Sync {
    /// The id the backend assigned to this client.
    fn client_id(&self) -> ClientId;

    /// Submits an event with an explicit access mode (the backend
    /// primitive).
    ///
    /// # Errors
    ///
    /// * [`aeon_types::AeonError::RuntimeShutdown`] after shutdown.
    /// * [`aeon_types::AeonError::ContextNotFound`] for unknown targets.
    fn submit_with_mode(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<EventHandle>;

    /// Submits an exclusive (update) event and returns a completion handle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::submit_with_mode`].
    fn submit_event(&self, target: ContextId, method: &str, args: Args) -> Result<EventHandle> {
        self.submit_with_mode(target, method, args, AccessMode::Exclusive)
    }

    /// Submits a read-only event (the paper's `ro` methods); read-only
    /// events of the same context may execute concurrently.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::submit_with_mode`].
    fn submit_readonly_event(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<EventHandle> {
        self.submit_with_mode(target, method, args, AccessMode::ReadOnly)
    }

    /// Submits an exclusive event and waits for its result.
    ///
    /// # Errors
    ///
    /// Propagates submission and execution errors.
    fn call(&self, target: ContextId, method: &str, args: Args) -> Result<Value> {
        self.submit_event(target, method, args)?.wait()
    }

    /// Submits a read-only event and waits for its result.
    ///
    /// # Errors
    ///
    /// Propagates submission and execution errors.
    fn call_readonly(&self, target: ContextId, method: &str, args: Args) -> Result<Value> {
        self.submit_readonly_event(target, method, args)?.wait()
    }
}

/// An AEON deployment: a set of (logical or simulated) servers hosting
/// contexts wired into an ownership network, executing events with strict
/// serializability while supporting elasticity (server management, context
/// migration) and fault tolerance (snapshots, crash/restore).
///
/// The trait is object-safe: workload drivers take `&dyn Deployment` and run
/// unchanged against the in-process runtime, the distributed cluster, and
/// the deterministic simulator.
pub trait Deployment: Send + Sync {
    /// A short name identifying the backend (for logs and test labels).
    fn backend_name(&self) -> &'static str;

    /// Creates a root context (no owners) and returns its id.
    ///
    /// # Errors
    ///
    /// * [`aeon_types::AeonError::ServerNotFound`] /
    ///   [`aeon_types::AeonError::Config`] when the placement is not
    ///   satisfiable.
    fn create_context(
        &self,
        object: Box<dyn ContextObject>,
        placement: Placement,
    ) -> Result<ContextId>;

    /// Creates a context owned by `owners` (at least one), co-located with
    /// its first owner.
    ///
    /// # Errors
    ///
    /// * [`aeon_types::AeonError::Config`] when `owners` is empty.
    /// * [`aeon_types::AeonError::OwnershipViolation`] when the class
    ///   constraints forbid the ownership.
    fn create_owned_context(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
    ) -> Result<ContextId>;

    /// Registers a factory able to rebuild contexts of `class` from a
    /// snapshot (used by migration and crash recovery).
    fn register_class_factory(&self, class: &str, factory: ContextFactory);

    /// Adds `owner` to the owners of `owned`.
    ///
    /// # Errors
    ///
    /// * [`aeon_types::AeonError::CycleDetected`] when the edge would create
    ///   a cycle.
    /// * [`aeon_types::AeonError::OwnershipViolation`] when the class
    ///   constraints forbid the edge.
    fn add_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()>;

    /// Removes `owner` from the owners of `owned`.
    ///
    /// # Errors
    ///
    /// Returns [`aeon_types::AeonError::ContextNotFound`] when either
    /// context is unknown.
    fn remove_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()>;

    /// A snapshot of the current ownership network.
    fn ownership_graph(&self) -> OwnershipGraph;

    /// Opens a client session for submitting events.
    fn session(&self) -> Box<dyn Session>;

    /// Migrates `context` to `to_server` without violating consistency and
    /// returns the number of bytes of serialised state moved.
    ///
    /// # Errors
    ///
    /// * [`aeon_types::AeonError::ContextNotFound`] /
    ///   [`aeon_types::AeonError::ServerNotFound`] for unknown ids.
    /// * [`aeon_types::AeonError::MigrationFailed`] when a protocol step
    ///   fails.
    fn migrate_context(&self, context: ContextId, to_server: ServerId) -> Result<u64>;

    /// Adds a server to the deployment (scale-out) and returns its id.
    fn add_server(&self) -> ServerId;

    /// Releases a drained server (scale-in).  The server must not host any
    /// contexts — migrate them away first (the elasticity manager's
    /// `drain_server` does exactly that).
    ///
    /// # Errors
    ///
    /// * [`aeon_types::AeonError::ServerNotFound`] for unknown or already
    ///   offline servers.
    /// * [`aeon_types::AeonError::Config`] when contexts are still placed on
    ///   it.
    fn remove_server(&self, server: ServerId) -> Result<()>;

    /// Current per-server load metrics: the control-plane feed elasticity
    /// policies run on.  Each backend derives the report from what it can
    /// observe (hosted contexts, worker-pool queue depth, event latency —
    /// virtual time on the simulator); the resource utilisations are
    /// relative-load proxies in `[0, 1]`.
    fn server_metrics(&self) -> Vec<ServerMetrics>;

    /// Total number of contexts across all online servers.
    ///
    /// The default sums [`Deployment::contexts_on`] over
    /// [`Deployment::servers`]; backends with a cheaper native count
    /// override it.
    fn context_count(&self) -> usize {
        self.servers()
            .into_iter()
            .map(|server| self.contexts_on(server).len())
            .sum()
    }

    /// Aggregate event-executor counters (submissions, completions,
    /// batching, fast-path hits, spill activity), when the backend runs a
    /// worker pool.  `None` on backends without one (the deterministic
    /// simulator executes inline); the cluster reports the sum over its
    /// nodes.  Feeds the `aeond` metrics exposition.
    fn executor_stats(&self) -> Option<ExecutorStats> {
        None
    }

    /// A snapshot of the backend's transport traffic counters, when it has
    /// a networking substrate.  `None` on backends without one (the
    /// in-process runtime and the simulator move no bytes).  Feeds the
    /// `aeond` metrics exposition.
    fn network_stats(&self) -> Option<NetworkStatsSnapshot> {
        None
    }

    /// Simulates a server crash: its contexts become unavailable until
    /// restored elsewhere with [`Deployment::restore_context`].
    ///
    /// # Errors
    ///
    /// Returns [`aeon_types::AeonError::ServerNotFound`] for unknown
    /// servers.
    fn crash_server(&self, server: ServerId) -> Result<()>;

    /// Ids of all online servers.
    fn servers(&self) -> Vec<ServerId>;

    /// The server currently hosting `context`.
    ///
    /// # Errors
    ///
    /// Returns [`aeon_types::AeonError::ContextNotFound`] for unknown
    /// contexts.
    fn placement_of(&self, context: ContextId) -> Result<ServerId>;

    /// Contexts currently mapped to `server`.
    fn contexts_on(&self, server: ServerId) -> Vec<ContextId>;

    /// Takes a snapshot of `root` and all its descendants.
    ///
    /// # Errors
    ///
    /// Returns [`aeon_types::AeonError::ContextNotFound`] when `root` is
    /// unknown.
    fn snapshot_context(&self, root: ContextId) -> Result<Snapshot>;

    /// Restores context states from a snapshot previously produced by
    /// [`Deployment::snapshot_context`].
    ///
    /// # Errors
    ///
    /// Returns [`aeon_types::AeonError::ContextNotFound`] if a snapshotted
    /// context no longer exists.
    fn restore_snapshot(&self, snapshot: &Snapshot) -> Result<()>;

    /// Installs a live history sink: from now on the backend reports every
    /// event's invocation and response points and every context access
    /// (see [`aeon_types::HistorySink`] for the timestamping contract) to
    /// `sink`.  Sessions opened before the installation feed the sink too.
    ///
    /// The canonical sink is `aeon_checker::HistoryRecorder`, which turns
    /// the feed into a `History` that `check_strict_serializability` can
    /// verify — this is how the chaos suite audits real executions.
    /// Installing a sink replaces any previous one.
    fn install_history_sink(&self, sink: SharedHistorySink);

    /// Re-hosts a context from externally held state (e.g. a checkpoint)
    /// after its server crashed.  The context keeps its identity and
    /// ownership edges; only its placement and state change.
    ///
    /// # Errors
    ///
    /// * [`aeon_types::AeonError::ContextNotFound`] when the context was
    ///   never created.
    /// * [`aeon_types::AeonError::MigrationFailed`] when no factory is
    ///   registered for its class.
    /// * [`aeon_types::AeonError::ServerNotFound`] when `server` is offline.
    fn restore_context(&self, context: ContextId, state: &Value, server: ServerId) -> Result<()>;

    /// Shuts the deployment down: subsequent submissions fail and blocked
    /// events are aborted.
    fn shutdown(&self);
}
