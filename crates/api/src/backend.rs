//! The in-process runtime as a [`Deployment`] backend.
//!
//! The other two backends live next to their types: `aeon-cluster`
//! implements the traits for `Cluster`/`ClusterClient`, `aeon-sim` for
//! `SimDeployment`/`SimSession`.

use crate::handle::EventHandle;
use crate::traits::{Deployment, Session};
use aeon_ownership::OwnershipGraph;
use aeon_runtime::{
    AeonClient, AeonRuntime, ContextFactory, ContextObject, ExecutorStats, Placement, Snapshot,
};
use aeon_types::{
    AccessMode, Args, ClientId, ContextId, Result, ServerId, ServerMetrics, SharedHistorySink,
    Value,
};

impl Session for AeonClient {
    fn client_id(&self) -> ClientId {
        self.id()
    }

    fn submit_with_mode(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<EventHandle> {
        let native = self.submit(target, method, args, mode)?;
        Ok(EventHandle::pending(native.event_id(), move || {
            native.wait()
        }))
    }
}

impl Deployment for AeonRuntime {
    fn backend_name(&self) -> &'static str {
        "runtime"
    }

    fn create_context(
        &self,
        object: Box<dyn ContextObject>,
        placement: Placement,
    ) -> Result<ContextId> {
        AeonRuntime::create_context(self, object, placement)
    }

    fn create_owned_context(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
    ) -> Result<ContextId> {
        AeonRuntime::create_owned_context(self, object, owners)
    }

    fn register_class_factory(&self, class: &str, factory: ContextFactory) {
        AeonRuntime::register_class_factory(self, class, factory);
    }

    fn add_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        AeonRuntime::add_ownership(self, owner, owned)
    }

    fn remove_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        AeonRuntime::remove_ownership(self, owner, owned)
    }

    fn ownership_graph(&self) -> OwnershipGraph {
        AeonRuntime::ownership_graph(self)
    }

    fn session(&self) -> Box<dyn Session> {
        Box::new(self.client())
    }

    fn migrate_context(&self, context: ContextId, to_server: ServerId) -> Result<u64> {
        AeonRuntime::migrate_context(self, context, to_server)
    }

    fn add_server(&self) -> ServerId {
        AeonRuntime::add_server(self)
    }

    fn remove_server(&self, server: ServerId) -> Result<()> {
        AeonRuntime::remove_server(self, server)
    }

    fn server_metrics(&self) -> Vec<ServerMetrics> {
        AeonRuntime::server_metrics(self)
    }

    fn context_count(&self) -> usize {
        AeonRuntime::context_count(self)
    }

    fn executor_stats(&self) -> Option<ExecutorStats> {
        Some(AeonRuntime::executor_stats(self))
    }

    fn crash_server(&self, server: ServerId) -> Result<()> {
        AeonRuntime::crash_server(self, server)
    }

    fn servers(&self) -> Vec<ServerId> {
        AeonRuntime::servers(self)
    }

    fn placement_of(&self, context: ContextId) -> Result<ServerId> {
        AeonRuntime::placement_of(self, context)
    }

    fn contexts_on(&self, server: ServerId) -> Vec<ContextId> {
        AeonRuntime::contexts_on(self, server)
    }

    fn snapshot_context(&self, root: ContextId) -> Result<Snapshot> {
        AeonRuntime::snapshot_context(self, root)
    }

    fn restore_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        AeonRuntime::restore_snapshot(self, snapshot)
    }

    fn install_history_sink(&self, sink: SharedHistorySink) {
        AeonRuntime::install_history_sink(self, sink);
    }

    fn restore_context(&self, context: ContextId, state: &Value, server: ServerId) -> Result<()> {
        AeonRuntime::restore_context(self, context, state, server)
    }

    fn shutdown(&self) {
        AeonRuntime::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::KvContext;
    use aeon_types::args;

    fn as_deployment(runtime: &AeonRuntime) -> &dyn Deployment {
        runtime
    }

    #[test]
    fn runtime_backend_round_trip_through_dyn_deployment() {
        let runtime = AeonRuntime::builder().servers(2).build().unwrap();
        let deployment = as_deployment(&runtime);
        assert_eq!(deployment.backend_name(), "runtime");
        let ctx = deployment
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let session = deployment.session();
        session.call(ctx, "set", args!["gold", 5]).unwrap();
        assert_eq!(
            session.call_readonly(ctx, "get", args!["gold"]).unwrap(),
            Value::from(5i64)
        );
        deployment.shutdown();
    }

    #[test]
    fn session_wrappers_are_trait_defaults() {
        let runtime = AeonRuntime::builder().build().unwrap();
        let ctx = runtime
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let client = runtime.client();
        let handle = Session::submit_event(&client, ctx, "incr", args!["n", 2]).unwrap();
        assert_eq!(handle.wait().unwrap(), Value::from(2i64));
        let handle = Session::submit_readonly_event(&client, ctx, "get", args!["n"]).unwrap();
        assert_eq!(handle.wait().unwrap(), Value::from(2i64));
        runtime.shutdown();
    }
}
