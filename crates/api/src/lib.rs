//! The backend-agnostic deployment API of the AEON reproduction.
//!
//! The paper's promise is that one contextclass program runs unchanged on a
//! single server or on fifty.  This crate turns that promise into a pair of
//! object-safe traits:
//!
//! * [`Deployment`] — the control plane: creating contexts, wiring the
//!   ownership network, registering class factories, managing servers
//!   (`add_server`/`remove_server`), observing per-server load
//!   ([`Deployment::server_metrics`] — the feed elasticity policies run
//!   on), migrating contexts and taking snapshots;
//! * [`Session`] — the data plane: submitting strictly-serializable events
//!   and waiting for their results through a common [`EventHandle`].
//!
//! Three execution backends implement the traits:
//!
//! * the in-process concurrent runtime (`aeon_runtime::AeonRuntime`,
//!   implemented here);
//! * the distributed message-passing cluster (`aeon_cluster::Cluster`,
//!   implemented in `aeon-cluster`);
//! * the deterministic virtual-time simulator
//!   (`aeon_sim::SimDeployment`, implemented in `aeon-sim`).
//!
//! Application code written against `&dyn Deployment` (or generically over
//! `D: Deployment + ?Sized`) is written once and deployed anywhere — the
//! `aeon-apps` workload drivers are the proof, and so is the elasticity
//! manager (`aeon-emanager`), which holds an `Arc<dyn Deployment>` and
//! scales whichever backend it was handed.  The `aeon` facade's
//! config-driven `aeon::deploy(DeployConfig)` builds any of the three
//! backends behind the trait.
//!
//! # Examples
//!
//! ```
//! use aeon_api::{Deployment, Session};
//! use aeon_runtime::{AeonRuntime, KvContext, Placement};
//! use aeon_types::{args, Result, Value};
//!
//! fn drive(deployment: &dyn Deployment) -> Result<Value> {
//!     let counter = deployment.create_context(
//!         Box::new(KvContext::new("Counter")),
//!         Placement::Auto,
//!     )?;
//!     let session = deployment.session();
//!     session.call(counter, "incr", args!["hits", 1])?;
//!     session.call_readonly(counter, "get", args!["hits"])
//! }
//!
//! # fn main() -> Result<()> {
//! let runtime = AeonRuntime::builder().servers(2).build()?;
//! assert_eq!(drive(&runtime)?, Value::from(1i64));
//! runtime.shutdown();
//! # Ok(())
//! # }
//! ```

mod backend;
mod handle;
mod traits;

pub use handle::EventHandle;
pub use traits::{Deployment, Session};

// Re-export the vocabulary types a Deployment consumer needs, so application
// crates can depend on `aeon-api` alone for the common case.
pub use aeon_runtime::{ContextFactory, ContextObject, Placement, Snapshot};
pub use aeon_types::{HistorySink, LatencyHistogram, ServerMetrics, SharedHistorySink};
