//! The backend-independent event completion handle.

use aeon_types::{EventId, Result, Value};

enum Waiter {
    /// The backend executed the event eagerly (e.g. the simulator).
    Ready(Result<Value>),
    /// The backend completes the event asynchronously; the closure blocks
    /// until it does.
    Pending(Box<dyn FnOnce() -> Result<Value> + Send>),
}

/// A handle on a submitted event, resolved by [`EventHandle::wait`].
///
/// Every [`crate::Session`] implementation returns this same type, so code
/// written against the trait never sees which backend executed the event.
pub struct EventHandle {
    event: EventId,
    waiter: Waiter,
}

impl EventHandle {
    /// Wraps an already-computed result (used by synchronous backends such
    /// as the deterministic simulator).
    pub fn ready(event: EventId, result: Result<Value>) -> Self {
        Self {
            event,
            waiter: Waiter::Ready(result),
        }
    }

    /// Wraps a blocking completion function (used by the concurrent runtime
    /// and the distributed cluster).
    pub fn pending(event: EventId, wait: impl FnOnce() -> Result<Value> + Send + 'static) -> Self {
        Self {
            event,
            waiter: Waiter::Pending(Box::new(wait)),
        }
    }

    /// The id assigned to the event by its backend.
    pub fn event_id(&self) -> EventId {
        self.event
    }

    /// Blocks until the event completes and returns its result.
    ///
    /// # Errors
    ///
    /// Propagates the event's own error (application errors, aborts, or
    /// shutdown).
    pub fn wait(self) -> Result<Value> {
        match self.waiter {
            Waiter::Ready(result) => result,
            Waiter::Pending(wait) => wait(),
        }
    }
}

impl std::fmt::Debug for EventHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.waiter {
            Waiter::Ready(_) => "ready",
            Waiter::Pending(_) => "pending",
        };
        f.debug_struct("EventHandle")
            .field("event", &self.event)
            .field("state", &state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_handle_returns_result() {
        let handle = EventHandle::ready(EventId::new(1), Ok(Value::from(7i64)));
        assert_eq!(handle.event_id(), EventId::new(1));
        assert_eq!(handle.wait().unwrap(), Value::from(7i64));
    }

    #[test]
    fn pending_handle_invokes_closure_on_wait() {
        let handle = EventHandle::pending(EventId::new(2), || Ok(Value::from("done")));
        assert_eq!(handle.wait().unwrap(), Value::from("done"));
    }
}
