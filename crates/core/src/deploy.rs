//! Config-driven deployment: one entry point, three execution backends.
//!
//! Application code written against `dyn Deployment` does not care which
//! substrate executes it; [`deploy`] makes the choice a configuration value
//! instead of a type.  A [`DeployConfig`] names the backend and the knobs
//! every backend understands (server count, worker pool size, spill cap,
//! class constraints), and the returned `Box<dyn Deployment>` is whatever
//! the config selected:
//!
//! * [`Backend::Runtime`] — the in-process concurrent runtime
//!   (`aeon_runtime::AeonRuntime`);
//! * [`Backend::Cluster`] — the distributed message-passing cluster
//!   (`aeon_cluster::Cluster`);
//! * [`Backend::Sim`] — the deterministic virtual-time simulator
//!   (`aeon_sim::SimDeployment`).
//!
//! [`deploy_shared`] returns an `Arc<dyn Deployment>` instead, which is the
//! shape long-lived services hold (the elasticity manager's
//! `EManager::new` takes exactly that).

use aeon_api::Deployment;
use aeon_cluster::{Cluster, ClusterTransport};
use aeon_ownership::ClassGraph;
use aeon_runtime::{AeonRuntime, AnalysisMode};
use aeon_sim::SimDeployment;
use aeon_types::{AeonError, Result};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Which execution substrate [`deploy`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The in-process concurrent runtime (`AeonRuntime`).
    #[default]
    Runtime,
    /// The distributed message-passing cluster (`Cluster`).
    Cluster,
    /// The deterministic virtual-time simulator (`SimDeployment`).
    Sim,
}

impl Backend {
    /// All backends, in the order benchmarks and parity tests iterate them.
    pub const ALL: [Backend; 3] = [Backend::Runtime, Backend::Cluster, Backend::Sim];
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Runtime => "runtime",
            Backend::Cluster => "cluster",
            Backend::Sim => "sim",
        })
    }
}

impl FromStr for Backend {
    type Err = AeonError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "runtime" | "in-process" => Ok(Backend::Runtime),
            "cluster" | "distributed" => Ok(Backend::Cluster),
            "sim" | "simulator" => Ok(Backend::Sim),
            other => Err(AeonError::Config(format!(
                "unknown backend {other:?} (expected runtime, cluster, or sim)"
            ))),
        }
    }
}

/// Configuration consumed by [`deploy`].
///
/// The fields are public for struct-literal construction; the builder-style
/// methods cover the common cases.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// The execution substrate to build.
    pub backend: Backend,
    /// Number of (logical or simulated) servers started with the
    /// deployment.
    pub servers: usize,
    /// Resident worker-pool threads per execution engine (the runtime's
    /// pool, or each cluster node's pool).  `None` keeps the backend
    /// default (available parallelism).  Ignored by the single-threaded
    /// simulator.
    pub worker_threads: Option<usize>,
    /// Cap on the spill workers of the blocking escape hatch.  `None`
    /// keeps the backend default.  Ignored by the simulator.
    pub max_spill_workers: Option<usize>,
    /// Cap on same-context batching per worker dequeue.  `None` keeps the
    /// backend default.  Ignored by the simulator.
    pub batch_max: Option<usize>,
    /// Whether certified read-only events take the lock-free fast path.
    /// `None` keeps the backend default.  Ignored by the simulator.
    pub readonly_fast_path: Option<bool>,
    /// Optional contextclass constraint graph, statically analysed at
    /// build time on every backend.
    pub class_graph: Option<ClassGraph>,
    /// How the static analysis pipeline treats the class graph:
    /// `off | warn | enforce` (default `enforce` — error diagnostics refuse
    /// the deployment).
    pub analysis: AnalysisMode,
    /// Message transport used by [`Backend::Cluster`]: in-process channels
    /// (the default), TCP sockets on loopback, or a TCP mesh of external
    /// `aeon-node` processes.  Ignored by the runtime and the simulator,
    /// which have no wire.
    pub transport: ClusterTransport,
}

impl Default for DeployConfig {
    fn default() -> Self {
        Self {
            backend: Backend::default(),
            servers: 1,
            worker_threads: None,
            max_spill_workers: None,
            batch_max: None,
            readonly_fast_path: None,
            class_graph: None,
            analysis: AnalysisMode::default(),
            transport: ClusterTransport::default(),
        }
    }
}

impl DeployConfig {
    /// Starts a config for `backend` with one server and default knobs.
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            ..Self::default()
        }
    }

    /// A config for the in-process runtime.
    pub fn runtime() -> Self {
        Self::new(Backend::Runtime)
    }

    /// A config for the distributed cluster.
    pub fn cluster() -> Self {
        Self::new(Backend::Cluster)
    }

    /// A config for the deterministic simulator.
    pub fn sim() -> Self {
        Self::new(Backend::Sim)
    }

    /// Sets the number of servers started with the deployment.
    #[must_use]
    pub fn servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Sets the resident worker-pool size (ignored by the simulator).
    #[must_use]
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads);
        self
    }

    /// Caps the spill workers of the blocking escape hatch (ignored by the
    /// simulator).
    #[must_use]
    pub fn max_spill_workers(mut self, max: usize) -> Self {
        self.max_spill_workers = Some(max);
        self
    }

    /// Caps same-context batching per worker dequeue (ignored by the
    /// simulator).
    #[must_use]
    pub fn batch_max(mut self, max: usize) -> Self {
        self.batch_max = Some(max);
        self
    }

    /// Enables or disables the certified read-only fast path (ignored by
    /// the simulator).
    #[must_use]
    pub fn readonly_fast_path(mut self, enabled: bool) -> Self {
        self.readonly_fast_path = Some(enabled);
        self
    }

    /// Installs a contextclass constraint graph.
    #[must_use]
    pub fn class_graph(mut self, classes: ClassGraph) -> Self {
        self.class_graph = Some(classes);
        self
    }

    /// Sets how the static analysis pipeline treats the class graph
    /// (`off | warn | enforce`; the default is [`AnalysisMode::Enforce`]).
    #[must_use]
    pub fn analysis(mut self, mode: AnalysisMode) -> Self {
        self.analysis = mode;
        self
    }

    /// Selects the cluster message transport (ignored by the runtime and
    /// the simulator).
    #[must_use]
    pub fn transport(mut self, transport: ClusterTransport) -> Self {
        self.transport = transport;
        self
    }
}

/// Builds the deployment selected by `config` and returns it behind the
/// backend-agnostic trait.
///
/// # Errors
///
/// * [`AeonError::Config`] when `servers` is zero or a knob is invalid.
/// * [`AeonError::ClassCycleDetected`] when the class graph's ownership
///   constraints are cyclic.
/// * [`AeonError::AnalysisRejected`] when the static analysis pipeline
///   reports error diagnostics and the mode is [`AnalysisMode::Enforce`].
///
/// # Examples
///
/// ```
/// use aeon::prelude::*;
/// use aeon::DeployConfig;
///
/// # fn main() -> aeon::Result<()> {
/// let deployment = aeon::deploy(DeployConfig::runtime().servers(2))?;
/// let counter = deployment.create_context(
///     Box::new(KvContext::new("Counter")),
///     Placement::Auto,
/// )?;
/// let session = deployment.session();
/// session.call(counter, "incr", args!["hits", 1])?;
/// assert_eq!(
///     session.call_readonly(counter, "get", args!["hits"])?,
///     Value::from(1i64)
/// );
/// deployment.shutdown();
/// # Ok(())
/// # }
/// ```
pub fn deploy(config: DeployConfig) -> Result<Box<dyn Deployment>> {
    match config.backend {
        Backend::Runtime => {
            let mut builder = AeonRuntime::builder()
                .servers(config.servers)
                .analysis(config.analysis);
            if let Some(threads) = config.worker_threads {
                builder = builder.worker_threads(threads);
            }
            if let Some(max) = config.max_spill_workers {
                builder = builder.max_spill_workers(max);
            }
            if let Some(max) = config.batch_max {
                builder = builder.batch_max(max);
            }
            if let Some(enabled) = config.readonly_fast_path {
                builder = builder.readonly_fast_path(enabled);
            }
            if let Some(classes) = config.class_graph {
                builder = builder.class_graph(classes);
            }
            Ok(Box::new(builder.build()?))
        }
        Backend::Cluster => {
            let mut builder = Cluster::builder()
                .servers(config.servers)
                .transport(config.transport)
                .analysis(config.analysis);
            if let Some(threads) = config.worker_threads {
                builder = builder.worker_threads(threads);
            }
            if let Some(max) = config.max_spill_workers {
                builder = builder.max_spill_workers(max);
            }
            if let Some(max) = config.batch_max {
                builder = builder.batch_max(max);
            }
            if let Some(enabled) = config.readonly_fast_path {
                builder = builder.readonly_fast_path(enabled);
            }
            if let Some(classes) = config.class_graph {
                builder = builder.class_graph(classes);
            }
            Ok(Box::new(builder.build()?))
        }
        Backend::Sim => {
            let mut builder = SimDeployment::builder()
                .servers(config.servers)
                .analysis(config.analysis);
            if let Some(classes) = config.class_graph {
                builder = builder.class_graph(classes);
            }
            Ok(Box::new(builder.build()?))
        }
    }
}

/// Like [`deploy`], but returns the deployment behind an `Arc` — the shape
/// shared services such as the elasticity manager hold.
///
/// # Errors
///
/// Same conditions as [`deploy`].
pub fn deploy_shared(config: DeployConfig) -> Result<Arc<dyn Deployment>> {
    deploy(config).map(Arc::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::{KvContext, Placement};
    use aeon_types::{args, Value};

    #[test]
    fn every_backend_deploys_from_config() {
        for backend in Backend::ALL {
            let deployment = deploy(DeployConfig::new(backend).servers(2)).unwrap();
            assert_eq!(deployment.backend_name(), backend.to_string());
            assert_eq!(deployment.servers().len(), 2);
            let ctx = deployment
                .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                .unwrap();
            let session = deployment.session();
            session.call(ctx, "incr", args!["n", 2]).unwrap();
            assert_eq!(
                session.call_readonly(ctx, "get", args!["n"]).unwrap(),
                Value::from(2i64),
                "backend {backend}"
            );
            // The control-plane metrics surface is present everywhere.
            let metrics = deployment.server_metrics();
            assert_eq!(metrics.len(), 2, "backend {backend}");
            assert_eq!(
                metrics.iter().map(|m| m.context_count).sum::<usize>(),
                1,
                "backend {backend}"
            );
            deployment.shutdown();
        }
    }

    #[test]
    fn backend_names_parse_and_display() {
        for backend in Backend::ALL {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
        assert_eq!("in-process".parse::<Backend>().unwrap(), Backend::Runtime);
        assert_eq!("distributed".parse::<Backend>().unwrap(), Backend::Cluster);
        assert_eq!("simulator".parse::<Backend>().unwrap(), Backend::Sim);
        assert!(matches!(
            "orleans".parse::<Backend>(),
            Err(AeonError::Config(_))
        ));
    }

    #[test]
    fn zero_servers_is_rejected_on_every_backend() {
        for backend in Backend::ALL {
            assert!(matches!(
                deploy(DeployConfig::new(backend).servers(0)),
                Err(AeonError::Config(_))
            ));
        }
    }

    #[test]
    fn cluster_deploys_over_tcp_loopback() {
        let deployment = deploy(
            DeployConfig::cluster()
                .servers(2)
                .transport(ClusterTransport::TcpLoopback),
        )
        .unwrap();
        let ctx = deployment
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let session = deployment.session();
        session.call(ctx, "incr", args!["n", 3]).unwrap();
        assert_eq!(
            session.call_readonly(ctx, "get", args!["n"]).unwrap(),
            Value::from(3i64)
        );
        deployment.shutdown();
    }

    #[test]
    fn enforce_mode_refuses_unsound_graphs_on_every_backend() {
        use aeon_ownership::{ClassGraph, MethodRef};
        use aeon_runtime::AnalysisMode;

        // Account calling back up into Branch is not covered by ownership:
        // AEON002, an error-severity diagnostic.
        fn unsound() -> ClassGraph {
            let mut classes = ClassGraph::new();
            classes.add_constraint("Branch", "Account");
            classes.declare_method("Branch", "transfer", false);
            classes.declare_calls("Account", "evil", [MethodRef::new("Branch", "transfer")]);
            classes
        }

        for backend in Backend::ALL {
            match deploy(DeployConfig::new(backend).class_graph(unsound())) {
                Err(AeonError::AnalysisRejected { errors, report }) => {
                    assert!(errors >= 1, "backend {backend}");
                    assert!(report.contains("AEON002"), "backend {backend}: {report}");
                }
                Err(other) => panic!("backend {backend}: unexpected {other:?}"),
                Ok(_) => panic!("backend {backend}: unsound graph deployed"),
            }
            // warn and off modes deploy the same graph.
            for mode in [AnalysisMode::Warn, AnalysisMode::Off] {
                let deployment = deploy(
                    DeployConfig::new(backend)
                        .class_graph(unsound())
                        .analysis(mode),
                )
                .unwrap();
                deployment.shutdown();
            }
        }
    }

    #[test]
    fn pool_knobs_reach_the_runtime() {
        let deployment = deploy(
            DeployConfig::runtime()
                .servers(1)
                .worker_threads(2)
                .max_spill_workers(8)
                .batch_max(16)
                .readonly_fast_path(false),
        )
        .unwrap();
        assert_eq!(deployment.backend_name(), "runtime");
        let stats = deployment.executor_stats().expect("runtime has a pool");
        assert_eq!(stats.workers, 2);
        // The runtime has no wire, so no transport counters.
        assert!(deployment.network_stats().is_none());
        deployment.shutdown();
    }

    #[test]
    fn stats_surfaces_match_each_backend() {
        // Runtime: pool yes, wire no.  Cluster: both.  Sim: neither.
        let runtime = deploy(DeployConfig::runtime()).unwrap();
        assert!(runtime.executor_stats().is_some());
        assert!(runtime.network_stats().is_none());
        runtime.shutdown();

        let cluster = deploy(DeployConfig::cluster().servers(2)).unwrap();
        let session = cluster.session();
        let ctx = cluster
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        session.call(ctx, "incr", args!["n", 1]).unwrap();
        let stats = cluster.executor_stats().expect("cluster nodes have pools");
        assert!(stats.workers > 0);
        assert!(stats.submitted > 0);
        // The ack is sent from inside the pool task, so `completed` may
        // trail the client's return by an instant.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while cluster.executor_stats().unwrap().completed == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "node pool never recorded the completion"
            );
            std::thread::yield_now();
        }
        assert!(cluster.network_stats().is_some());
        cluster.shutdown();

        let sim = deploy(DeployConfig::sim()).unwrap();
        assert!(sim.executor_stats().is_none());
        assert!(sim.network_stats().is_none());
        sim.shutdown();
    }
}
