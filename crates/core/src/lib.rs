//! # AEON — Atomic Events over an Ownership Network
//!
//! A reproduction of *"Programming Scalable Cloud Services with AEON"*
//! (Middleware 2016): an actor-like framework in which stateful **contexts**
//! are organised in an ownership DAG and client **events** spanning many
//! contexts execute with strict serializability, deadlock freedom and
//! starvation freedom, while an **elasticity manager** migrates contexts
//! between servers without violating consistency.
//!
//! The public surface is organised around two ideas:
//!
//! 1. **One program, any deployment.**  Applications are written against
//!    the [`api`] traits — [`Deployment`](prelude::Deployment) for the
//!    control plane and [`Session`](prelude::Session) for submitting
//!    events — and run unchanged on the in-process concurrent runtime
//!    ([`runtime`]), the distributed message-passing cluster ([`cluster`]),
//!    or the deterministic virtual-time simulator ([`sim`]).  Which one
//!    executes is itself just configuration: [`deploy`] takes a
//!    [`DeployConfig`] naming the [`Backend`] plus the knobs every backend
//!    understands (servers, worker pool, class constraints) and returns a
//!    `Box<dyn Deployment>`.  The trait also exposes the elasticity
//!    control plane — `server_metrics()` (per-server load, context count,
//!    queue depth, latency), `add_server`/`remove_server`, migration and
//!    snapshots — which is what lets the [`emanager`] drive any backend.
//! 2. **Declarative contextclasses.**  A contextclass declares its methods
//!    once in a [`context_class!`](prelude::context_class) method table —
//!    handlers, `ro` marks and snapshot/restore together — and the runtime
//!    derives dispatch, read-only enforcement, uniform `UnknownMethod`
//!    errors and machine-readable method metadata from it.
//!
//! The remaining crates supply the machinery: [`ownership`] (the ownership
//! network, dominators and the static contextclass analysis), [`emanager`]
//! (elasticity policies and the five-step migration protocol), [`checker`]
//! (execution-history recording and strict-serializability checking),
//! [`storage`] / [`net`] (cloud-storage and networking substrates).
//!
//! # Quickstart
//!
//! ```
//! use aeon::prelude::*;
//!
//! # fn main() -> aeon::Result<()> {
//! // Pick a backend by configuration: Backend::Runtime here;
//! // Backend::Cluster or Backend::Sim deploy the same program distributed
//! // or simulated.
//! let deployment = aeon::deploy(DeployConfig::runtime().servers(2))?;
//!
//! let counter = deployment.create_context(
//!     Box::new(KvContext::new("Counter")),
//!     Placement::Auto,
//! )?;
//! let session = deployment.session();
//! session.call(counter, "incr", args!["hits", 1])?;          // event call
//! let hits = session.call_readonly(counter, "get", args!["hits"])?; // ro event
//! assert_eq!(hits, Value::from(1i64));
//! deployment.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! Defining a contextclass:
//!
//! ```
//! use aeon::prelude::*;
//!
//! #[derive(Default)]
//! struct Counter {
//!     count: i64,
//! }
//!
//! impl Counter {
//!     fn add(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
//!         self.count += args.get_i64(0)?;
//!         Ok(Value::from(self.count))
//!     }
//!
//!     fn get(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
//!         Ok(Value::from(self.count))
//!     }
//! }
//!
//! context_class! {
//!     Counter: "Counter" {
//!         method "add" => Counter::add,
//!         ro method "get" => Counter::get,
//!     }
//! }
//!
//! # fn main() -> aeon::Result<()> {
//! let runtime = AeonRuntime::builder().build()?;
//! let counter = runtime.create_context(Box::new(Counter::default()), Placement::Auto)?;
//! let session = runtime.session();
//! assert_eq!(session.call(counter, "add", args![5])?, Value::from(5i64));
//! runtime.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod config;
mod deploy;

pub use aeon_analyzer as analyzer;
pub use aeon_api as api;
pub use aeon_checker as checker;
pub use aeon_cluster as cluster;
pub use aeon_emanager as emanager;
pub use aeon_net as net;
pub use aeon_ownership as ownership;
pub use aeon_runtime as runtime;
pub use aeon_sim as sim;
pub use aeon_storage as storage;
pub use aeon_types as types;

pub use aeon_types::{AccessMode, AeonError, Args, ContextId, EventId, Result, ServerId, Value};
pub use config::{AdminConfig, ServiceConfig, WorkloadConfig};
pub use deploy::{deploy, deploy_shared, Backend, DeployConfig};

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::deploy::{deploy, deploy_shared, Backend, DeployConfig};
    pub use aeon_analyzer::{analyze, AnalysisMode, AnalysisReport, DiagCode};
    pub use aeon_api::{Deployment, EventHandle, Session};
    pub use aeon_checker::{check_strict_serializability, History, HistoryRecorder};
    pub use aeon_cluster::{Cluster, ClusterClient, ClusterTransport, NodeProcessConfig};
    pub use aeon_emanager::{
        EManager, ElasticityAction, ElasticityPolicy, ResourceUtilizationPolicy,
        ServerContentionPolicy, ServerMetrics, SlaPolicy,
    };
    pub use aeon_ownership::{
        ClassGraph, Dominator, DominatorMode, MethodInfo, MethodRef, OwnershipGraph,
    };
    pub use aeon_runtime::{
        context_class, AeonClient, AeonRuntime, ContextClass, ContextObject, Invocation, KvContext,
        MethodTable, Placement, Snapshot,
    };
    pub use aeon_sim::{SimDeployment, SimSession};
    pub use aeon_storage::{CloudStore, InMemoryStore};
    pub use aeon_types::{args, AccessMode, AeonError, Args, ContextId, Result, ServerId, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let runtime = AeonRuntime::builder().servers(1).build().unwrap();
        let ctx = runtime
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let manager = EManager::new(std::sync::Arc::new(runtime.clone()), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(10)));
        assert!(manager.tick(&manager.collect_metrics()).unwrap().is_empty());
        assert_eq!(runtime.dominator_of(ctx).unwrap(), Dominator::Context(ctx));
        runtime.shutdown();
    }

    #[test]
    fn every_backend_is_a_deployment() {
        // The same closure drives all three backends through the trait.
        fn exercise(deployment: &dyn Deployment) {
            let ctx = deployment
                .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                .unwrap();
            let session = deployment.session();
            session.call(ctx, "incr", args!["n", 2]).unwrap();
            assert_eq!(
                session.call_readonly(ctx, "get", args!["n"]).unwrap(),
                Value::from(2i64),
                "backend {}",
                deployment.backend_name()
            );
            deployment.shutdown();
        }
        exercise(&AeonRuntime::builder().servers(2).build().unwrap());
        exercise(&Cluster::builder().servers(2).build().unwrap());
        exercise(&SimDeployment::builder().servers(2).build().unwrap());
    }
}
