//! # AEON — Atomic Events over an Ownership Network
//!
//! A reproduction of *"Programming Scalable Cloud Services with AEON"*
//! (Middleware 2016): an actor-like framework in which stateful **contexts**
//! are organised in an ownership DAG and client **events** spanning many
//! contexts execute with strict serializability, deadlock freedom and
//! starvation freedom, while an **elasticity manager** migrates contexts
//! between servers without violating consistency.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`runtime`] — the concurrent AEON runtime ([`AeonRuntime`],
//!   [`ContextObject`], [`Invocation`], events and snapshots);
//! * [`ownership`] — the ownership network, dominators and the static
//!   contextclass analysis;
//! * [`emanager`] — elasticity policies, the context mapping and the
//!   five-step migration protocol;
//! * [`cluster`] — the distributed deployment: the same protocol running
//!   across message-passing server nodes, with migration and fault
//!   injection;
//! * [`checker`] — execution-history recording and strict-serializability
//!   checking, used to validate the §4 claim against real executions;
//! * [`sim`] — the deterministic cluster simulator used by the evaluation
//!   harness (game / TPC-C workloads live in the separate `aeon-apps`
//!   crate);
//! * [`storage`] / [`net`] — the cloud-storage and networking substrates.
//!
//! # Quickstart
//!
//! ```
//! use aeon::prelude::*;
//!
//! # fn main() -> aeon::Result<()> {
//! let runtime = AeonRuntime::builder().servers(2).build()?;
//! let counter = runtime.create_context(Box::new(KvContext::new("Counter")), Placement::Auto)?;
//! let client = runtime.client();
//! client.call(counter, "incr", args!["hits", 1])?;          // event call
//! let hits = client.call_readonly(counter, "get", args!["hits"])?; // ro event
//! assert_eq!(hits, Value::from(1i64));
//! runtime.shutdown();
//! # Ok(())
//! # }
//! ```

pub use aeon_checker as checker;
pub use aeon_cluster as cluster;
pub use aeon_emanager as emanager;
pub use aeon_net as net;
pub use aeon_ownership as ownership;
pub use aeon_runtime as runtime;
pub use aeon_sim as sim;
pub use aeon_storage as storage;
pub use aeon_types as types;

pub use aeon_types::{AccessMode, AeonError, Args, ContextId, EventId, Result, ServerId, Value};

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use aeon_checker::{check_strict_serializability, History, HistoryRecorder};
    pub use aeon_cluster::{Cluster, ClusterClient};
    pub use aeon_emanager::{
        EManager, ElasticityAction, ElasticityPolicy, ResourceUtilizationPolicy,
        ServerContentionPolicy, ServerMetrics, SlaPolicy,
    };
    pub use aeon_ownership::{ClassGraph, Dominator, DominatorMode, OwnershipGraph};
    pub use aeon_runtime::{
        AeonClient, AeonRuntime, ContextObject, EventHandle, Invocation, KvContext, Placement,
        Snapshot,
    };
    pub use aeon_storage::{CloudStore, InMemoryStore};
    pub use aeon_types::{args, AccessMode, AeonError, Args, ContextId, Result, ServerId, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let runtime = AeonRuntime::builder().servers(1).build().unwrap();
        let ctx = runtime
            .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
            .unwrap();
        let manager = EManager::new(runtime.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(10)));
        assert!(manager.tick(&manager.collect_metrics()).unwrap().is_empty());
        assert_eq!(runtime.dominator_of(ctx).unwrap(), Dominator::Context(ctx));
        runtime.shutdown();
    }
}
