//! Service configuration for the `aeond` binary.
//!
//! `aeond` runs a deployment as a long-lived OS service; this module reads
//! its TOML config file into a [`ServiceConfig`]: the [`DeployConfig`] to
//! build, where the admin HTTP listener binds, how often the metrics cache
//! refreshes, and an optional built-in workload (used by smoke tests to
//! make counters move without an external client).
//!
//! The parser handles the subset of TOML the config actually uses —
//! `[section]` headers and `key = value` pairs with string, integer,
//! float, and boolean values, plus `#` comments — with line-numbered
//! [`AeonError::Config`] errors.  Keeping it in-tree (rather than pulling a
//! TOML crate) matches the workspace's no-external-dependencies rule.
//!
//! # Example
//!
//! ```
//! use aeon::config::ServiceConfig;
//!
//! let config = ServiceConfig::parse(r#"
//!     [deployment]
//!     backend = "runtime"
//!     servers = 2
//!
//!     [admin]
//!     listen = "127.0.0.1:0"
//!     push_interval_ms = 250
//! "#).unwrap();
//! assert_eq!(config.deployment.servers, 2);
//! ```

use crate::deploy::{Backend, DeployConfig};
use aeon_cluster::ClusterTransport;
use aeon_runtime::AnalysisMode;
use aeon_types::{AeonError, Result};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Where the admin HTTP listener binds and how the exposition cache is
/// refreshed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminConfig {
    /// Bind address of the HTTP/1.0 admin listener (`/healthz`, `/readyz`,
    /// `/metrics`, `/drain`).  Port 0 lets the OS pick (the bound address
    /// is logged on startup).
    pub listen: SocketAddr,
    /// How often the background timer snapshots `server_metrics()` into
    /// the exposition cache, so `/metrics` scrapes never block on a
    /// cluster round trip.
    pub push_interval: Duration,
}

impl Default for AdminConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:9464".parse().expect("valid default address"),
            push_interval: Duration::from_secs(1),
        }
    }
}

/// A small built-in workload `aeond` drives against its own deployment:
/// `contexts` KV contexts receiving `events` update events each, from a
/// background thread.  Exists so smoke tests (and the CI probe) observe
/// nonzero counters without an external traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of KV contexts to create.
    pub contexts: usize,
    /// Update events sent to each context.
    pub events: usize,
}

/// Everything `aeond` needs to run: the deployment, the admin surface, and
/// the optional built-in workload.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// The deployment to build (backend, servers, pool knobs, analysis
    /// mode, transport).
    pub deployment: DeployConfig,
    /// Admin listener and metrics-push settings.
    pub admin: AdminConfig,
    /// Optional background workload.
    pub workload: Option<WorkloadConfig>,
}

impl ServiceConfig {
    /// Reads and parses a config file.
    ///
    /// # Errors
    ///
    /// [`AeonError::Config`] when the file cannot be read or fails to
    /// parse.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| AeonError::Config(format!("read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Parses config text.
    ///
    /// # Errors
    ///
    /// [`AeonError::Config`] on syntax errors, unknown sections/keys, or
    /// invalid values; messages carry the offending line number.
    pub fn parse(text: &str) -> Result<Self> {
        let sections = parse_toml(text)?;
        let mut config = Self::default();
        for (section, entries) in &sections {
            match section.as_str() {
                "deployment" => apply_deployment(&mut config.deployment, entries)?,
                "admin" => apply_admin(&mut config.admin, entries)?,
                "workload" => config.workload = Some(parse_workload(entries)?),
                other => {
                    return Err(AeonError::Config(format!(
                        "unknown config section [{other}] (expected deployment, admin, or workload)"
                    )))
                }
            }
        }
        Ok(config)
    }
}

/// A parsed `key = value` with the line it came from (for error messages).
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
        }
    }
}

type Entries = BTreeMap<String, (TomlValue, usize)>;

/// Parses the TOML subset into section → (key → (value, line)).  Keys
/// before any `[section]` header are rejected — every setting belongs to a
/// named section.
fn parse_toml(text: &str) -> Result<BTreeMap<String, Entries>> {
    let mut sections: BTreeMap<String, Entries> = BTreeMap::new();
    let mut current: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| AeonError::Config(format!("line {line_no}: unterminated [section")))?
                .trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(AeonError::Config(format!(
                    "line {line_no}: invalid section name {name:?}"
                )));
            }
            sections.entry(name.to_string()).or_default();
            current = Some(name.to_string());
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| {
            AeonError::Config(format!(
                "line {line_no}: expected `key = value` or `[section]`"
            ))
        })?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(AeonError::Config(format!(
                "line {line_no}: invalid key {key:?}"
            )));
        }
        let section = current.clone().ok_or_else(|| {
            AeonError::Config(format!(
                "line {line_no}: key {key:?} appears before any [section] header"
            ))
        })?;
        let value = parse_value(value.trim(), line_no)?;
        let entries = sections.entry(section).or_default();
        if entries.insert(key.to_string(), (value, line_no)).is_some() {
            return Err(AeonError::Config(format!(
                "line {line_no}: duplicate key {key:?}"
            )));
        }
    }
    Ok(sections)
}

/// Drops a trailing `#` comment, respecting `#` inside double-quoted
/// strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line_no: usize) -> Result<TomlValue> {
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest.strip_suffix('"').filter(|s| !s.contains('"'));
        return match inner {
            Some(s) => Ok(TomlValue::Str(s.to_string())),
            None => Err(AeonError::Config(format!(
                "line {line_no}: malformed string {text}"
            ))),
        };
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    if let Ok(n) = digits.parse::<i64>() {
        return Ok(TomlValue::Int(n));
    }
    if let Ok(f) = digits.parse::<f64>() {
        return Ok(TomlValue::Float(f));
    }
    Err(AeonError::Config(format!(
        "line {line_no}: cannot parse value `{text}` (expected a string, integer, float, or boolean)"
    )))
}

fn expect_str(key: &str, value: &TomlValue, line: usize) -> Result<String> {
    match value {
        TomlValue::Str(s) => Ok(s.clone()),
        other => Err(AeonError::Config(format!(
            "line {line}: {key} must be a string, got {}",
            other.type_name()
        ))),
    }
}

fn expect_usize(key: &str, value: &TomlValue, line: usize) -> Result<usize> {
    match value {
        TomlValue::Int(n) if *n >= 0 => Ok(*n as usize),
        TomlValue::Int(n) => Err(AeonError::Config(format!(
            "line {line}: {key} must be non-negative, got {n}"
        ))),
        other => Err(AeonError::Config(format!(
            "line {line}: {key} must be an integer, got {}",
            other.type_name()
        ))),
    }
}

fn expect_bool(key: &str, value: &TomlValue, line: usize) -> Result<bool> {
    match value {
        TomlValue::Bool(b) => Ok(*b),
        other => Err(AeonError::Config(format!(
            "line {line}: {key} must be a boolean, got {}",
            other.type_name()
        ))),
    }
}

fn apply_deployment(deploy: &mut DeployConfig, entries: &Entries) -> Result<()> {
    for (key, (value, line)) in entries {
        let line = *line;
        match key.as_str() {
            "backend" => {
                deploy.backend = expect_str(key, value, line)?
                    .parse::<Backend>()
                    .map_err(|e| AeonError::Config(format!("line {line}: {e}")))?;
            }
            "servers" => deploy.servers = expect_usize(key, value, line)?,
            "worker_threads" => deploy.worker_threads = Some(expect_usize(key, value, line)?),
            "max_spill_workers" => {
                deploy.max_spill_workers = Some(expect_usize(key, value, line)?);
            }
            "batch_max" => deploy.batch_max = Some(expect_usize(key, value, line)?),
            "readonly_fast_path" => {
                deploy.readonly_fast_path = Some(expect_bool(key, value, line)?);
            }
            "analysis" => {
                deploy.analysis = expect_str(key, value, line)?
                    .parse::<AnalysisMode>()
                    .map_err(|e| AeonError::Config(format!("line {line}: {e}")))?;
            }
            "transport" => {
                deploy.transport = match expect_str(key, value, line)?.as_str() {
                    "channel" => ClusterTransport::Channel,
                    "tcp-loopback" => ClusterTransport::TcpLoopback,
                    other => {
                        return Err(AeonError::Config(format!(
                            "line {line}: unknown transport {other:?} (expected channel or \
                             tcp-loopback; a TCP mesh of external processes is wired up with \
                             the aeon-node binary, not aeond)"
                        )))
                    }
                };
            }
            other => {
                return Err(AeonError::Config(format!(
                    "line {line}: unknown [deployment] key {other:?}"
                )))
            }
        }
    }
    Ok(())
}

fn apply_admin(admin: &mut AdminConfig, entries: &Entries) -> Result<()> {
    for (key, (value, line)) in entries {
        let line = *line;
        match key.as_str() {
            "listen" => {
                let text = expect_str(key, value, line)?;
                admin.listen = text.parse().map_err(|e| {
                    AeonError::Config(format!("line {line}: invalid listen address {text:?}: {e}"))
                })?;
            }
            "push_interval_ms" => {
                let ms = expect_usize(key, value, line)?;
                if ms == 0 {
                    return Err(AeonError::Config(format!(
                        "line {line}: push_interval_ms must be positive"
                    )));
                }
                admin.push_interval = Duration::from_millis(ms as u64);
            }
            other => {
                return Err(AeonError::Config(format!(
                    "line {line}: unknown [admin] key {other:?}"
                )))
            }
        }
    }
    Ok(())
}

fn parse_workload(entries: &Entries) -> Result<WorkloadConfig> {
    let mut workload = WorkloadConfig {
        contexts: 1,
        events: 0,
    };
    for (key, (value, line)) in entries {
        let line = *line;
        match key.as_str() {
            "contexts" => {
                workload.contexts = expect_usize(key, value, line)?;
                if workload.contexts == 0 {
                    return Err(AeonError::Config(format!(
                        "line {line}: workload contexts must be positive"
                    )));
                }
            }
            "events" => workload.events = expect_usize(key, value, line)?,
            other => {
                return Err(AeonError::Config(format!(
                    "line {line}: unknown [workload] key {other:?}"
                )))
            }
        }
    }
    Ok(workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_round_trips() {
        let config = ServiceConfig::parse(
            r#"
            # aeond service config
            [deployment]
            backend = "cluster"        # distributed
            servers = 3
            worker_threads = 2
            max_spill_workers = 8
            batch_max = 16
            readonly_fast_path = true
            analysis = "warn"
            transport = "tcp-loopback"

            [admin]
            listen = "127.0.0.1:9464"
            push_interval_ms = 250

            [workload]
            contexts = 4
            events = 100
            "#,
        )
        .unwrap();
        assert_eq!(config.deployment.backend, Backend::Cluster);
        assert_eq!(config.deployment.servers, 3);
        assert_eq!(config.deployment.worker_threads, Some(2));
        assert_eq!(config.deployment.max_spill_workers, Some(8));
        assert_eq!(config.deployment.batch_max, Some(16));
        assert_eq!(config.deployment.readonly_fast_path, Some(true));
        assert_eq!(config.deployment.analysis, AnalysisMode::Warn);
        assert!(matches!(
            config.deployment.transport,
            ClusterTransport::TcpLoopback
        ));
        assert_eq!(config.admin.listen.port(), 9464);
        assert_eq!(config.admin.push_interval, Duration::from_millis(250));
        let workload = config.workload.unwrap();
        assert_eq!(workload.contexts, 4);
        assert_eq!(workload.events, 100);
    }

    #[test]
    fn empty_config_is_all_defaults() {
        let config = ServiceConfig::parse("").unwrap();
        assert_eq!(config.deployment.backend, Backend::Runtime);
        assert_eq!(config.deployment.servers, 1);
        assert_eq!(config.admin, AdminConfig::default());
        assert!(config.workload.is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = ServiceConfig::parse("[deployment]\nservers = \"two\"").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = ServiceConfig::parse("[deployment]\nbackend = \"orleans\"").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = ServiceConfig::parse("stray = 1").unwrap_err();
        assert!(err.to_string().contains("before any [section]"), "{err}");
        let err = ServiceConfig::parse("[deployment]\nservers = 1\nservers = 2").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn unknown_sections_and_keys_are_rejected() {
        assert!(ServiceConfig::parse("[mystery]\nx = 1").is_err());
        assert!(ServiceConfig::parse("[deployment]\nmystery = 1").is_err());
        assert!(ServiceConfig::parse("[admin]\nmystery = 1").is_err());
        assert!(ServiceConfig::parse("[workload]\nmystery = 1").is_err());
    }

    #[test]
    fn comments_respect_strings() {
        let config =
            ServiceConfig::parse("[admin]\nlisten = \"127.0.0.1:8080\" # port picked at random\n")
                .unwrap();
        assert_eq!(config.admin.listen.port(), 8080);
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(ServiceConfig::parse("[admin]\nlisten = \"nonsense\"").is_err());
        assert!(ServiceConfig::parse("[admin]\npush_interval_ms = 0").is_err());
        assert!(ServiceConfig::parse("[workload]\ncontexts = 0").is_err());
        assert!(ServiceConfig::parse("[deployment]\nworker_threads = -1").is_err());
        assert!(ServiceConfig::parse("[deployment]\ntransport = \"carrier-pigeon\"").is_err());
        assert!(ServiceConfig::parse("[deployment]\nreadonly_fast_path = \"yes\"").is_err());
        assert!(ServiceConfig::parse("[deployment\nservers = 1").is_err());
        assert!(ServiceConfig::parse("[deployment]\nbackend = \"runtime").is_err());
    }
}
