//! Traffic statistics for the in-process network.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of messages that crossed the network.
///
/// "Local" messages stay on the sending server (same-server delivery);
/// "remote" messages cross server boundaries.  The distinction matters for
/// the evaluation: one of the reasons AEON outperforms Orleans in the paper
/// is that dominator-aware placement keeps most calls local (§6.1.1).
#[derive(Debug, Default)]
pub struct NetworkStats {
    local: AtomicU64,
    remote: AtomicU64,
    dropped: AtomicU64,
}

impl NetworkStats {
    /// Records a delivered message; `local` indicates same-server delivery.
    pub fn record_sent(&self, local: bool) {
        if local {
            self.local.fetch_add(1, Ordering::Relaxed);
        } else {
            self.remote.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a message dropped by fault injection.
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages delivered on the sending server.
    pub fn local_messages(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// Messages delivered across servers.
    pub fn remote_messages(&self) -> u64 {
        self.remote.load(Ordering::Relaxed)
    }

    /// Messages dropped by severed links.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total messages offered to the network (delivered + dropped).
    pub fn total_messages(&self) -> u64 {
        self.local_messages() + self.remote_messages() + self.dropped_messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = NetworkStats::default();
        stats.record_sent(true);
        stats.record_sent(false);
        stats.record_sent(false);
        stats.record_dropped();
        assert_eq!(stats.local_messages(), 1);
        assert_eq!(stats.remote_messages(), 2);
        assert_eq!(stats.dropped_messages(), 1);
        assert_eq!(stats.total_messages(), 4);
    }
}
