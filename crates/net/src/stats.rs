//! Traffic statistics for the networking substrate.

use aeon_types::NetworkStatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of messages (and bytes) that crossed the network.
///
/// "Local" messages stay on the sending server (same-server delivery);
/// "remote" messages cross server boundaries.  The distinction matters for
/// the evaluation: one of the reasons AEON outperforms Orleans in the paper
/// is that dominator-aware placement keeps most calls local (§6.1.1).
///
/// Byte counters make channel-vs-TCP comparisons honest: the TCP transport
/// records exact on-the-wire frame sizes, while the channel transport
/// records the *encoded* size each message would have had on the wire
/// (zero when no message codec is configured, e.g. plain `Network<u32>`
/// test networks).
#[derive(Debug, Default)]
pub struct NetworkStats {
    local: AtomicU64,
    remote: AtomicU64,
    dropped: AtomicU64,
    frames_dropped: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl NetworkStats {
    /// Records a delivered message; `local` indicates same-server delivery
    /// and `bytes` the (encoded) size of the message on the wire.
    pub fn record_sent(&self, local: bool, bytes: u64) {
        if local {
            self.local.fetch_add(1, Ordering::Relaxed);
        } else {
            self.remote.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` arriving from the wire (TCP readers) or delivered
    /// in-process (channel / loopback short-circuit).
    pub fn record_received(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a message dropped by fault injection (or a torn-down link).
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an encoded frame the transport itself failed to deliver:
    /// bounded send-queue overflow, or frames stranded in a retiring
    /// writer's queue.  Distinct from [`record_dropped`](Self::record_dropped),
    /// which counts *injected* drops (faults, severed links) — a nonzero
    /// frame-drop counter on a healthy deployment signals backpressure or
    /// connection churn, not chaos testing.
    pub fn record_frame_dropped(&self) {
        self.frames_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages delivered on the sending server.
    pub fn local_messages(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// Messages delivered across servers.
    pub fn remote_messages(&self) -> u64 {
        self.remote.load(Ordering::Relaxed)
    }

    /// Messages dropped by severed links.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Encoded frames dropped by the transport itself (queue overflow,
    /// writer retirement).
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped.load(Ordering::Relaxed)
    }

    /// Total messages offered to the network (delivered + dropped).
    pub fn total_messages(&self) -> u64 {
        self.local_messages() + self.remote_messages() + self.dropped_messages()
    }

    /// Total encoded bytes handed to the transport for delivery.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total encoded bytes received from the transport.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter, as the plain value type that
    /// crosses API boundaries (`Deployment::network_stats`, the `aeond`
    /// metrics exposition).
    pub fn snapshot(&self) -> NetworkStatsSnapshot {
        NetworkStatsSnapshot {
            local_messages: self.local_messages(),
            remote_messages: self.remote_messages(),
            dropped_messages: self.dropped_messages(),
            frames_dropped: self.frames_dropped(),
            bytes_sent: self.bytes_sent(),
            bytes_received: self.bytes_received(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = NetworkStats::default();
        stats.record_sent(true, 10);
        stats.record_sent(false, 20);
        stats.record_sent(false, 0);
        stats.record_dropped();
        assert_eq!(stats.local_messages(), 1);
        assert_eq!(stats.remote_messages(), 2);
        assert_eq!(stats.dropped_messages(), 1);
        assert_eq!(stats.total_messages(), 4);
        assert_eq!(stats.bytes_sent(), 30);
    }

    #[test]
    fn frame_drops_are_counted_separately_from_injected_drops() {
        let stats = NetworkStats::default();
        stats.record_dropped();
        stats.record_frame_dropped();
        stats.record_frame_dropped();
        assert_eq!(stats.dropped_messages(), 1);
        assert_eq!(stats.frames_dropped(), 2);
        let snap = stats.snapshot();
        assert_eq!(snap.dropped_messages, 1);
        assert_eq!(snap.frames_dropped, 2);
    }

    #[test]
    fn byte_counters_track_both_directions() {
        let stats = NetworkStats::default();
        stats.record_sent(false, 100);
        stats.record_received(100);
        stats.record_received(8);
        assert_eq!(stats.bytes_sent(), 100);
        assert_eq!(stats.bytes_received(), 108);
    }
}
